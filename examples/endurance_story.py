#!/usr/bin/env python3
"""An SSD's life story: wear, error rates, retries, rescue by parity.

Walks one simulated drive from fresh to worn out, showing the reliability
substrate the reproduction adds around the paper's latency story: RBER
climbing with P/E cycles and retention, the ECC engine absorbing it, read
retries appearing near end of life, and RAID-4 row parity keeping data
readable after a lane effectively dies.

Run:  python examples/endurance_story.py
"""

import numpy as np

from repro.api import (
    EccConfig,
    EccEngine,
    FlashChip,
    Ftl,
    FtlConfig,
    PageType,
    SMALL_GEOMETRY,
    UncorrectableReadError,
    VariationModel,
    VariationParams,
)


def fresh_chip(model, lane=0):
    return FlashChip(
        model.chip_profile(lane),
        SMALL_GEOMETRY,
        ecc=EccEngine(EccConfig(), SMALL_GEOMETRY),
    )


def main() -> None:
    params = VariationParams(
        factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
    )
    model = VariationModel(SMALL_GEOMETRY, params, seed=42)

    # -- 1. wear and error rates on one chip -----------------------------------
    print("1) one block's reads as the drive wears (MSB pages):")
    print(f"{'P/E':>7} {'bake':>6} {'RBER':>10} {'corrected':>10} {'retries':>8} {'tR (us)':>9}")
    for pe, bake in [(0, 0), (2000, 0), (4000, 0), (6000, 0), (6000, 400)]:
        chip = fresh_chip(model)
        if pe:
            chip.stress_block(0, 0, pe)
        chip.erase_block(0, 0)
        chip.program_block(0, 0)
        if bake:
            chip.bake(bake)
        rber = chip.profile.page_rber(0, 0, 0, PageType.MSB, pe, bake)
        corrected, retries, latencies = 0, 0, []
        lost = 0
        for lwl in range(SMALL_GEOMETRY.lwls_per_block):
            try:
                result, _ = chip.read_page(0, 0, lwl, PageType.MSB)
            except UncorrectableReadError:
                lost += 1
                continue
            corrected += result.correction.corrected_bits
            retries += result.correction.retries
            latencies.append(result.latency_us)
        tail = f"{np.mean(latencies):>9.1f}" if latencies else f"{'-':>9}"
        line = (
            f"{pe:>7} {bake:>5}h {rber:>10.2e} {corrected:>10} {retries:>8} {tail}"
        )
        if lost:
            line += f"   <- {lost} pages UNCORRECTABLE (ECC exhausted)"
        print(line)

    # -- 2. a lane dies; parity carries the drive ----------------------------------
    print("\n2) lane 0 worn to death on a parity-protected 4-lane drive:")
    chips = []
    for lane in range(4):
        chip = fresh_chip(model, lane)
        if lane == 0:
            for block in range(10):
                chip.stress_block(0, block, 15_000)
        chips.append(chip)
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=10,
            overprovision_ratio=0.4,
            gc_low_watermark=2,
            gc_high_watermark=3,
            parity_protection=True,
        ),
    )
    ftl.format()
    count = ftl.logical_pages // 2
    for lpn in range(count):
        ftl.write(lpn)
    ftl.flush()
    ok = sum(1 for lpn in range(count) if ftl.read(lpn).located)
    print(
        f"   wrote {count} pages, read back {ok}/{count}; "
        f"{ftl.metrics.parity_reconstructions} pages rebuilt from row parity"
    )
    print(
        "   (without parity those reads raise UncorrectableReadError — "
        "try parity_protection=False)"
    )


if __name__ == "__main__":
    main()
