#!/usr/bin/env python3
"""QSTR-MED at runtime: gathering, sorted catalogs, on-demand assembly.

Demonstrates the scheme exactly as an FTL would drive it (Figure 8):
word-line program latencies stream into the gathering unit, finished blocks
land in per-chip sorted catalogs, and fast/slow superblocks assemble on
demand with 12 pair checks each — then shows the space/compute overheads of
Section VI.

Run:  python examples/ondemand_assembly.py
"""

from repro.api import (
    FlashChip,
    FootprintModel,
    format_bytes,
    overhead_reduction_pct,
    PAPER_GEOMETRY,
    qstr_med_pair_checks,
    QstrMedScheme,
    SpeedClass,
    str_med_pair_checks,
    TIB,
    VariationModel,
    VariationParams,
    WriteIntent,
    WriteSource,
)


def main() -> None:
    model = VariationModel(PAPER_GEOMETRY, VariationParams(), seed=11)
    lanes = [0, 1, 2, 3]
    chips = {lane: FlashChip(model.chip_profile(lane), PAPER_GEOMETRY) for lane in lanes}
    scheme = QstrMedScheme(PAPER_GEOMETRY, lanes, candidate_depth=4)

    # -- gathering: program blocks and stream the latencies in -----------------
    print("gathering similarity data for 4 chips x 24 blocks ...")
    for lane, chip in chips.items():
        for block in range(24):
            if chip.is_bad(0, block):
                continue
            chip.erase_block(0, block)
            scheme.note_block_allocated(lane, 0, block, chip.pe_cycles(0, block))
            for lwl in range(PAPER_GEOMETRY.lwls_per_block):
                latency = chip.program_wordline(0, block, lwl).latency_us
                scheme.note_wordline_programmed(lane, 0, block, lwl, latency)
            chip.erase_block(0, block)
            scheme.note_block_freed(lane, 0, block)

    for lane in lanes:
        catalog = scheme.catalog(lane)
        fastest = catalog.fastest()
        slowest = catalog.slowest()
        print(
            f"  chip {lane}: {len(catalog)} free blocks, "
            f"fastest b{fastest.block} ({fastest.pgm_total_us:,.0f} us), "
            f"slowest b{slowest.block} ({slowest.pgm_total_us:,.0f} us)"
        )

    # -- assembly on demand ------------------------------------------------------
    print("\nassembling on demand:")
    host = scheme.assemble_for(WriteIntent(WriteSource.HOST))  # -> FAST
    gc = scheme.assemble_for(WriteIntent(WriteSource.GC))      # -> SLOW
    for choice in (host, gc):
        members = ", ".join(
            f"c{r.lane}/b{r.block}" for r in choice.members
        )
        print(
            f"  {choice.speed_class.value:>4} superblock: [{members}] "
            f"(reference chip {choice.reference_lane}, "
            f"{choice.pair_checks} eigen pair checks)"
        )

    fast_mean = sum(r.pgm_total_us for r in host.members) / len(host.members)
    slow_mean = sum(r.pgm_total_us for r in gc.members) / len(gc.members)
    print(
        f"  fast SB mean block latency {fast_mean:,.0f} us vs slow SB "
        f"{slow_mean:,.0f} us — placement can route host writes to the fast one"
    )

    # -- overheads (Section VI) -----------------------------------------------------
    print("\noverheads:")
    print(
        f"  combination checks per superblock: STR-MED(4) {str_med_pair_checks(4, 4):,} "
        f"vs QSTR-MED {qstr_med_pair_checks(4, 4)} "
        f"({overhead_reduction_pct():.2f}% fewer)"
    )
    footprint = FootprintModel(PAPER_GEOMETRY)
    print(
        f"  metadata: {footprint.bytes_per_block} B per block, "
        f"{format_bytes(footprint.footprint_bytes(TIB))} per 1 TB SSD "
        f"(Equation 2); this runtime instance holds "
        f"{format_bytes(scheme.metadata_bytes())}"
    )


if __name__ == "__main__":
    main()
