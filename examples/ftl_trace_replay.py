#!/usr/bin/env python3
"""Trace-driven SSD replay: QSTR-MED vs a random-allocation FTL.

Generates a Zipf overwrite trace (saving it to a CSV you can inspect or
swap for a converted production trace), replays it on two identically-sized
simulated SSDs — one allocating superblocks with QSTR-MED and routing
host/GC traffic to fast/slow superblocks, one allocating at random — and
prints the latency and extra-latency comparison.

Run:  python examples/ftl_trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    ArrivalProcess,
    FlashChip,
    Ftl,
    FtlConfig,
    load_trace,
    NandGeometry,
    Replayer,
    save_trace,
    sequential_fill,
    Ssd,
    TimingConfig,
    VariationModel,
    VariationParams,
    zipf_writes,
)

# Paper-like block structure, scaled down so the demo fills the drive and
# garbage-collects in a few seconds.
GEOMETRY = NandGeometry(
    planes_per_chip=1,
    blocks_per_plane=48,
    layers_per_block=24,
    strings_per_layer=4,
    bits_per_cell=3,
)


def build_ssd(allocator_kind: str) -> Ssd:
    model = VariationModel(GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=99)
    chips = [FlashChip(model.chip_profile(c), GEOMETRY) for c in range(4)]
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=40,
            overprovision_ratio=0.28,
            gc_low_watermark=3,
            gc_high_watermark=5,
        ),
        allocator_kind=allocator_kind,
    )
    ftl.format()
    return Ssd(ftl, TimingConfig())


def main() -> None:
    probe = build_ssd("random")
    logical_pages = probe.ftl.logical_pages
    arrivals = ArrivalProcess(mean_interarrival_us=8000.0)

    # 1. Generate and save the trace (swap this file for your own workload).
    fill = sequential_fill(logical_pages, arrivals=arrivals, seed=1)
    overwrites = zipf_writes(
        logical_pages, int(logical_pages * 0.7), theta=1.2, arrivals=arrivals, seed=2
    )
    trace_path = Path(tempfile.gettempdir()) / "repro_zipf_trace.csv"
    save_trace(trace_path, overwrites, header="zipf(1.2) overwrite phase")
    print(f"trace saved to {trace_path} ({len(overwrites)} requests)")
    overwrites = load_trace(trace_path)

    # 2. Replay on both FTLs.
    print(f"replaying fill ({len(fill)} reqs) + overwrites on two SSDs ...\n")
    rows = []
    for kind in ("qstr", "random"):
        ssd = build_ssd(kind)
        replayer = Replayer(ssd)
        replayer.replay(fill)
        report = replayer.replay(overwrites)
        metrics = ssd.ftl.metrics
        rows.append(
            (
                kind,
                metrics.extra_program_us.mean,
                metrics.extra_erase_us.mean if metrics.extra_erase_us.count else 0.0,
                report.mean_write_us(),
                metrics.write_amplification,
                metrics.gc_runs,
            )
        )

    header = f"{'allocator':<10}{'extra PGM/op':>14}{'extra ERS':>11}{'host write us':>15}{'WAF':>6}{'GC':>5}"
    print(header)
    print("-" * len(header))
    for kind, extra_pgm, extra_ers, write_us, waf, gc in rows:
        print(
            f"{kind:<10}{extra_pgm:>14,.1f}{extra_ers:>11,.1f}"
            f"{write_us:>15,.1f}{waf:>6.2f}{gc:>5.0f}"
        )

    qstr, random_row = rows[0], rows[1]
    print(
        f"\nQSTR-MED superblocks waste {100 * (1 - qstr[1] / random_row[1]):.1f}% less "
        f"time on extra program latency under the same trace."
    )


if __name__ == "__main__":
    main()
