#!/usr/bin/env python3
"""Chip characterization walkthrough (the paper's Section III).

Probes two chips, then shows the three observations that motivate
PV-aware superblock organization:

1. block erase latency varies block-to-block and chip-to-chip (Figure 5 top);
2. word-line program-latency *trends* are similar within a chip but diverge
   across chips once the common layer shape is removed (Figure 5 bottom);
3. condensing a block's string speeds into a 1-bit-per-word-line eigen
   sequence (Figure 9) makes similarity a cheap XOR.

Run:  python examples/characterize_chips.py
"""

import numpy as np

from repro.api import (
    eigen_sequence,
    FlashChip,
    mean_lwl_curve,
    MeasurementSet,
    PAPER_GEOMETRY,
    Prober,
    render_series_block,
    residual_trend_correlation,
    sparkline,
    variability_report,
    VariationModel,
    VariationParams,
)


def main() -> None:
    model = VariationModel(PAPER_GEOMETRY, VariationParams(), seed=7)
    chips = [FlashChip(model.chip_profile(c), PAPER_GEOMETRY) for c in range(2)]

    print("probing 2 chips x 120 blocks ...")
    measurements = MeasurementSet()
    for chip in chips:
        prober = Prober(chip)
        for block in range(120):
            if not chip.is_bad(0, block):
                measurements.add(prober.probe_block(0, block))

    # -- 1. erase latency spread -------------------------------------------------
    print()
    erase_series = {
        f"chip {chip_id}": [m.erase_latency_us for m in measurements.chip(chip_id)]
        for chip_id in measurements.chip_ids()
    }
    print(render_series_block("tBERS per block [us] (Fig 5 top)", erase_series))
    report = variability_report(measurements, "program_total")
    print(
        f"\nblock program-latency spread: within-chip std "
        f"{report.within_chip_std:,.0f} us, cross-chip std {report.cross_chip_std:,.0f} us"
    )

    # -- 2. word-line trends ---------------------------------------------------------
    chip0 = measurements.chip(0).measurements
    chip1 = measurements.chip(1).measurements
    common = mean_lwl_curve(chip0 + chip1)
    within = residual_trend_correlation(chip0[0], chip0[1], common)
    across = residual_trend_correlation(chip0[0], chip1[0], common)
    print(
        f"residual WL-trend correlation: {within:+.3f} within chip 0, "
        f"{across:+.3f} across chips (process similarity lives inside a chip)"
    )

    # -- 3. eigen sequences -------------------------------------------------------------
    print("\neigen sequences (first 48 bits) and XOR distances to chip0/block0:")
    reference = eigen_sequence(chip0[0].wl_latencies_us)
    for label, m in [("chip0 blk0", chip0[0]), ("chip0 blk1", chip0[1]),
                     ("chip1 blk0", chip1[0]), ("chip1 blk1", chip1[1])]:
        eigen = eigen_sequence(m.wl_latencies_us)
        prefix = "".join(str(b) for b in eigen.to_bits()[:48])
        print(f"  {label}: {prefix}...  distance={reference.hamming_distance(eigen):3d}")

    # raw tPROG curves, for the V-shape
    print()
    curve = chip0[0].lwl_latencies()
    print("chip0/blk0 tPROG per WL:", sparkline(curve, 64))
    print(f"  (min {curve.min():,.0f} us, max {curve.max():,.0f} us — the 3D channel V-shape)")


if __name__ == "__main__":
    main()
