#!/usr/bin/env python3
"""Learned policies vs static QSTR-MED, head-to-head via ``repro sweep``.

Three variants of the same GC-pressured device replay, differing only in
one policy slot of ``SimConfig.policies``:

* **static** — every slot unset: the paper's hand-tuned QSTR-MED behavior;
* **predictor** — ``assembly.predictor``: member choice by *predicted*
  word-line latency, learned online from measured program latencies;
* **bandit** — ``allocation.bandit``: epsilon-greedy fast/slow steering of
  host writes, rewarded by super-word-line completion latency.

Each variant sweeps the same seeds twice — serially and across a two-worker
process pool — and the results are asserted bit-identical, demonstrating
that learned policies keep the sweep substrate's determinism contract
(their only randomness is the seed-derived ``"policy"`` stream, and their
state pickles with the config into each worker).

Run:  python examples/sweep_policies.py
"""

from repro.api import FtlConfig, SimConfig, Sweep, dig, run

#: enough write pressure that GC and on-demand assembly both run; small
#: enough that nine cells finish in seconds.
BASE = SimConfig.device(
    seed=11,
    chips=4,
    blocks=28,
    ftl=FtlConfig(
        usable_blocks_per_plane=20,
        overprovision_ratio=0.30,
        gc_low_watermark=2,
        gc_high_watermark=4,
    ),
)

SEEDS = range(3)

VARIANTS = (
    ("static QSTR-MED", None, None),
    ("assembly.predictor", "policies.assembly", "assembly.predictor:warmup=64"),
    ("allocation.bandit", "policies.allocation", "allocation.bandit:epsilon=0.1"),
)


def main() -> None:
    rows = []
    for label, path, spec in VARIANTS:
        config = BASE if path is None else BASE.with_path(path, spec)
        sweep = Sweep("replay", base=config).over("seed", SEEDS)
        serial = run(sweep, workers=1)
        parallel = run(sweep, workers=2)
        assert [c.result for c in serial.cells] == [
            c.result for c in parallel.cells
        ], f"{label}: serial vs parallel sweeps diverged"

        cells = serial.cells
        mean = lambda path: sum(  # noqa: E731 - tiny local reducer
            dig(c.result, path) for c in cells
        ) / len(cells)
        rows.append(
            (
                label,
                config.content_hash(),
                mean("latency.WRITE.mean"),
                mean("latency.WRITE.p99"),
                mean("ftl.extra_program_mean_us"),
                mean("ftl.write_amplification"),
            )
        )

    print(f"replay task, {len(list(SEEDS))} seeds per variant, "
          f"serial == 2-worker pool for every variant\n")
    header = (
        f"{'variant':22s} {'config':18s} {'write mean us':>13s} "
        f"{'write p99 us':>13s} {'extra PGM us':>13s} {'WA':>6s}"
    )
    print(header)
    print("-" * len(header))
    for label, config_hash, w_mean, w_p99, extra, wa in rows:
        print(
            f"{label:22s} {config_hash:18s} {w_mean:13,.1f} "
            f"{w_p99:13,.1f} {extra:13,.2f} {wa:6.3f}"
        )


if __name__ == "__main__":
    main()
