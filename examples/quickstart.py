#!/usr/bin/env python3
"""Quickstart: measure the superpage problem and fix it with QSTR-MED.

Builds a four-chip synthetic testbed, probes 200 blocks per chip through the
normal chip API, then compares random superblock organization against the
paper's QSTR-MED scheme — printing the extra program/erase latency both ways.

Run:  python examples/quickstart.py
"""

from repro.api import (
    build_lane_pools,
    evaluate_assembler,
    FlashChip,
    PAPER_GEOMETRY,
    QstrMedAssembler,
    RandomAssembler,
    VariationModel,
    VariationParams,
)


def main() -> None:
    # 1. A synthetic testbed: four 3D TLC chips sharing one wafer's
    #    process-variation structure (the stand-in for the paper's hardware).
    model = VariationModel(PAPER_GEOMETRY, VariationParams(), seed=2024)
    chips = [FlashChip(model.chip_profile(c), PAPER_GEOMETRY) for c in range(4)]

    # 2. Characterize: erase + fully program 400 blocks per chip, recording
    #    every word-line latency (this is what a tester — or the FTL's own
    #    gathering unit — sees).
    print("probing 4 chips x 400 blocks ...")
    pools = build_lane_pools(chips, range(400))

    # 3. Organize superblocks two ways and compare.
    random_result = evaluate_assembler(RandomAssembler(seed=1), pools)
    qstr_result = evaluate_assembler(QstrMedAssembler(candidate_depth=4), pools)

    print(f"\n{'':24}{'extra PGM (us)':>16}{'extra ERS (us)':>16}")
    print(
        f"{'random organization':24}{random_result.mean_extra_program_us:>16,.1f}"
        f"{random_result.mean_extra_erase_us:>16,.2f}"
    )
    print(
        f"{'QSTR-MED organization':24}{qstr_result.mean_extra_program_us:>16,.1f}"
        f"{qstr_result.mean_extra_erase_us:>16,.2f}"
    )
    print(
        f"\nQSTR-MED cuts extra program latency by "
        f"{qstr_result.program_improvement_vs(random_result):.1f}% and extra erase "
        f"latency by {qstr_result.erase_improvement_vs(random_result):.1f}% "
        f"(paper: 16.61% / 34.55-59.82%)."
    )


if __name__ == "__main__":
    main()
