"""The live repository must be deep-lint clean modulo the committed baseline.

This mirrors the CI ``deep-lint`` job: the whole-program passes must report
nothing new, the baseline must stay small and justified, the SARIF export
must validate against the 2.1.0 (subset) schema, and the committed vector
work-list must match what the tree actually contains.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    MAX_BASELINE_ENTRIES,
    Baseline,
    fingerprint,
)
from repro.lint.deep import all_deep_rules, run_deep
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.report import render_text
from repro.lint.sarif import render_sarif, validate_sarif
from repro.lint.vector import vector_report

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTED_DIRS = ["src", "benchmarks", "examples", "tools"]


def _existing_dirs() -> List[Path]:
    return [REPO_ROOT / d for d in LINTED_DIRS if (REPO_ROOT / d).is_dir()]


def _deep_findings() -> List[Finding]:
    return run_deep(_existing_dirs(), root=REPO_ROOT)


def test_repository_is_deep_lint_clean_modulo_baseline() -> None:
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    fresh, _ = baseline.split(_deep_findings())
    assert not fresh, "\n" + render_text(fresh)


def test_baseline_is_small_and_justified() -> None:
    path = REPO_ROOT / DEFAULT_BASELINE
    baseline = Baseline.load(path)
    assert len(baseline) <= MAX_BASELINE_ENTRIES
    for key, entry in baseline.entries.items():
        justification = entry.get("justification", "")
        assert justification and "TODO" not in justification, (
            f"baseline entry {key} ({entry.get('code')}) lacks a real "
            f"justification"
        )


def test_baseline_entries_are_not_stale() -> None:
    """Every grandfathered fingerprint must still match a live finding."""
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    live = {fingerprint(finding) for finding in _deep_findings()}
    stale = sorted(set(baseline.entries) - live)
    assert not stale, f"baseline entries no longer fired by --deep: {stale}"


def test_sarif_export_validates_against_schema() -> None:
    findings = _deep_findings()
    descriptors = [
        {"code": rule.code, "name": rule.name, "description": rule.description}
        for rule in all_deep_rules()
    ]
    document = render_sarif(findings, rules=descriptors)
    assert validate_sarif(document) == []
    parsed = json.loads(document)
    assert parsed["version"] == "2.1.0"
    rule_ids = {rule["id"] for rule in parsed["runs"][0]["tool"]["driver"]["rules"]}
    assert {"RNG010", "DET010", "PROC001", "VEC001"} <= rule_ids


def test_sarif_validator_rejects_malformed_documents() -> None:
    assert validate_sarif({"version": "2.1.0"}) != []
    assert validate_sarif({"version": "9.9", "runs": []}) != []
    good = json.loads(render_sarif([]))
    good["runs"][0]["results"] = [{"message": {"text": "no ruleId"}}]
    assert validate_sarif(good) != []


def test_committed_vector_worklist_matches_tree() -> None:
    committed = (REPO_ROOT / "tools" / "vector_worklist.json").read_text(
        encoding="utf-8"
    )
    project = Project.from_paths(_existing_dirs(), root=REPO_ROOT)
    generated = json.dumps(vector_report(project), indent=2) + "\n"
    assert committed == generated, (
        "tools/vector_worklist.json is stale; regenerate with "
        "`repro lint --vector-report tools/vector_worklist.json`"
    )


def test_vector_worklist_covers_the_hot_path() -> None:
    doc = json.loads(
        (REPO_ROOT / "tools" / "vector_worklist.json").read_text(encoding="utf-8")
    )
    functions = doc["functions"]
    assert len(functions) >= 10
    for entry in functions:
        assert isinstance(entry["pure"], bool)
        for loop in entry["loops"]:
            assert loop["shape"] in ("map", "reduce", "mixed")
    # ranked: scores never increase down the list
    scores = [entry["score"] for entry in functions]
    assert scores == sorted(scores, reverse=True)
    # The rank/median signature kernels that used to lead the list were
    # vectorized in place (their batch twins live in repro.kernels), so no
    # loop in them is left to lift: they must not be flagged as loopy
    # vectorization targets anymore.
    loopy = {
        entry["function"] for entry in functions if entry["loops"]
    }
    for name in (
        "repro.assembly.signatures.pwl_rank_signature",
        "repro.assembly.signatures.str_rank_signature",
        "repro.assembly.signatures.str_median_signature",
    ):
        assert name not in loopy, f"{name} regressed to a python loop"


def test_deep_pass_runs_fresh_each_time() -> None:
    """Two runs over the same tree agree exactly (determinism of the linter)."""
    first = _deep_findings()
    second = _deep_findings()
    assert first == second
