"""Workload model, generators, trace I/O and replay tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    ArrivalProcess,
    OpKind,
    Replayer,
    Request,
    clamp_requests,
    hot_cold_writes,
    load_trace,
    mixed_read_write,
    parse_trace_line,
    save_trace,
    sequential_fill,
    small_large_mix,
    uniform_random_writes,
    zipf_writes,
)
from repro.workloads.trace import TraceFormatError


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(time_us=-1, op=OpKind.WRITE, lpn=0)
        with pytest.raises(ValueError):
            Request(time_us=0, op=OpKind.WRITE, lpn=-1)
        with pytest.raises(ValueError):
            Request(time_us=0, op=OpKind.WRITE, lpn=0, pages=0)

    def test_lpns(self):
        r = Request(time_us=0, op=OpKind.WRITE, lpn=5, pages=3)
        assert list(r.lpns()) == [5, 6, 7]
        assert r.end_lpn == 7

    def test_op_parse(self):
        assert OpKind.parse("r") is OpKind.READ
        assert OpKind.parse("WRITE") is OpKind.WRITE
        assert OpKind.parse(" T ") is OpKind.TRIM
        with pytest.raises(ValueError):
            OpKind.parse("x")

    def test_clamp(self):
        requests = [
            Request(time_us=0, op=OpKind.WRITE, lpn=8, pages=4),
            Request(time_us=1, op=OpKind.WRITE, lpn=20, pages=1),
            Request(time_us=2, op=OpKind.WRITE, lpn=0, pages=2),
        ]
        clamped = clamp_requests(requests, 10)
        assert len(clamped) == 2
        assert clamped[0].pages == 2  # trimmed at the boundary
        assert clamped[1].lpn == 0


class TestGenerators:
    def test_sequential_covers_space(self):
        requests = sequential_fill(100, pages_per_request=8)
        touched = sorted(lpn for r in requests for lpn in r.lpns())
        assert touched == list(range(100))

    def test_uniform_in_range(self):
        requests = uniform_random_writes(50, 200, seed=1)
        assert len(requests) == 200
        assert all(0 <= r.lpn < 50 for r in requests)

    def test_zipf_skew(self):
        requests = zipf_writes(1000, 3000, theta=1.3, seed=2)
        counts = {}
        for r in requests:
            counts[r.lpn] = counts.get(r.lpn, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # the hottest page absorbs far more than the uniform share
        assert top[0] > 3000 / 1000 * 10

    def test_zipf_theta_validation(self):
        with pytest.raises(ValueError):
            zipf_writes(10, 10, theta=1.0)

    def test_mixed_reads_only_written(self):
        requests = mixed_read_write(100, 500, read_fraction=0.5, seed=3)
        written = set()
        for r in requests:
            if r.op is OpKind.WRITE:
                written.add(r.lpn)
            else:
                assert r.lpn in written

    def test_mixed_fraction_validation(self):
        with pytest.raises(ValueError):
            mixed_read_write(10, 10, read_fraction=1.5)

    def test_hot_cold_concentration(self):
        requests = hot_cold_writes(1000, 2000, hot_fraction=0.1, hot_probability=0.9, seed=4)
        hot = sum(1 for r in requests if r.lpn < 100)
        assert hot / len(requests) > 0.8

    def test_hot_cold_validation(self):
        with pytest.raises(ValueError):
            hot_cold_writes(10, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hot_cold_writes(10, 10, hot_probability=1.5)

    def test_small_large_mix(self):
        requests = small_large_mix(1000, 300, small_fraction=0.5, seed=5)
        sizes = {r.pages for r in requests}
        assert sizes == {1, 32}

    def test_determinism(self):
        a = zipf_writes(100, 50, seed=9)
        b = zipf_writes(100, 50, seed=9)
        assert [(r.lpn, r.time_us) for r in a] == [(r.lpn, r.time_us) for r in b]

    def test_arrival_times_increasing(self):
        requests = uniform_random_writes(50, 100, seed=6)
        times = [r.time_us for r in requests]
        assert times == sorted(times)

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess(0.0).times(5, np.random.default_rng(0))


class TestTraceIO:
    def test_parse_line(self):
        r = parse_trace_line("12.5,W,100,4")
        assert (r.time_us, r.op, r.lpn, r.pages) == (12.5, OpKind.WRITE, 100, 4)
        r3 = parse_trace_line("0,R,5")
        assert r3.pages == 1

    def test_parse_errors(self):
        with pytest.raises(TraceFormatError):
            parse_trace_line("1,W")
        with pytest.raises(TraceFormatError):
            parse_trace_line("x,W,1,1")
        with pytest.raises(TraceFormatError):
            parse_trace_line("-5,W,1,1")

    def test_roundtrip(self, tmp_path):
        requests = uniform_random_writes(100, 50, seed=7)
        path = tmp_path / "trace.csv"
        count = save_trace(path, requests, header="test trace")
        assert count == 50
        loaded = load_trace(path)
        assert len(loaded) == 50
        for original, read in zip(requests, loaded):
            assert read.lpn == original.lpn
            assert read.op == original.op
            assert read.time_us == pytest.approx(original.time_us, abs=1e-3)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# header\n\n0,W,1,1\n")
        assert len(load_trace(path)) == 1

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1e6, allow_nan=False),
                st.sampled_from(list(OpKind)),
                st.integers(0, 10_000),
                st.integers(1, 64),
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, rows):
        import tempfile
        from pathlib import Path

        requests = [Request(round(t, 3), op, lpn, pages) for t, op, lpn, pages in rows]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            save_trace(path, requests)
            loaded = load_trace(path)
        assert [(r.op, r.lpn, r.pages) for r in loaded] == [
            (r.op, r.lpn, r.pages) for r in requests
        ]


class TestReplayer:
    def test_replay_summary(self):
        from repro.ftl import Ftl, FtlConfig
        from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams
        from repro.ssd import Ssd

        model = VariationModel(
            SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=13
        )
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(3)]
        ftl = Ftl(chips, FtlConfig(usable_blocks_per_plane=10, overprovision_ratio=0.3))
        ftl.format()
        replayer = Replayer(Ssd(ftl))
        report = replayer.replay(
            mixed_read_write(ftl.logical_pages, 200, seed=8,
                             arrivals=ArrivalProcess(2000.0))
        )
        summary = report.summary()
        assert "WRITE" in summary
        assert report.mean_write_us() > 0
        assert report.p99_write_us() >= report.mean_write_us() * 0.5
        # out-of-range requests are clamped silently
        assert len(report.completed) == 200
