"""MSR trace conversion tests."""

import pytest

from repro.workloads.convert import (
    FILETIME_TICK_US,
    convert_msr_line,
    convert_msr_trace,
    iter_msr_trace,
)
from repro.workloads.model import OpKind
from repro.workloads.trace import TraceFormatError

PAGE = 4096


class TestLineConversion:
    def test_write_line(self):
        request = convert_msr_line(
            "128166372003061629,src1,0,Write,8192,8192,100", PAGE
        )
        assert request.op is OpKind.WRITE
        assert request.lpn == 2
        assert request.pages == 2

    def test_read_line_and_partial_pages(self):
        # 100 bytes starting mid-page still touches exactly one page
        request = convert_msr_line("0,h,0,Read,100,100,5", PAGE)
        assert request.op is OpKind.READ
        assert request.lpn == 0
        assert request.pages == 1

    def test_page_straddle(self):
        # 2 bytes straddling a page boundary -> two pages
        request = convert_msr_line(f"0,h,0,Write,{PAGE - 1},2,5", PAGE)
        assert request.lpn == 0
        assert request.pages == 2

    def test_time_origin(self):
        request = convert_msr_line("1000,h,0,Write,0,512,1", PAGE, time_origin_ticks=0)
        assert request.time_us == pytest.approx(1000 * FILETIME_TICK_US)

    def test_errors(self):
        with pytest.raises(TraceFormatError):
            convert_msr_line("1,2,3", PAGE)
        with pytest.raises(TraceFormatError):
            convert_msr_line("x,h,0,Write,0,512,1", PAGE)
        with pytest.raises(TraceFormatError):
            convert_msr_line("0,h,0,Flush,0,512,1", PAGE)
        with pytest.raises(TraceFormatError):
            convert_msr_line("0,h,0,Write,0,0,1", PAGE)
        with pytest.raises(ValueError):
            convert_msr_line("0,h,0,Write,0,512,1", 0)


@pytest.fixture()
def msr_file(tmp_path):
    path = tmp_path / "msr.csv"
    path.write_text(
        "# comment\n"
        "1000,h,0,Write,0,8192,1\n"
        "2000,h,0,Read,4096,4096,1\n"
        "3000,h,0,Write,1000000,4096,1\n"
    )
    return path


class TestFileConversion:
    def test_iter(self, msr_file):
        requests = list(iter_msr_trace(msr_file, PAGE))
        assert len(requests) == 3
        assert requests[0].time_us == 0.0  # origin = first record
        assert requests[1].time_us == pytest.approx(100.0)

    def test_time_scale(self, msr_file):
        requests = list(iter_msr_trace(msr_file, PAGE, time_scale=0.5))
        assert requests[1].time_us == pytest.approx(50.0)
        with pytest.raises(ValueError):
            list(iter_msr_trace(msr_file, PAGE, time_scale=0))

    def test_modulo_fold(self, msr_file):
        requests = convert_msr_trace(msr_file, PAGE, logical_pages=100)
        assert len(requests) == 3
        # 1000000 // 4096 = 244 -> folds to 44
        assert requests[2].lpn == 44

    def test_drop_out_of_range(self, msr_file):
        requests = convert_msr_trace(
            msr_file, PAGE, logical_pages=100, modulo_fold=False
        )
        assert len(requests) == 2

    def test_no_clamp_without_logical(self, msr_file):
        requests = convert_msr_trace(msr_file, PAGE)
        assert requests[2].lpn == 244

    def test_replayable(self, msr_file):
        # converted requests drive the real stack end to end
        from repro.ftl import Ftl, FtlConfig
        from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams
        from repro.ssd import Ssd
        from repro.workloads import Replayer

        model = VariationModel(
            SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=2
        )
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(2)]
        ftl = Ftl(chips, FtlConfig(usable_blocks_per_plane=8, overprovision_ratio=0.3))
        ftl.format()
        requests = convert_msr_trace(
            msr_file, SMALL_GEOMETRY.page_user_bytes, logical_pages=ftl.logical_pages
        )
        report = Replayer(Ssd(ftl)).replay(requests)
        assert len(report.completed) == 3
