"""RunningStats / Histogram / percentile tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import Histogram, RunningStats, percentile, summarize

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestRunningStats:
    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            stats.mean
        with pytest.raises(ValueError):
            stats.variance
        with pytest.raises(ValueError):
            stats.minimum

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_matches_numpy(self):
        values = [1.0, 2.5, -3.0, 4.0, 4.0]
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values))
        assert stats.stdev == pytest.approx(np.std(values))
        assert stats.total == pytest.approx(sum(values))

    def test_merge_empty_cases(self):
        a = RunningStats()
        b = RunningStats()
        b.extend([1.0, 2.0])
        assert a.merge(b).mean == pytest.approx(1.5)
        assert b.merge(a).mean == pytest.approx(1.5)
        assert a.merge(RunningStats()).count == 0

    @given(st.lists(floats, min_size=1, max_size=50), st.lists(floats, min_size=1, max_size=50))
    def test_merge_equals_concat(self, xs, ys):
        a = RunningStats()
        a.extend(xs)
        b = RunningStats()
        b.extend(ys)
        merged = a.merge(b)
        direct = RunningStats()
        direct.extend(xs + ys)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-4)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    def test_repr(self):
        stats = RunningStats()
        assert "empty" in repr(stats)
        stats.add(1.0)
        assert "n=1" in repr(stats)


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(low=1, high=1, bins=3)
        with pytest.raises(ValueError):
            Histogram(low=0, high=1, bins=0)

    def test_binning(self):
        hist = Histogram(low=0, high=10, bins=5)
        hist.extend([0, 1.9, 2, 9.99])
        assert hist.counts == [2, 1, 0, 0, 1]
        assert hist.underflow == 0 and hist.overflow == 0

    def test_under_over_flow(self):
        hist = Histogram(low=0, high=10, bins=2)
        hist.add(-1)
        hist.add(10)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 2

    def test_edges_and_centers(self):
        hist = Histogram(low=0, high=4, bins=4)
        assert hist.bin_edges() == [0, 1, 2, 3, 4]
        assert hist.bin_centers() == [0.5, 1.5, 2.5, 3.5]

    def test_mode_center(self):
        hist = Histogram(low=0, high=4, bins=4)
        hist.extend([1.5, 1.6, 3.0])
        assert hist.mode_center() == 1.5
        empty = Histogram(low=0, high=1, bins=2)
        with pytest.raises(ValueError):
            empty.mode_center()

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=200))
    def test_total_conserved(self, values):
        hist = Histogram(low=10, high=90, bins=7)
        hist.extend(values)
        assert hist.total == len(values)


class TestPercentile:
    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_range_check(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single(self):
        assert percentile([3.0], 99) == 3.0

    @given(st.lists(floats, min_size=2, max_size=100), st.floats(0, 100))
    def test_matches_numpy(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-6
        )

    def test_summarize_keys(self):
        result = summarize([1.0, 2.0, 3.0])
        assert set(result) == {"count", "mean", "stdev", "min", "max", "p50", "p99"}
        assert result["count"] == 3.0
        assert result["p50"] == 2.0
