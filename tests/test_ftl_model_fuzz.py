"""Model-based fuzzing: the FTL vs a plain dict, under random op streams.

The reference model of a page store is one line: ``store[lpn] = lpn written
last``.  Whatever sequence of writes, reads, trims, flushes — with GC, wear
leveling and superpage steering churning underneath — the FTL must agree
with the dict at every read and after every drain.  Runs across all four
allocators and a mix of configs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import WriteIntent, WriteSource
from repro.ftl import Ftl, FtlConfig, WearLevelingConfig
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams


def build_ftl(allocator="qstr", seed=77, steering=False, wear=False):
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=seed
    )
    chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(3)]
    config = FtlConfig(
        usable_blocks_per_plane=10,
        overprovision_ratio=0.4,
        gc_low_watermark=2,
        gc_high_watermark=3,
        superpage_steering=steering,
        wear_leveling=(
            WearLevelingConfig(pe_gap_threshold=8, check_interval_erases=4)
            if wear
            else None
        ),
    )
    ftl = Ftl(chips, config, allocator_kind=allocator)
    ftl.format()
    return ftl


def apply_ops(ftl, ops):
    """Run an op stream against the FTL and the dict model in lockstep."""
    reference = {}
    for op, lpn in ops:
        lpn = lpn % ftl.logical_pages
        if op == "write":
            ftl.write(lpn)
            reference[lpn] = lpn
        elif op == "trim":
            ftl.trim(lpn)
            reference.pop(lpn, None)
        elif op == "read":
            result = ftl.read(lpn)
            assert result.located == (lpn in reference), (op, lpn)
        else:  # flush
            ftl.flush()
    ftl.flush()
    return reference


def check_against_reference(ftl, reference):
    for lpn in range(ftl.logical_pages):
        result = ftl.read(lpn)  # raises IntegrityError on corruption
        assert result.located == (lpn in reference), lpn


op_streams = st.lists(
    st.tuples(
        st.sampled_from(["write", "write", "write", "read", "trim", "flush"]),
        st.integers(0, 10_000),
    ),
    min_size=1,
    max_size=120,
)


class TestModelFuzz:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=op_streams)
    def test_qstr_agrees_with_dict(self, ops):
        ftl = build_ftl("qstr")
        reference = apply_ops(ftl, ops)
        check_against_reference(ftl, reference)

    @pytest.mark.parametrize("allocator", ["random", "sequential", "pgm_sorted"])
    def test_baseline_allocators_heavy_stream(self, allocator):
        ftl = build_ftl(allocator)
        rng = np.random.default_rng(hash(allocator) % 2**32)
        ops = [
            (str(rng.choice(["write", "write", "write", "read", "trim", "flush"])),
             int(rng.integers(10_000)))
            for _ in range(1500)
        ]
        reference = apply_ops(ftl, ops)
        check_against_reference(ftl, reference)

    def test_steering_and_wear_leveling_combo(self):
        ftl = build_ftl("qstr", steering=True, wear=True)
        rng = np.random.default_rng(9)
        reference = {}
        small = WriteIntent(WriteSource.HOST, pages=1, sequential=False)
        big = WriteIntent(WriteSource.HOST, pages=32, sequential=True)
        for _ in range(7000):
            roll = rng.random()
            lpn = int(rng.integers(ftl.logical_pages))
            if roll < 0.75:
                intent = small if rng.random() < 0.5 else big
                ftl.write(lpn, WriteSource.HOST, intent=intent)
                reference[lpn] = lpn
            elif roll < 0.85:
                ftl.trim(lpn)
                reference.pop(lpn, None)
            else:
                result = ftl.read(lpn)
                assert result.located == (lpn in reference)
        ftl.flush()
        check_against_reference(ftl, reference)
        assert ftl.metrics.gc_runs > 0

    def test_overwrite_storm_single_page(self):
        # pathological: hammer one lpn; buffer coalescing + GC must cope
        ftl = build_ftl("qstr")
        for i in range(2000):
            ftl.write(5)
        ftl.flush()
        assert ftl.read(5).located
        # coalescing kept physical traffic far below 2000 pages
        assert ftl.metrics.host_pages_written < 500
