"""FlashChip state machine tests."""

import pytest

from repro.nand import SMALL_GEOMETRY, FlashChip, PageType, VariationModel, VariationParams
from repro.nand.errors import (
    BadBlockError,
    EnduranceExceededError,
    MultiPlaneError,
    ProgramOrderError,
    ProgramStateError,
    ReadStateError,
)


@pytest.fixture()
def chip():
    model = VariationModel(SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=21)
    return FlashChip(model.chip_profile(0), SMALL_GEOMETRY)


def find_good_block(chip, plane=0):
    for block in range(chip.geometry.blocks_per_plane):
        if not chip.is_bad(plane, block):
            return block
    raise AssertionError("no good block")


class TestEraseProgram:
    def test_program_requires_erase(self, chip):
        with pytest.raises(ProgramStateError):
            chip.program_wordline(0, 0, 0)

    def test_erase_then_program(self, chip):
        erase = chip.erase_block(0, 0)
        assert erase.latency_us > 0
        result = chip.program_wordline(0, 0, 0)
        assert result.latency_us > 0
        assert chip.programmed_lwls(0, 0) == 1

    def test_program_order_enforced(self, chip):
        chip.erase_block(0, 0)
        chip.program_wordline(0, 0, 0)
        with pytest.raises(ProgramOrderError):
            chip.program_wordline(0, 0, 2)
        with pytest.raises(ProgramOrderError):
            chip.program_wordline(0, 0, 0)

    def test_erase_resets_pointer_and_data(self, chip):
        chip.erase_block(0, 0)
        chip.program_wordline(0, 0, 0, data={PageType.LSB: "x"})
        chip.erase_block(0, 0)
        assert chip.programmed_lwls(0, 0) == 0
        with pytest.raises(ReadStateError):
            chip.read_page(0, 0, 0, PageType.LSB)

    def test_pe_counting(self, chip):
        assert chip.pe_cycles(0, 1) == 0
        chip.erase_block(0, 1)
        chip.erase_block(0, 1)
        assert chip.pe_cycles(0, 1) == 2

    def test_program_block_full(self, chip):
        chip.erase_block(0, 2)
        latencies = chip.program_block(0, 2)
        assert len(latencies) == SMALL_GEOMETRY.lwls_per_block
        assert chip.is_fully_programmed(0, 2)

    def test_program_full_block_then_more_fails(self, chip):
        chip.erase_block(0, 2)
        chip.program_block(0, 2)
        with pytest.raises(ProgramOrderError):
            chip.program_wordline(0, 2, 0)

    def test_latency_deterministic_per_pe(self, chip):
        chip.erase_block(0, 3)
        first = chip.program_wordline(0, 3, 0).latency_us
        chip.erase_block(0, 3)
        # PE advanced by one -> latency may shift by the aging slope, but a
        # fresh chip at the same PE must reproduce it exactly.
        model = VariationModel(SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=21)
        other = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        other.erase_block(0, 3)
        assert other.program_wordline(0, 3, 0).latency_us == first


class TestReads:
    def test_read_back_payload(self, chip):
        chip.erase_block(1, 0)
        chip.program_wordline(1, 0, 0, data={PageType.LSB: 123, PageType.MSB: "m"})
        result, payload = chip.read_page(1, 0, 0, PageType.LSB)
        assert payload == 123
        assert result.latency_us > 0
        _, missing = chip.read_page(1, 0, 0, PageType.CSB)
        assert missing is None

    def test_read_unprogrammed_fails(self, chip):
        chip.erase_block(1, 1)
        with pytest.raises(ReadStateError):
            chip.read_page(1, 1, 0, PageType.LSB)

    def test_read_invalid_page_type(self, chip):
        chip.erase_block(1, 2)
        chip.program_wordline(1, 2, 0)
        with pytest.raises(ValueError):
            chip.read_page(1, 2, 0, PageType.TSB)


class TestEndurance:
    def test_wearout_retires_block(self):
        params = VariationParams(
            factory_bad_ratio=0.0, endurance_cycles=3, endurance_sigma_log=0.0
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=5)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        for _ in range(3):
            chip.erase_block(0, 0)
        with pytest.raises(EnduranceExceededError):
            chip.erase_block(0, 0)
        assert chip.is_bad(0, 0)
        with pytest.raises(BadBlockError):
            chip.erase_block(0, 0)

    def test_stress_block(self):
        params = VariationParams(factory_bad_ratio=0.0)
        model = VariationModel(SMALL_GEOMETRY, params, seed=5)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        chip.stress_block(0, 0, 100)
        assert chip.pe_cycles(0, 0) == 100
        assert chip.programmed_lwls(0, 0) == 0
        chip.program_wordline(0, 0, 0)  # stress leaves block erased

    def test_stress_past_endurance(self):
        params = VariationParams(
            factory_bad_ratio=0.0, endurance_cycles=10, endurance_sigma_log=0.0
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=5)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        with pytest.raises(EnduranceExceededError):
            chip.stress_block(0, 0, 11)
        assert chip.is_bad(0, 0)

    def test_stress_negative(self, chip):
        with pytest.raises(ValueError):
            chip.stress_block(0, 0, -1)


class TestFactoryBad:
    def test_factory_bad_rejected(self):
        params = VariationParams(factory_bad_ratio=0.9)
        model = VariationModel(SMALL_GEOMETRY, params, seed=5)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        bad = next(
            b for b in range(SMALL_GEOMETRY.blocks_per_plane) if chip.is_bad(0, b)
        )
        with pytest.raises(BadBlockError):
            chip.erase_block(0, bad)


class TestMultiPlane:
    def test_mp_erase_completion_is_max(self, chip):
        result = chip.multiplane_erase([(0, 5), (1, 5)])
        assert result.latency_us == max(result.plane_latencies_us)
        assert result.extra_latency_us == (
            max(result.plane_latencies_us) - min(result.plane_latencies_us)
        )

    def test_mp_program(self, chip):
        chip.multiplane_erase([(0, 6), (1, 6)])
        result = chip.multiplane_program([(0, 6, 0), (1, 6, 0)])
        assert len(result.plane_latencies_us) == 2
        assert result.latency_us == max(result.plane_latencies_us)

    def test_mp_read(self, chip):
        chip.multiplane_erase([(0, 7), (1, 7)])
        chip.multiplane_program([(0, 7, 0), (1, 7, 0)])
        result = chip.multiplane_read(
            [(0, 7, 0, PageType.LSB), (1, 7, 0, PageType.LSB)]
        )
        assert result.latency_us >= max(result.plane_latencies_us)

    def test_mp_duplicate_plane_rejected(self, chip):
        with pytest.raises(MultiPlaneError):
            chip.multiplane_erase([(0, 1), (0, 2)])

    def test_mp_empty_rejected(self, chip):
        with pytest.raises(MultiPlaneError):
            chip.multiplane_erase([])
        with pytest.raises(MultiPlaneError):
            chip.multiplane_program([])
        with pytest.raises(MultiPlaneError):
            chip.multiplane_read([])
