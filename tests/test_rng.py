"""Seeded RNG discipline tests."""

from repro.utils.rng import RngFactory, derive_seed, spawn_pair


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_path_sensitivity(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_flattening_distinct(self):
        # ("ab",) vs ("a", "b") must not collide via naive concatenation
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2**64


class TestRngFactory:
    def test_same_path_same_stream(self):
        f = RngFactory(3)
        a = f.generator("chip", 0).normal(size=5)
        b = f.generator("chip", 0).normal(size=5)
        assert (a == b).all()

    def test_different_path_different_stream(self):
        f = RngFactory(3)
        a = f.generator("chip", 0).normal(size=5)
        b = f.generator("chip", 1).normal(size=5)
        assert not (a == b).all()

    def test_child_factory_consistency(self):
        f = RngFactory(3)
        direct = f.generator("chip", 0, "noise").normal(size=3)
        child = f.child("chip", 0).generator("noise").normal(size=3)
        # Children re-root the seed, so streams differ from the direct path —
        # but each is itself deterministic.
        again = f.child("chip", 0).generator("noise").normal(size=3)
        assert (child == again).all()
        assert direct.shape == child.shape

    def test_spawn_pair_independent(self):
        f = RngFactory(9)
        a, b = spawn_pair(f, "noise")
        assert not (a.normal(size=8) == b.normal(size=8)).all()

    def test_repr(self):
        assert "42" in repr(RngFactory(42))
