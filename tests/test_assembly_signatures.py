"""Signature construction tests (directions 5-8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembly.signatures import (
    SignatureCache,
    lwl_rank_signature,
    pwl_rank_signature,
    signature_distance,
    str_median_signature,
    str_rank_signature,
)
from repro.characterization.datasets import BlockMeasurement


def measurement(matrix):
    array = np.asarray(matrix, dtype=float)
    array.setflags(write=False)
    return BlockMeasurement(0, 0, 0, 0, array, 100.0)


class TestLwlRank:
    def test_known_ranks(self):
        m = measurement([[30.0, 10.0], [20.0, 40.0]])
        # flattened order: 30,10,20,40 -> ranks 2,0,1,3
        assert list(lwl_rank_signature(m)) == [2, 0, 1, 3]

    def test_ties_stable(self):
        m = measurement([[10.0, 10.0], [10.0, 10.0]])
        assert list(lwl_rank_signature(m)) == [0, 1, 2, 3]


class TestPwlRank:
    def test_per_string_ranks(self):
        m = measurement([[30.0, 10.0], [20.0, 40.0]])
        # string 0 column: 30,20 -> ranks 1,0 ; string 1: 10,40 -> 0,1
        sig = pwl_rank_signature(m).reshape(2, 2)
        assert list(sig[:, 0]) == [1, 0]
        assert list(sig[:, 1]) == [0, 1]

    def test_rank_range(self):
        rng = np.random.default_rng(1)
        m = measurement(rng.random((6, 4)))
        sig = pwl_rank_signature(m)
        assert sig.max() == 5  # ranks 0..layers-1 per string


class TestStrRank:
    def test_per_layer_ranks(self):
        m = measurement([[30.0, 10.0, 20.0, 40.0]])
        assert list(str_rank_signature(m)) == [2, 0, 1, 3]

    def test_rank_range(self):
        rng = np.random.default_rng(2)
        m = measurement(rng.random((6, 4)))
        assert str_rank_signature(m).max() == 3


class TestStrMedian:
    def test_fast_half_zero(self):
        m = measurement([[30.0, 10.0, 20.0, 40.0]])
        # two fastest (10, 20) -> bits 0; (30, 40) -> bits 1
        assert list(str_median_signature(m)) == [1, 0, 0, 1]

    def test_tie_break_first_come(self):
        m = measurement([[10.0, 10.0, 10.0, 10.0]])
        assert list(str_median_signature(m)) == [0, 0, 1, 1]

    def test_exactly_half_fast(self):
        rng = np.random.default_rng(3)
        m = measurement(rng.random((8, 4)))
        sig = str_median_signature(m).reshape(8, 4)
        assert (sig.sum(axis=1) == 2).all()


class TestDistance:
    def test_zero_for_identical(self):
        m = measurement(np.random.default_rng(4).random((4, 4)))
        assert signature_distance(str_rank_signature(m), str_rank_signature(m)) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            signature_distance(np.zeros(3), np.zeros(4))

    @given(st.integers(0, 2**32 - 1))
    def test_distance_counts_differences(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, size=16).astype(np.uint16)
        b = a.copy()
        flips = rng.integers(0, 8)
        positions = rng.choice(16, size=flips, replace=False)
        b[positions] = (b[positions] + 1) % 4
        assert signature_distance(a, b) == len(positions)


class TestSignatureCache:
    def test_memoizes(self):
        calls = []

        def builder(m):
            calls.append(m)
            return np.zeros(4, dtype=np.uint16)

        cache = SignatureCache(builder)
        m = measurement(np.ones((1, 4)))
        first = cache.get(m)
        second = cache.get(m)
        assert first is second
        assert len(calls) == 1
        assert not first.flags.writeable

    def test_stack(self):
        cache = SignatureCache(str_rank_signature)
        ms = [measurement(np.random.default_rng(i).random((2, 4))) for i in range(3)]
        stack = cache.stack(ms)
        assert stack.shape == (3, 8)
