"""repro.perf profiler: attribution tree, activation fence, neutrality.

The load-bearing test here is :class:`TestDeterminismNeutrality` — the
DET001/OBS001 carve-out that lets ``repro.perf`` read the host clock is
conditional on profiling never perturbing simulation results, so the
same seed must produce byte-identical traces with a profiler active.
"""

import json

from repro.exp import SimConfig, build_stack
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.perf import (
    LAYER_ALIASES,
    Profiler,
    Stopwatch,
    activate,
    active_profiler,
    cross_reference,
    layer_shares,
    perf_count,
    perf_scope,
    profile_callable,
    profile_to_dict,
    profiled,
    render_profile,
    scope_layer,
)
from repro.perf.profiler import NULL_SCOPE
from repro.workloads import Replayer


class TestProfilerTree:
    def test_nested_scopes_build_hierarchy(self):
        profiler = Profiler()
        with profiler.scope("ftl.write"):
            with profiler.scope("nand.program"):
                pass
            with profiler.scope("nand.program"):
                pass
        write = profiler.root.children["ftl.write"]
        assert write.calls == 1
        program = write.children["nand.program"]
        assert program.calls == 2
        assert write.total_s >= program.total_s >= 0.0

    def test_self_time_excludes_children(self):
        profiler = Profiler()
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                pass
        outer = profiler.root.children["outer"]
        inner = outer.children["inner"]
        assert outer.self_s == max(0.0, outer.total_s - inner.total_s)

    def test_count_bumps_calls_without_timing(self):
        profiler = Profiler()
        profiler.count("ftl.map", 5)
        node = profiler.root.children["ftl.map"]
        assert node.calls == 5
        assert node.total_s == 0.0

    def test_total_is_sum_of_top_level_children(self):
        profiler = Profiler()
        with profiler.scope("a"):
            pass
        with profiler.scope("b"):
            with profiler.scope("b.child"):
                pass
        children = profiler.root.children
        assert profiler.total_s == children["a"].total_s + children["b"].total_s


class TestActivation:
    def test_disabled_by_default(self):
        assert active_profiler() is None
        assert perf_scope("anything") is NULL_SCOPE
        perf_count("anything")  # no-op, must not raise

    def test_activate_scopes_and_restores(self):
        outer, inner = Profiler(), Profiler()
        with activate(outer):
            assert active_profiler() is outer
            with activate(inner):
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_perf_scope_records_into_active(self):
        profiler = Profiler()
        with activate(profiler):
            with perf_scope("nand.read"):
                pass
        assert profiler.root.children["nand.read"].calls == 1

    def test_profiled_decorator_only_records_when_active(self):
        @profiled("layer.phase")
        def work(x):
            """docstring survives."""
            return x + 1

        assert work(1) == 2  # disabled: plain call
        profiler = Profiler()
        with activate(profiler):
            assert work(2) == 3
        assert profiler.root.children["layer.phase"].calls == 1
        assert work.__name__ == "work"
        assert "docstring" in work.__doc__

    def test_exception_still_pops_scope(self):
        profiler = Profiler()
        with activate(profiler):
            try:
                with perf_scope("boom"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
            with perf_scope("after"):
                pass
        # "after" is a sibling of "boom", not nested under it
        assert set(profiler.root.children) == {"boom", "after"}


class TestStopwatch:
    def test_elapsed_is_monotone_nonnegative(self):
        watch = Stopwatch()
        first = watch.elapsed_s()
        second = watch.elapsed_s()
        assert 0.0 <= first <= second

    def test_restart_resets_interval(self):
        watch = Stopwatch()
        watch.elapsed_s()
        watch.restart()
        assert watch.elapsed_s() < 10.0


class TestReport:
    def test_scope_layer_uses_aliases(self):
        assert scope_layer("nand.program") == "nand"
        assert scope_layer("sweep.cell") == LAYER_ALIASES["sweep"]
        assert scope_layer("replay.requests") == "workloads"
        assert scope_layer("plain") == "plain"

    def test_layer_shares_normalized(self):
        profiler = Profiler()
        with profiler.scope("ftl.write"):
            with profiler.scope("nand.program"):
                pass
        shares = layer_shares(profiler)
        assert set(shares) <= {"ftl", "nand"}
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_profile_dict_json_round_trips(self):
        profiler = Profiler()
        with profiler.scope("a"):
            with profiler.scope("b"):
                pass
        doc = json.loads(json.dumps(profile_to_dict(profiler)))
        root = doc["run"]
        a = root["children"]["a"]
        assert a["calls"] == 1
        assert list(a["children"]) == ["b"]
        assert a["self_s"] >= 0.0

    def test_render_profile_lists_scopes_and_shares(self):
        profiler = Profiler()
        with profiler.scope("ftl.write"):
            pass
        text = render_profile(profiler)
        assert "ftl.write" in text
        assert "per-layer wall-time shares" in text


class TestHotspots:
    def test_profile_callable_cross_referenced(self):
        def workload():
            return sum(i * i for i in range(2000))

        result, rows = profile_callable(workload, top=5)
        assert result == sum(i * i for i in range(2000))
        assert rows
        assert all(row.cumulative_s >= 0.0 for row in rows)
        annotated = cross_reference(rows, [])
        assert len(annotated) == len(rows)
        assert all(not row.vectorizable for row in annotated)


class TestDeterminismNeutrality:
    """Profiling must never change simulation results — the fence contract."""

    CONFIG = SimConfig.device(seed=11, chips=2, blocks=16, requests=200)

    def _traced_replay(self, path, profiler=None):
        tracer = Tracer()
        stack = build_stack(self.CONFIG, tracer=tracer)
        requests = stack.requests()
        if profiler is None:
            Replayer(stack.ssd).replay(requests)
        else:
            with activate(profiler):
                Replayer(stack.ssd).replay(requests)
        write_jsonl(path, tracer.events)
        return path.read_bytes()

    def test_traces_byte_identical_with_profiler_active(self, tmp_path):
        plain = self._traced_replay(tmp_path / "plain.jsonl")
        profiler = Profiler()
        profiled_bytes = self._traced_replay(
            tmp_path / "profiled.jsonl", profiler=profiler
        )
        assert plain == profiled_bytes
        # and the profiler actually observed the instrumented layers
        assert profiler.total_s >= 0.0
        assert {"ftl", "nand"} <= set(layer_shares(profiler))
