"""RAID-4 parity-lane tests: capacity math, degraded reads, double faults."""

import numpy as np
import pytest

from repro.core import SpeedClass
from repro.core.records import BlockRecord
from repro.ftl import Ftl, FtlConfig, IntegrityError, ManagedSuperblock
from repro.nand import (
    SMALL_GEOMETRY,
    EccConfig,
    EccEngine,
    FlashChip,
    VariationModel,
    VariationParams,
)
from repro.utils.bitvec import BitVector

STRONG_ECC = EccConfig()
#: stress level that saturates RBER -> every read on that lane fails
DEAD_PE = 15_000


def members(lanes=3):
    return tuple(
        BlockRecord(lane, 0, lane, 1000.0, BitVector([0, 1])) for lane in range(lanes)
    )


class TestSuperblockParityGeometry:
    def test_data_lane_count(self):
        sb = ManagedSuperblock(0, SpeedClass.FAST, members(3), SMALL_GEOMETRY, parity=True)
        assert sb.lane_count == 3
        assert sb.data_lane_count == 2
        assert sb.parity_lane_index == 2
        assert sb.pages_per_superwl == 2 * SMALL_GEOMETRY.bits_per_cell
        assert sb.capacity_pages == 2 * SMALL_GEOMETRY.pages_per_block

    def test_no_parity_defaults(self):
        sb = ManagedSuperblock(0, SpeedClass.FAST, members(3), SMALL_GEOMETRY)
        assert sb.parity_lane_index is None
        assert sb.data_lane_count == 3

    def test_parity_needs_two_lanes(self):
        with pytest.raises(ValueError):
            ManagedSuperblock(0, SpeedClass.FAST, members(1), SMALL_GEOMETRY, parity=True)

    def test_slots_never_hit_parity_lane(self):
        sb = ManagedSuperblock(0, SpeedClass.FAST, members(3), SMALL_GEOMETRY, parity=True)
        for slot in range(sb.capacity_pages):
            assert sb.slot_location(slot).lane_index < sb.data_lane_count


def build_parity_ftl(weak_lanes=(), lanes=3, seed=61, blocks=10):
    """FTL with parity on; ``weak_lanes`` are worn until their reads fail."""
    params = VariationParams(
        factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
    )
    model = VariationModel(SMALL_GEOMETRY, params, seed=seed)
    chips = []
    for lane in range(lanes):
        chip = FlashChip(
            model.chip_profile(lane),
            SMALL_GEOMETRY,
            ecc=EccEngine(STRONG_ECC, SMALL_GEOMETRY),
        )
        if lane in weak_lanes:
            for block in range(blocks):
                chip.stress_block(0, block, DEAD_PE)
        chips.append(chip)
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=blocks,
            overprovision_ratio=0.4,
            gc_low_watermark=2,
            gc_high_watermark=3,
            parity_protection=True,
        ),
    )
    ftl.format()
    return ftl


class TestParityFtl:
    def test_needs_three_lanes(self):
        params = VariationParams(factory_bad_ratio=0.0)
        model = VariationModel(SMALL_GEOMETRY, params, seed=1)
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(2)]
        with pytest.raises(ValueError):
            Ftl(chips, FtlConfig(usable_blocks_per_plane=8, parity_protection=True))

    def test_capacity_excludes_parity_lane(self):
        with_parity = build_parity_ftl()
        params = VariationParams(
            factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=61)
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(3)]
        plain = Ftl(
            chips,
            FtlConfig(usable_blocks_per_plane=10, overprovision_ratio=0.4),
        )
        assert with_parity.logical_pages == plain.logical_pages * 2 // 3

    def test_clean_reads_unaffected(self):
        ftl = build_parity_ftl()
        for lpn in range(ftl.buffer.superwl_pages * 2):
            ftl.write(lpn)
        ftl.flush()
        for lpn in range(ftl.buffer.superwl_pages * 2):
            assert ftl.read(lpn).located
        assert ftl.metrics.parity_reconstructions == 0

    def test_degraded_read_reconstructs(self):
        ftl = build_parity_ftl(weak_lanes=(0,))
        count = ftl.buffer.superwl_pages * 3
        for lpn in range(count):
            ftl.write(lpn)
        ftl.flush()
        for lpn in range(count):
            result = ftl.read(lpn)  # lane-0 pages must come back via parity
            assert result.located
        assert ftl.metrics.parity_reconstructions > 0

    def test_degraded_read_latency_is_higher(self):
        ftl = build_parity_ftl(weak_lanes=(0,))
        count = ftl.buffer.superwl_pages * 3
        for lpn in range(count):
            ftl.write(lpn)
        ftl.flush()
        degraded, clean = [], []
        for lpn in range(count):
            before = ftl.metrics.parity_reconstructions
            latency = ftl.read(lpn).latency_us
            if ftl.metrics.parity_reconstructions > before:
                degraded.append(latency)
            else:
                clean.append(latency)
        assert degraded and clean
        assert np.mean(degraded) > np.mean(clean)

    def test_double_failure_surfaces(self):
        # parity lane is the LAST lane; wearing it out plus a data lane
        # makes reconstruction impossible
        ftl = build_parity_ftl(weak_lanes=(0, 2), lanes=3)
        for lpn in range(ftl.buffer.superwl_pages):
            ftl.write(lpn)
        ftl.flush()
        with pytest.raises(IntegrityError):
            for lpn in range(ftl.buffer.superwl_pages):
                ftl.read(lpn)

    def test_gc_relocates_through_reconstruction(self):
        ftl = build_parity_ftl(weak_lanes=(0,))
        rng = np.random.default_rng(3)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        for _ in range(ftl.logical_pages * 2):
            ftl.write(int(rng.integers(ftl.logical_pages)))
        ftl.flush()
        assert ftl.metrics.gc_runs > 0
        # data survived GC even though one lane is unreadable directly
        for lpn in rng.choice(ftl.logical_pages, size=60, replace=False):
            assert ftl.read(int(lpn)).located
