"""Eigen-sequence tests, including the cross-check with str_median_signature."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembly.signatures import str_median_signature
from repro.characterization.datasets import BlockMeasurement
from repro.core.eigen import (
    eigen_bits_for_geometry,
    eigen_distance,
    eigen_sequence,
    layer_eigen_bits,
)
from repro.nand import PAPER_GEOMETRY, SMALL_GEOMETRY


class TestLayerBits:
    def test_fastest_half_zero(self):
        bits = layer_eigen_bits([30.0, 10.0, 20.0, 40.0])
        assert bits.to_bits() == [1, 0, 0, 1]

    def test_tie_first_come(self):
        bits = layer_eigen_bits([10.0, 10.0, 10.0, 10.0])
        assert bits.to_bits() == [0, 0, 1, 1]

    def test_custom_fast_slots(self):
        bits = layer_eigen_bits([4.0, 3.0, 2.0, 1.0], fast_slots=1)
        assert bits.to_bits() == [1, 1, 1, 0]
        all_fast = layer_eigen_bits([1.0, 2.0], fast_slots=2)
        assert all_fast.popcount() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            layer_eigen_bits([])
        with pytest.raises(ValueError):
            layer_eigen_bits([1.0, 2.0], fast_slots=3)
        with pytest.raises(ValueError):
            layer_eigen_bits(np.zeros((2, 2)))


class TestEigenSequence:
    def test_figure9_example_shape(self):
        # Figure 9's first layers: values produce the bits shown in the paper
        matrix = np.array(
            [
                [1917.0, 1898.6, 1898.6, 1898.6],  # -> 1 0 0 1 (ties first-come)
                [1898.6, 1898.6, 1898.6, 1898.6],  # -> 0 0 1 1
            ]
        )
        sequence = eigen_sequence(matrix)
        assert sequence.to_bits() == [1, 0, 0, 1, 0, 0, 1, 1]

    def test_length_matches_geometry(self):
        rng = np.random.default_rng(0)
        g = SMALL_GEOMETRY
        matrix = rng.random((g.layers_per_block, g.strings_per_layer))
        assert len(eigen_sequence(matrix)) == eigen_bits_for_geometry(g)
        assert eigen_bits_for_geometry(PAPER_GEOMETRY) == 384

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            eigen_sequence(np.zeros(8))

    def test_distance(self):
        a = eigen_sequence(np.array([[1.0, 2.0, 3.0, 4.0]]))
        b = eigen_sequence(np.array([[4.0, 3.0, 2.0, 1.0]]))
        assert eigen_distance(a, a) == 0
        assert eigen_distance(a, b) == 4


class TestCrossCheck:
    """The BitVector eigen path and the numpy signature path must agree."""

    @given(st.integers(0, 2**32 - 1))
    def test_matches_str_median_signature(self, seed):
        rng = np.random.default_rng(seed)
        matrix = np.round(rng.normal(1700, 15, size=(6, 4)) / 6.1) * 6.1
        matrix.setflags(write=False)
        measurement = BlockMeasurement(0, 0, 0, 0, matrix, 100.0)
        numpy_sig = str_median_signature(measurement)
        bitvec_sig = eigen_sequence(matrix)
        assert list(numpy_sig) == bitvec_sig.to_bits()

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_distances_agree(self, seed_a, seed_b):
        def sig_pair(seed):
            rng = np.random.default_rng(seed)
            matrix = rng.normal(1700, 15, size=(4, 4))
            matrix.setflags(write=False)
            m = BlockMeasurement(0, 0, 0, 0, matrix, 100.0)
            return str_median_signature(m), eigen_sequence(matrix)

        np_a, bv_a = sig_pair(seed_a)
        np_b, bv_b = sig_pair(seed_b)
        assert int(np.count_nonzero(np_a != np_b)) == bv_a.hamming_distance(bv_b)
