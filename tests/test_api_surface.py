"""Snapshot of the ``repro.api`` facade.

The facade is the one import surface benchmarks / tools / examples rely on,
so its exported-name set is pinned here verbatim: adding a name is a
deliberate, test-visible diff; removing one is a breaking change that must
fail loudly.  Keep :data:`EXPECTED_EXPORTS` sorted within each section —
the diff stays reviewable that way.
"""

from __future__ import annotations

import repro.api as api

EXPECTED_EXPORTS = frozenset(
    {
        # -- experiment substrate (repro.exp) --
        "ALLOCATOR_KINDS",
        "CellTimeoutError",
        "DEFAULT_METHODS",
        "MethodEvaluator",
        "MethodRow",
        "ResultCache",
        "SimConfig",
        "Stack",
        "Sweep",
        "SweepResult",
        "TASKS",
        "WorkloadConfig",
        "build_stack",
        "default_cache_dir",
        "dig",
        "evaluate_methods",
        "make_assembler",
        "method_names",
        "register_task",
        "run",
        "run_sweep",
        "worker_entrypoint",
        # -- device construction --
        "BlockMeasurement",
        "EccConfig",
        "EccEngine",
        "FlashChip",
        "Ftl",
        "FtlConfig",
        "MeasurementSet",
        "NandGeometry",
        "PAPER_GEOMETRY",
        "PageType",
        "ProbePlan",
        "Prober",
        "REPAIR_POLICIES",
        "SMALL_GEOMETRY",
        "Ssd",
        "TimingConfig",
        "UncorrectableReadError",
        "VariationModel",
        "VariationParams",
        "WearLevelingConfig",
        "WriteStream",
        "mean_lwl_curve",
        "probe_testbed",
        "residual_trend_correlation",
        "variability_report",
        # -- vector kernels (repro.kernels) --
        "ArrayPageMapper",
        "BATCH_SIGNATURE_BUILDERS",
        "EccBatchResult",
        "SuperwlStats",
        "VectorFtl",
        "VectorSsd",
        "batch_erase_latencies",
        "batch_lwl_rank",
        "batch_pwl_rank",
        "batch_str_median",
        "batch_str_rank",
        "block_latency_stack",
        "block_program_totals",
        "ecc_read_batch",
        "eigen_bitvectors",
        "eigen_distance_matrix",
        "fill_request_count",
        "pack_eigen_bits",
        "rber_batch",
        "sequential_fill_prefix",
        "signature_distance_matrix",
        "superwl_stats",
        # -- decision-policy registry (repro.policy) --
        "AllocationContext",
        "AllocationDecision",
        "AllocationPolicy",
        "AssemblyContext",
        "AssemblyPolicy",
        "BanditAllocationPolicy",
        "DEFAULT_SPECS",
        "GcCandidate",
        "GcVictimContext",
        "GcVictimPolicy",
        "LatencyPredictorPolicy",
        "POLICY_POINTS",
        "Policy",
        "PolicyConfig",
        "PolicySpec",
        "RepairContext",
        "RepairPolicy",
        "ResolvedPolicies",
        "WearCandidate",
        "WearContext",
        "WearPolicy",
        "get_policy",
        "make_policy",
        "policy_names",
        "register_policy",
        "resolve_policies",
        # -- fleet serving layer (repro.fleet) --
        "CircuitBreaker",
        "FleetConfig",
        "FleetReport",
        "FleetSim",
        "TenantRequest",
        "build_fleet",
        "fleet_workload",
        "tenant_stream",
        # -- fault injection --
        "FaultEvent",
        "FaultInjector",
        "FaultPlan",
        "NULL_INJECTOR",
        "NullInjector",
        "make_injector",
        # -- assembly / placement core --
        "ErsLatencyAssembler",
        "FootprintModel",
        "GatheringUnit",
        "LanePool",
        "LwlRankAssembler",
        "MethodResult",
        "OptimalAssembler",
        "PgmLatencyAssembler",
        "PwlRankAssembler",
        "QstrMedAssembler",
        "QstrMedScheme",
        "RandomAssembler",
        "SequentialAssembler",
        "SpeedClass",
        "StrMedianAssembler",
        "StrRankAssembler",
        "Superblock",
        "WriteIntent",
        "WriteSource",
        "build_lane_pools",
        "eigen_sequence",
        "evaluate_assembler",
        "overhead_reduction_pct",
        "qstr_med_pair_checks",
        "str_med_pair_checks",
        # -- analysis drivers + renderers --
        "CharacterizationSeries",
        "DEFAULT_CHIPS",
        "DEFAULT_POOL_BLOCKS",
        "DEFAULT_SEED",
        "KNOBS",
        "PAPER_TABLE1",
        "PAPER_TABLE2",
        "PAPER_TABLE5",
        "PeSweepPoint",
        "PerSuperblockSeries",
        "RandomExtraSeries",
        "RepairComparison",
        "RepairPolicyResult",
        "SensitivityPoint",
        "TABLE1_METHODS",
        "TABLE5_METHODS",
        "TestbedConfig",
        "build_testbed",
        "compare_repair_policies",
        "cumulative_mean",
        "default_fault_config",
        "evaluate_variant",
        "fig13_distributions",
        "fig14_per_superblock",
        "fig15_pe_sweep",
        "fig5_characterization",
        "fig6_random_extra",
        "histogram_rows",
        "improvement_series",
        "knob_sweep",
        "render_histogram",
        "render_repair_comparison",
        "render_series_block",
        "render_table",
        "render_table1",
        "render_table2",
        "render_table5",
        "run_methods",
        "run_repair_policy",
        "seed_sweep",
        "sparkline",
        "standard_pools",
        "table1_eight_directions",
        "table2_window_sweep",
        "table5_extra_latency",
        # -- observability --
        "LatencyHistogram",
        "MetricsRegistry",
        "NULL_TRACER",
        "TraceSummary",
        "Tracer",
        "export_bench_artifacts",
        # -- wall-clock performance (repro.perf) --
        "Profiler",
        "Stopwatch",
        "compare_docs",
        "layer_shares",
        "perf_scope",
        "profiled",
        "render_comparison",
        "render_profile",
        "run_suite",
        "validate_bench_doc",
        # -- workloads --
        "ArrivalProcess",
        "OpKind",
        "Replayer",
        "Request",
        "load_trace",
        "save_trace",
        "sequential_fill",
        "zipf_writes",
        # -- utilities --
        "TIB",
        "derive_seed",
        "format_bytes",
        "percentile",
    }
)


def test_all_matches_the_pinned_snapshot() -> None:
    exported = set(api.__all__)
    added = sorted(exported - EXPECTED_EXPORTS)
    removed = sorted(EXPECTED_EXPORTS - exported)
    assert not added and not removed, (
        f"repro.api surface drifted: added={added} removed={removed}; "
        "update tests/test_api_surface.py deliberately if this is intended"
    )


def test_all_has_no_duplicates() -> None:
    assert len(api.__all__) == len(set(api.__all__))


def test_every_export_resolves() -> None:
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing, f"__all__ names without a binding: {missing}"


def test_sections_partition_the_surface() -> None:
    # every export belongs to exactly one documented section
    from collections import Counter

    counts = Counter(
        name for _, names in api.API_SECTIONS for name in names
    )
    doubled = sorted(n for n, c in counts.items() if c > 1)
    assert not doubled, f"names listed in two sections: {doubled}"
    assert set(counts) == set(api.__all__)


def test_policy_section_covers_the_registry_entrypoints() -> None:
    # the names DESIGN.md's "registering a policy" walkthrough depends on
    section = dict(api.API_SECTIONS)["policy"]
    for name in (
        "Policy",
        "PolicySpec",
        "PolicyConfig",
        "register_policy",
        "get_policy",
        "policy_names",
        "resolve_policies",
    ):
        assert name in section
