"""CircuitBreaker unit tests: the closed → open → half-open machine."""

import pytest

from repro.fleet import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


def make(threshold=3, window_us=1000.0, cooldown_us=500.0):
    return CircuitBreaker(threshold, window_us, cooldown_us)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"window_us": 0.0},
            {"cooldown_us": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make(**kwargs)


class TestTripping:
    def test_threshold_failures_in_window_open_it(self):
        breaker = make()
        for t in (10.0, 20.0, 30.0):
            assert breaker.state == STATE_CLOSED
            breaker.record_failure(t)
        assert breaker.state == STATE_OPEN
        assert breaker.opens == 1
        assert not breaker.allow(31.0)

    def test_window_expiry_forgets_old_failures(self):
        breaker = make()
        breaker.record_failure(0.0)
        breaker.record_failure(10.0)
        # the first two fall out of the 1000 µs window before the third
        breaker.record_failure(2000.0)
        assert breaker.state == STATE_CLOSED

    def test_success_resets_the_failure_run(self):
        breaker = make()
        breaker.record_failure(10.0)
        breaker.record_failure(20.0)
        breaker.record_success(30.0)
        breaker.record_failure(40.0)
        breaker.record_failure(50.0)
        assert breaker.state == STATE_CLOSED


class TestHalfOpen:
    def tripped(self):
        breaker = make()
        for t in (10.0, 20.0, 30.0):
            breaker.record_failure(t)
        return breaker

    def test_cooldown_elapsing_admits_one_probe(self):
        breaker = self.tripped()
        assert not breaker.allow(529.0)  # opened at 30, cooldown 500
        assert breaker.allow(531.0)
        assert breaker.state == STATE_HALF_OPEN
        # asking never claims the slot — ranking candidates is free
        assert breaker.allow(532.0)
        breaker.begin_probe()
        assert not breaker.allow(533.0)

    def test_probe_success_closes(self):
        breaker = self.tripped()
        assert breaker.allow(531.0)
        breaker.begin_probe()
        breaker.record_success(540.0)
        assert breaker.state == STATE_CLOSED
        assert breaker.allow(541.0)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = self.tripped()
        assert breaker.allow(531.0)
        breaker.begin_probe()
        breaker.record_failure(540.0)
        assert breaker.state == STATE_OPEN
        assert breaker.opens == 2
        assert breaker.opened_at_us == 540.0
        assert not breaker.allow(1030.0)
        assert breaker.allow(1041.0)
