"""Positive/negative fixtures for every deep (whole-program) rule code.

Each of RNG010-012, DET010-012, PROC001-003 and VEC001 has at least one
fixture that fires and one that stays silent, plus suite-level checks for
the deep-specific suppression and dedupe semantics.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.lint.deep import deep_codes, run_deep_sources
from repro.lint.findings import Finding, Severity


def run(sources: Dict[str, str]) -> List[Finding]:
    return run_deep_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()}
    )


def codes(findings: List[Finding]) -> List[str]:
    return [finding.code for finding in findings]


def test_all_ten_deep_codes_are_registered() -> None:
    assert deep_codes() == [
        "DET010",
        "DET011",
        "DET012",
        "PROC001",
        "PROC002",
        "PROC003",
        "RNG010",
        "RNG011",
        "RNG012",
        "VEC001",
    ]


# ---------------------------------------------------------------- RNG010


def test_rng010_fires_on_duplicate_constant_label_tuple() -> None:
    findings = run(
        {
            "repro.fx.streams": """
            from repro.utils.rng import derive_seed

            def chip_noise(seed):
                return derive_seed(seed, "chip", 0)

            def block_noise(seed):
                return derive_seed(seed, "chip", 0)
            """
        }
    )
    assert codes(findings).count("RNG010") == 2


def test_rng010_silent_on_parameterized_or_distinct_labels() -> None:
    findings = run(
        {
            "repro.fx.streams": """
            from repro.utils.rng import derive_seed

            def chip_noise(seed, chip_id):
                return derive_seed(seed, "chip", chip_id)

            def block_noise(seed):
                return derive_seed(seed, "block", 0)
            """
        }
    )
    assert "RNG010" not in codes(findings)


# ---------------------------------------------------------------- RNG011


def test_rng011_fires_when_generator_is_submitted_to_pool() -> None:
    findings = run(
        {
            "repro.fx.pool": """
            import numpy as np
            from concurrent.futures import ProcessPoolExecutor

            def work(rng):
                return rng

            def main(seed):
                rng = np.random.default_rng(seed)
                with ProcessPoolExecutor() as pool:
                    future = pool.submit(work, rng)
                return future
            """
        }
    )
    assert "RNG011" in codes(findings)


def test_rng011_fires_when_generator_enters_marked_entrypoint() -> None:
    findings = run(
        {
            "repro.fx.entry": """
            import numpy as np

            def worker_entrypoint(fn):
                return fn

            @worker_entrypoint
            def cell(rng):
                return rng

            def main(seed):
                rng = np.random.default_rng(seed)
                return cell(rng)
            """
        }
    )
    assert "RNG011" in codes(findings)


def test_rng011_silent_when_seed_crosses_instead() -> None:
    findings = run(
        {
            "repro.fx.pool": """
            from concurrent.futures import ProcessPoolExecutor

            def work(seed):
                return seed

            def main(seed):
                with ProcessPoolExecutor() as pool:
                    future = pool.submit(work, seed)
                return future
            """
        }
    )
    assert "RNG011" not in codes(findings)


# ---------------------------------------------------------------- RNG012


def test_rng012_fires_when_two_methods_draw_from_stored_generator() -> None:
    findings = run(
        {
            "repro.fx.chip": """
            import numpy as np

            class Chip:
                def __init__(self, seed):
                    self.rng = np.random.default_rng(seed)

                def read_latency(self):
                    return self.rng.normal()

                def write_latency(self):
                    return self.rng.normal()
            """
        }
    )
    assert "RNG012" in codes(findings)


def test_rng012_silent_with_single_consumer() -> None:
    findings = run(
        {
            "repro.fx.chip": """
            import numpy as np

            class Chip:
                def __init__(self, seed):
                    self.rng = np.random.default_rng(seed)

                def read_latency(self):
                    return self.rng.normal()

                def geometry(self):
                    return 42
            """
        }
    )
    assert "RNG012" not in codes(findings)


# ---------------------------------------------------------------- DET010


def test_det010_fires_interprocedurally_into_sim_state() -> None:
    findings = run(
        {
            "repro.fx.sim": """
            import time

            def stamp():
                return time.time()

            class Sim:
                def tick(self):
                    self.started_at = stamp()
            """
        }
    )
    assert "DET010" in codes(findings)


def test_det010_sanctions_perf_layer_wall_clock() -> None:
    # A repro.perf Stopwatch value flowing into harness state is telemetry,
    # not nondeterminism — the WALLCLOCK taint is dropped at the perf
    # module boundary.
    findings = run(
        {
            "repro.perf.profiler": """
            from time import perf_counter

            def elapsed():
                return perf_counter()
            """,
            "repro.fx.harness": """
            from repro.perf.profiler import elapsed

            class Manifest:
                def record(self):
                    self.wall_s = elapsed()
            """,
        }
    )
    assert "DET010" not in codes(findings)


def test_det010_silent_for_local_elapsed_measurement() -> None:
    findings = run(
        {
            "repro.fx.sim": """
            import time

            def guard(budget_s):
                start = time.time()
                elapsed = time.time() - start
                if elapsed > budget_s:
                    raise RuntimeError("over budget")
            """
        }
    )
    assert "DET010" not in codes(findings)


# ---------------------------------------------------------------- DET011


def test_det011_fires_on_unsorted_listdir_iteration() -> None:
    findings = run(
        {
            "repro.fx.manifest": """
            import os

            def trace_names(root):
                out = []
                for name in os.listdir(root):
                    out.append(name)
                return out
            """
        }
    )
    assert "DET011" in codes(findings)


def test_det011_silent_when_listing_is_sorted() -> None:
    findings = run(
        {
            "repro.fx.manifest": """
            import os

            def trace_names(root):
                out = []
                for name in sorted(os.listdir(root)):
                    out.append(name)
                return out
            """
        }
    )
    assert "DET011" not in codes(findings)


# ---------------------------------------------------------------- DET012


def test_det012_fires_when_id_reaches_state() -> None:
    findings = run(
        {
            "repro.fx.trace": """
            class Tracer:
                def observe(self, obj):
                    self.last_key = id(obj)
            """
        }
    )
    assert "DET012" in codes(findings)


def test_det012_silent_for_identity_memo_keys() -> None:
    findings = run(
        {
            "repro.fx.memo": """
            class Memo:
                def __init__(self):
                    self._cache = {}

                def get(self, obj):
                    key = id(obj)
                    value = self._cache.get(key)
                    if value is None:
                        value = 1
                        self._cache[key] = value
                    return value
            """
        }
    )
    assert "DET012" not in codes(findings)


# ---------------------------------------------------------------- PROC001


def test_proc001_fires_on_global_mutable_write_in_worker_cone() -> None:
    findings = run(
        {
            "repro.fx.worker": """
            _CACHE = {}

            def worker_entrypoint(fn):
                return fn

            def remember(key):
                _CACHE[key] = True

            @worker_entrypoint
            def cell(payload):
                remember(payload)
            """
        }
    )
    assert "PROC001" in codes(findings)


def test_proc001_silent_for_reads_and_out_of_cone_writes() -> None:
    findings = run(
        {
            "repro.fx.worker": """
            _CACHE = {}

            def worker_entrypoint(fn):
                return fn

            def lookup(key):
                return _CACHE.get(key)

            def warm(key):
                _CACHE[key] = True

            @worker_entrypoint
            def cell(payload):
                return lookup(payload)
            """
        }
    )
    assert "PROC001" not in codes(findings)


# ---------------------------------------------------------------- PROC002


def test_proc002_fires_on_lambda_and_closure_into_process_pool() -> None:
    findings = run(
        {
            "repro.fx.pool": """
            from concurrent.futures import ProcessPoolExecutor

            def main(items):
                def local(x):
                    return x + 1
                with ProcessPoolExecutor() as pool:
                    a = pool.submit(lambda v: v, 1)
                    b = pool.submit(local, 2)
                return a, b
            """
        }
    )
    assert codes(findings).count("PROC002") == 2


def test_proc002_silent_for_module_level_worker_and_thread_pool() -> None:
    findings = run(
        {
            "repro.fx.pool": """
            from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

            def work(x):
                return x

            def main(items):
                with ProcessPoolExecutor() as pool:
                    a = pool.submit(work, 1)
                with ThreadPoolExecutor() as tpool:
                    b = tpool.submit(lambda v: v, 2)
                return a, b
            """
        }
    )
    assert "PROC002" not in codes(findings)


# ---------------------------------------------------------------- PROC003


def test_proc003_fires_on_lazy_singleton_in_worker_cone() -> None:
    findings = run(
        {
            "repro.fx.model": """
            _MODEL = None

            def worker_entrypoint(fn):
                return fn

            def get_model():
                global _MODEL
                if _MODEL is None:
                    _MODEL = object()
                return _MODEL

            @worker_entrypoint
            def cell(payload):
                return get_model()
            """
        }
    )
    assert "PROC003" in codes(findings)


def test_proc003_silent_outside_worker_cone() -> None:
    findings = run(
        {
            "repro.fx.model": """
            _MODEL = None

            def get_model():
                global _MODEL
                if _MODEL is None:
                    _MODEL = object()
                return _MODEL
            """
        }
    )
    assert "PROC003" not in codes(findings)


# ---------------------------------------------------------------- VEC001


def test_vec001_fires_on_pure_map_loop_in_hot_module() -> None:
    findings = run(
        {
            "repro.nand.variation": """
            def scale(values, k):
                out = [0.0] * len(values)
                for i in range(len(values)):
                    out[i] = values[i] * k
                return out
            """
        }
    )
    vec = [finding for finding in findings if finding.code == "VEC001"]
    assert len(vec) == 1
    assert vec[0].severity is Severity.WARNING


def test_vec001_silent_for_mixed_loops_impure_or_cold_functions() -> None:
    findings = run(
        {
            "repro.nand.variation": """
            TOTALS = {}

            def clipped_total(values):
                acc = 0.0
                for value in values:
                    if value < 0:
                        break
                    acc += value
                return acc

            def record_total(values):
                acc = 0.0
                for value in values:
                    acc += value
                TOTALS["last"] = acc
                return acc
            """,
            "repro.workloads.zipf": """
            def scale(values, k):
                out = [0.0] * len(values)
                for i in range(len(values)):
                    out[i] = values[i] * k
                return out
            """,
        }
    )
    assert "VEC001" not in codes(findings)


# ------------------------------------------------- suppression + dedupe


def test_def_line_suppression_covers_function_body_for_deep_findings() -> None:
    findings = run(
        {
            "repro.fx.manifest": """
            import os

            # pinned upstream by the producer; order is irrelevant here
            def trace_names(root):  # reprolint: disable=DET011
                out = []
                for name in os.listdir(root):
                    out.append(name)
                return out
            """
        }
    )
    assert "DET011" not in codes(findings)


def test_decorator_line_suppression_covers_function_body() -> None:
    findings = run(
        {
            "repro.fx.model": """
            _MODEL = None

            def worker_entrypoint(fn):
                return fn

            def get_model():
                global _MODEL
                if _MODEL is None:
                    _MODEL = object()
                return _MODEL

            # the singleton is process-local scratch, never part of results
            @worker_entrypoint  # reprolint: disable=PROC003
            def cell(payload):
                return get_model()
            """
        }
    )
    # the finding anchors inside get_model, which the directive does NOT
    # cover — but a directive on get_model's def line does:
    assert "PROC003" in codes(findings)
    findings = run(
        {
            "repro.fx.model": """
            _MODEL = None

            def worker_entrypoint(fn):
                return fn

            # process-local scratch, never part of results
            def get_model():  # reprolint: disable=PROC003
                global _MODEL
                if _MODEL is None:
                    _MODEL = object()
                return _MODEL

            @worker_entrypoint
            def cell(payload):
                return get_model()
            """
        }
    )
    assert "PROC003" not in codes(findings)


def test_findings_via_two_call_paths_are_deduped() -> None:
    findings = run(
        {
            "repro.fx.sim": """
            import time

            class Sim:
                def stamp(self):
                    self.t = time.time()

                def path_one(self):
                    self.stamp()

                def path_two(self):
                    self.stamp()
            """
        }
    )
    det = [finding for finding in findings if finding.code == "DET010"]
    assert len(det) == 1
