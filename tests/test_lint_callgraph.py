"""Unit suite for the whole-program model and call graph.

Covers the resolution cases the deep rules lean on: plain and aliased
imports, ``self.method`` with base-class lookup, ``Class()`` landing on
``__init__``, nested functions, recursion cycles, and the capped
dynamic-dispatch fallback.
"""

from __future__ import annotations

import textwrap
from typing import Dict

from repro.lint.callgraph import CallGraph
from repro.lint.project import Project


def build(sources: Dict[str, str]) -> Project:
    return Project.from_sources(
        {module: textwrap.dedent(source) for module, source in sources.items()}
    )


# ---------------------------------------------------------------- project


def test_functions_and_classes_are_indexed_by_qualname() -> None:
    project = build(
        {
            "repro.a": """
            def top():
                pass

            class Box:
                def get(self):
                    pass
            """
        }
    )
    assert "repro.a.top" in project.functions
    assert "repro.a.Box" in project.classes
    assert "repro.a.Box.get" in project.functions
    assert project.functions["repro.a.Box.get"].is_method
    assert project.classes["repro.a.Box"].methods["get"].qualname == "repro.a.Box.get"


def test_import_alias_resolution() -> None:
    project = build(
        {
            "repro.a": """
            def helper():
                pass
            """,
            "repro.b": """
            from repro.a import helper as h

            def caller():
                h()
            """,
        }
    )
    assert project.resolve("repro.b", "h") == "repro.a.helper"


def test_reexport_through_package_init() -> None:
    project = build(
        {
            "repro.pkg.impl": """
            def work():
                pass
            """,
            "repro.pkg": """
            from repro.pkg.impl import work
            """,
            "repro.user": """
            from repro.pkg import work

            def caller():
                work()
            """,
        }
    )
    assert project.resolve("repro.user", "work") == "repro.pkg.impl.work"
    graph = CallGraph(project)
    callees = {edge.callee for edge in graph.callees("repro.user.caller")}
    assert "repro.pkg.impl.work" in callees


def test_module_level_mutables_are_recorded() -> None:
    project = build(
        {
            "repro.a": """
            CACHE = {}
            NAMES = ["x"]
            LIMIT = 7
            """
        }
    )
    mutables = project.modules["repro.a"].global_mutables
    assert set(mutables) == {"CACHE", "NAMES"}


# ---------------------------------------------------------------- call graph


def test_plain_call_and_class_init_resolution() -> None:
    project = build(
        {
            "repro.a": """
            class Thing:
                def __init__(self):
                    pass

            def make():
                return Thing()

            def chain():
                return make()
            """
        }
    )
    graph = CallGraph(project)
    assert {edge.callee for edge in graph.callees("repro.a.make")} == {
        "repro.a.Thing.__init__"
    }
    assert {edge.callee for edge in graph.callees("repro.a.chain")} == {"repro.a.make"}


def test_self_method_resolves_through_base_class() -> None:
    project = build(
        {
            "repro.a": """
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def run(self):
                    self.shared()
            """
        }
    )
    graph = CallGraph(project)
    callees = {edge.callee for edge in graph.callees("repro.a.Child.run")}
    assert "repro.a.Base.shared" in callees


def test_nested_function_called_by_bare_name() -> None:
    project = build(
        {
            "repro.a": """
            def outer():
                def inner():
                    pass
                inner()
            """
        }
    )
    graph = CallGraph(project)
    callees = {edge.callee for edge in graph.callees("repro.a.outer")}
    assert callees == {"repro.a.outer.inner"}


def test_recursion_cycle_is_bfs_safe() -> None:
    project = build(
        {
            "repro.a": """
            def ping(n):
                return pong(n - 1)

            def pong(n):
                if n > 0:
                    return ping(n)
                return 0
            """
        }
    )
    graph = CallGraph(project)
    reached = graph.reachable(["repro.a.ping"])
    assert reached == {"repro.a.ping", "repro.a.pong"}


def test_dynamic_dispatch_fallback_matches_methods_by_name() -> None:
    project = build(
        {
            "repro.a": """
            class Nand:
                def read(self):
                    pass

            class Disk:
                def read(self):
                    pass

            def poll(device):
                device.read()
            """
        }
    )
    graph = CallGraph(project)
    edges = graph.callees("repro.a.poll")
    assert {edge.callee for edge in edges} == {
        "repro.a.Nand.read",
        "repro.a.Disk.read",
    }
    assert all(edge.fallback for edge in edges)
    # precision mode drops the speculative edges entirely
    assert graph.callees("repro.a.poll", include_fallback=False) == []


def test_fallback_fanout_is_capped() -> None:
    classes = "\n".join(
        f"class C{i}:\n    def read(self):\n        pass\n"
        for i in range(CallGraph.MAX_FALLBACK_TARGETS + 1)
    )
    project = build({"repro.a": classes + "\ndef poll(device):\n    device.read()\n"})
    graph = CallGraph(project)
    assert graph.callees("repro.a.poll") == []


def test_callers_is_the_reverse_view() -> None:
    project = build(
        {
            "repro.a": """
            def helper():
                pass

            def one():
                helper()

            def two():
                helper()
            """
        }
    )
    graph = CallGraph(project)
    callers = {edge.caller for edge in graph.callers("repro.a.helper")}
    assert callers == {"repro.a.one", "repro.a.two"}
