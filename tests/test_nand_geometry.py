"""NAND geometry and addressing tests."""

import pytest

from repro.nand.geometry import (
    PAPER_GEOMETRY,
    SMALL_GEOMETRY,
    BlockAddress,
    NandGeometry,
    PageAddress,
    PageType,
    WordLineAddress,
)


class TestPageType:
    def test_tlc_types(self):
        assert PageType.for_bits_per_cell(3) == [PageType.LSB, PageType.CSB, PageType.MSB]

    def test_slc_and_qlc(self):
        assert PageType.for_bits_per_cell(1) == [PageType.LSB]
        assert len(PageType.for_bits_per_cell(4)) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            PageType.for_bits_per_cell(0)
        with pytest.raises(ValueError):
            PageType.for_bits_per_cell(5)


class TestPaperGeometry:
    """The paper's chip dimensions (Section VI-A)."""

    def test_lwls_per_block(self):
        assert PAPER_GEOMETRY.lwls_per_block == 384  # 96 layers x 4 strings

    def test_pages_per_block(self):
        assert PAPER_GEOMETRY.pages_per_block == 1152  # TLC

    def test_page_bytes(self):
        assert PAPER_GEOMETRY.page_bytes == 18 * 1024  # 16K user + 2K spare

    def test_blocks_per_chip(self):
        assert PAPER_GEOMETRY.blocks_per_chip == 4 * 954


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            NandGeometry(planes_per_chip=0)
        with pytest.raises(ValueError):
            NandGeometry(bits_per_cell=5)
        with pytest.raises(ValueError):
            NandGeometry(page_spare_bytes=-1)

    def test_bounds_checks(self):
        g = SMALL_GEOMETRY
        with pytest.raises(ValueError):
            g.check_plane(g.planes_per_chip)
        with pytest.raises(ValueError):
            g.check_block(-1)
        with pytest.raises(ValueError):
            g.check_layer(g.layers_per_block)
        with pytest.raises(ValueError):
            g.check_string(g.strings_per_layer)
        with pytest.raises(ValueError):
            g.check_lwl(g.lwls_per_block)

    def test_page_type_check(self):
        g = NandGeometry(bits_per_cell=2)
        g.check_page_type(PageType.CSB)
        with pytest.raises(ValueError):
            g.check_page_type(PageType.MSB)


class TestLwlMapping:
    def test_lwl_index_layer_major(self):
        g = PAPER_GEOMETRY
        assert g.lwl_index(0, 0) == 0
        assert g.lwl_index(0, 3) == 3
        assert g.lwl_index(1, 0) == 4
        assert g.lwl_index(95, 3) == 383

    def test_roundtrip(self):
        g = SMALL_GEOMETRY
        for lwl in range(g.lwls_per_block):
            layer, string = g.lwl_components(lwl)
            assert g.lwl_index(layer, string) == lwl

    def test_iter_lwls_order(self):
        g = SMALL_GEOMETRY
        seen = list(g.iter_lwls())
        assert [x[0] for x in seen] == list(range(g.lwls_per_block))
        assert seen[0] == (0, 0, 0)
        assert seen[g.strings_per_layer] == (g.strings_per_layer, 1, 0)


class TestAddresses:
    def test_ordering_and_str(self):
        a = BlockAddress(0, 0, 5)
        b = BlockAddress(0, 1, 0)
        assert a < b
        assert str(a) == "c0/p0/b5"

    def test_wordline_and_page_str(self):
        wl = WordLineAddress(BlockAddress(1, 2, 3), 17)
        assert str(wl) == "c1/p2/b3/wl17"
        page = PageAddress(wl, PageType.MSB)
        assert str(page).endswith("MSB")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BlockAddress(0, 0, 0).block = 1
