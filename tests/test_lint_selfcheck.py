"""The live repository must be reprolint-clean.

This is the PR gate in miniature: if a change reintroduces an unseeded RNG,
a wall-clock read, a layering inversion, or a unit-hygiene slip anywhere in
``src``/``benchmarks``/``examples``/``tools``, this test fails with the same
report ``repro lint`` prints.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import List

import pytest

from repro.lint import lint_paths, render_text
from repro.lint.engine import iter_python_files
from repro.lint.layers import LAYER_DEPENDENCIES
from repro.lint.suppressions import directive_lines

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTED_DIRS = ["src", "benchmarks", "examples", "tools"]


def _existing_dirs() -> List[str]:
    return [str(REPO_ROOT / d) for d in LINTED_DIRS if (REPO_ROOT / d).is_dir()]


def test_repository_is_lint_clean() -> None:
    findings = lint_paths(_existing_dirs(), root=REPO_ROOT)
    assert not findings, "\n" + render_text(findings)


def test_linted_tree_is_nonempty() -> None:
    # Guard against the self-check silently passing because discovery broke.
    files = list(iter_python_files([Path(d) for d in _existing_dirs()]))
    assert len(files) > 100
    names = {f.name for f in files}
    assert "ftl.py" in names and "chip.py" in names


def test_every_suppression_carries_an_explanation() -> None:
    """A bare directive with no nearby comment is an unreviewed exemption."""
    for path in iter_python_files([Path(d) for d in _existing_dirs()]):
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        for lineno in directive_lines(source):
            window = lines[max(0, lineno - 3) : lineno]
            has_prose = any(
                "#" in line and "reprolint:" not in line.split("#", 1)[1]
                for line in window
            )
            assert has_prose, (
                f"{path}:{lineno}: reprolint directive without an explanatory "
                "comment on the same or preceding lines"
            )


def test_layer_map_is_acyclic() -> None:
    """The declarative map itself must stay a DAG."""
    state = {}

    def visit(layer: str) -> None:
        state[layer] = "visiting"
        for dep in sorted(LAYER_DEPENDENCIES[layer]):
            if state.get(dep) == "visiting":
                raise AssertionError(f"cycle through {layer} -> {dep}")
            if dep not in state:
                visit(dep)
        state[layer] = "done"

    for layer in sorted(LAYER_DEPENDENCIES):
        if layer not in state:
            visit(layer)


def test_mypy_gate_passes() -> None:
    """The committed strict-leaning mypy config must hold (when available)."""
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_layer_map_matches_reality() -> None:
    """Every subpackage present in src/repro appears in the layer map."""
    src = REPO_ROOT / "src" / "repro"
    subpackages = {
        p.name
        for p in src.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    assert subpackages == set(LAYER_DEPENDENCIES)
