"""The one exit-code table, pinned across subcommands.

``src/repro/cli.py`` documents a single contract for every subcommand:
0 = success, 1 = verdict/gate failure, 2 = usage error.  Scripts and the
CI chaos job branch on these, so each class of exit is exercised here on
at least two unrelated subcommands — a regression in one command's exit
semantics must not hide behind another command's coverage.
"""

import textwrap

import pytest

from repro.cli import main

# A complete-but-tiny fleet: two devices, no replication fan-out beyond
# one copy, a handful of requests.  Fast enough for the tier-1 suite.
FLEET_SMALL = [
    "fleet",
    "--fleet",
    "devices=2,replicas=1,tenants=2,requests_per_tenant=6,queue_depth=8",
    "--seed",
    "5",
]


class TestExitZero:
    @pytest.mark.parametrize(
        "argv",
        [
            ["overhead"],
            ["sweep", "--over", "seed=1,2", "--dry-run"],
            FLEET_SMALL,
            ["lint", "src/repro/utils"],
        ],
        ids=["overhead", "sweep-dry-run", "fleet", "lint-clean"],
    )
    def test_success_exits_zero(self, argv, capsys):
        assert main(argv) == 0


class TestExitOne:
    def test_lint_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "rng.py"
        bad.write_text(
            textwrap.dedent(
                """\
                import numpy as np

                r = np.random.default_rng(7)
                """
            ),
            encoding="utf-8",
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "RNG003" in capsys.readouterr().out


class TestExitTwo:
    @pytest.mark.parametrize(
        ("argv", "needle"),
        [
            (["sweep", "--over", "seed", "--dry-run"], "bad --over"),
            (
                ["sweep", "--over", "seed=1", "--over", "seed=2", "--dry-run"],
                "already swept",
            ),
            (["fleet", "--fleet", "devices=zero"], "bad fleet configuration"),
            (["fleet", "--fleet", "no_such_knob=1"], "bad fleet configuration"),
            (["fleet", "--faults", "@/no/such/plan.json"], "bad --faults"),
            (
                ["fleet", "--policy", "allocation=no.such.policy"],
                "bad --policy",
            ),
            (["lint", "no/such/dir"], "no such path"),
        ],
        ids=[
            "sweep-bad-over",
            "sweep-duplicate-axis",
            "fleet-bad-value",
            "fleet-unknown-knob",
            "fleet-missing-fault-plan",
            "fleet-unknown-policy",
            "lint-missing-path",
        ],
    )
    def test_usage_errors_exit_two(self, argv, needle, capsys):
        # some validators return 2, others raise SystemExit(2) from inside
        # shared argument helpers — the observable exit status is the same
        try:
            code = main(argv)
        except SystemExit as stop:
            code = stop.code
        assert code == 2
        assert needle in capsys.readouterr().err

    def test_argparse_errors_exit_two(self):
        with pytest.raises(SystemExit) as stop:
            main(["no-such-command"])
        assert stop.value.code == 2
