"""Fault injection x vector backend: the gate falls back, bytes agree.

``build_stack`` only swaps in the vector engine for stacks it can
reproduce bit-for-bit, and fault injection is explicitly outside that
set: a faulted config with ``backend="vector"`` must build the scalar
reference classes and land on exactly the scalar bytes — traced JSONL
events, untraced replay state, and config content hashes alike.  This
is the contract the CI vector job relies on when it reruns the whole
command matrix under ``REPRO_BACKEND=vector``.
"""

from __future__ import annotations

import hashlib
import json

from repro.exp import SimConfig, build_stack
from repro.faults import FaultEvent, FaultPlan
from repro.kernels import VectorFtl, VectorSsd
from repro.obs import Tracer
from repro.obs.export import to_jsonl
from repro.workloads import Replayer


def _faulted() -> SimConfig:
    # a busy schedule: every fault family, two of them mid-replay
    plan = FaultPlan(
        program_fail_prob=0.002,
        events=(
            FaultEvent(kind="program_fail", chip=0, block=3, at_time_us=500.0),
            FaultEvent(
                kind="read_storm",
                chip=1,
                at_time_us=1500.0,
                duration_ops=40,
                rber_multiplier=6.0,
            ),
            FaultEvent(kind="erase_fail", chip=0, at_time_us=4000.0),
            FaultEvent(kind="plane_outage", chip=1, plane=1, at_time_us=9000.0),
        ),
    )
    return SimConfig.device(
        seed=7, chips=2, blocks=20, requests=600, faults=plan
    )


def _trace_digest(config: SimConfig) -> str:
    tracer = Tracer()
    stack = build_stack(config, tracer=tracer)
    Replayer(stack.ssd).replay(stack.requests())
    return hashlib.sha256(to_jsonl(tracer.events).encode("utf-8")).hexdigest()


def _replay_state(config: SimConfig) -> str:
    stack = build_stack(config)
    report = Replayer(stack.ssd).replay(stack.requests())
    ftl = stack.ssd.ftl
    doc = {
        "summary": report.summary(),
        "latencies": report.latencies(),
        "ftl": ftl.metrics.summary(),
        "injector": {
            chip_id: {
                "program_fails": chip.injector.injected_program_fails,
                "erase_fails": chip.injector.injected_erase_fails,
                "read_storms": chip.injector.injected_read_storms,
                "plane_outages": chip.injector.injected_plane_outages,
            }
            for chip_id, chip in sorted(ftl.chips.items())
        },
        "map": sorted(
            (lpn, loc.superblock_id, loc.slot)
            for lpn, loc in ftl.mapper.iter_mapped()
        ),
    }
    return json.dumps(doc, sort_keys=True)


def test_faulted_vector_config_builds_the_scalar_classes(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    stack = build_stack(_faulted().with_(backend="vector"))
    assert not isinstance(stack.ssd, VectorSsd)
    assert not isinstance(stack.ftl, VectorFtl)


def test_faulted_env_var_backend_also_falls_back(monkeypatch):
    # the CI vector job sets the env var rather than editing configs
    monkeypatch.setenv("REPRO_BACKEND", "vector")
    stack = build_stack(_faulted())
    assert not isinstance(stack.ssd, VectorSsd)


def test_backend_field_does_not_fork_the_faulted_config_hash():
    config = _faulted()
    assert (
        config.with_(backend="vector").content_hash() == config.content_hash()
    )


def test_faulted_traces_byte_identical_across_backends():
    scalar = _trace_digest(_faulted())
    vector = _trace_digest(_faulted().with_(backend="vector"))
    assert scalar == vector


def test_faulted_untraced_state_identical_across_backends():
    scalar = _replay_state(_faulted())
    vector = _replay_state(_faulted().with_(backend="vector"))
    assert scalar == vector
