"""Assembly framework tests: pools, superblocks, windowed consumption."""

import numpy as np
import pytest

from repro.assembly.base import (
    LanePool,
    Superblock,
    WindowedAssembler,
    check_pools,
    min_total_distance_combo,
    pairwise_signature_distances,
)
from repro.characterization.datasets import BlockMeasurement


def measurement(chip, block, value, ers=100.0):
    matrix = np.full((2, 4), float(value))
    matrix.setflags(write=False)
    return BlockMeasurement(chip, 0, block, 0, matrix, ers)


def pools_of(size, lanes=3):
    return [
        LanePool(lane=l, blocks=[measurement(l, b, 10 * b + l) for b in range(size)])
        for l in range(lanes)
    ]


class TestSuperblock:
    def test_member_lane_alignment(self):
        with pytest.raises(ValueError):
            Superblock(members=(measurement(0, 0, 1),), lanes=(0, 1))

    def test_duplicate_lanes_rejected(self):
        members = (measurement(0, 0, 1), measurement(0, 1, 2))
        with pytest.raises(ValueError):
            Superblock(members=members, lanes=(0, 0))

    def test_latency_properties(self):
        sb = Superblock(
            members=(measurement(0, 0, 10, ers=90), measurement(1, 0, 12, ers=100)),
            lanes=(0, 1),
        )
        assert sb.extra_program_latency_us == pytest.approx(2.0 * 8)
        assert sb.extra_erase_latency_us == pytest.approx(10.0)
        assert sb.program_completion_us == pytest.approx(12.0 * 8)
        assert sb.erase_completion_us == pytest.approx(100.0)
        assert sb.member_keys() == [(0, 0, 0), (1, 0, 0)]


class TestCheckPools:
    def test_happy_path(self):
        assert check_pools(pools_of(3)) == 3

    def test_uneven_pools(self):
        pools = pools_of(3)
        pools[1].blocks.pop()
        assert check_pools(pools) == 2

    def test_single_lane_rejected(self):
        with pytest.raises(ValueError):
            check_pools(pools_of(3, lanes=1))

    def test_duplicate_lanes_rejected(self):
        pools = pools_of(2, lanes=2)
        pools[1].lane = 0
        with pytest.raises(ValueError):
            check_pools(pools)

    def test_empty_pool_rejected(self):
        pools = pools_of(2)
        pools[0].blocks.clear()
        with pytest.raises(ValueError):
            check_pools(pools)


class HeadPicker(WindowedAssembler):
    """Always picks index 0 per lane — degenerates to the PGM-latency sort."""

    name = "head"

    def choose(self, windows):
        return tuple(0 for _ in windows)


class RecordingPicker(WindowedAssembler):
    """Records window widths to verify the disjoint-window walk."""

    name = "recording"

    def __init__(self, window):
        super().__init__(window)
        self.seen_widths = []

    def choose(self, windows):
        self.seen_widths.append(tuple(len(w) for w in windows))
        return tuple(0 for _ in windows)


class TestWindowedAssembler:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            HeadPicker(0)

    def test_consumes_everything_once(self):
        pools = pools_of(7)
        superblocks = HeadPicker(3).assemble(pools)
        assert len(superblocks) == 7
        seen = [key for sb in superblocks for key in sb.member_keys()]
        assert len(seen) == len(set(seen))

    def test_head_picker_equals_sorted_zip(self):
        pools = pools_of(6)
        superblocks = HeadPicker(3).assemble(pools)
        for index, sb in enumerate(superblocks):
            for member in sb.members:
                # values were constructed ascending in block index
                assert member.block == index

    def test_window_walk_is_disjoint(self):
        picker = RecordingPicker(4)
        picker.assemble(pools_of(10))
        # batches: 4, 4, 2 -> widths shrink within each batch then reset
        assert picker.seen_widths == [
            (4, 4, 4), (3, 3, 3), (2, 2, 2), (1, 1, 1),
            (4, 4, 4), (3, 3, 3), (2, 2, 2), (1, 1, 1),
            (2, 2, 2), (1, 1, 1),
        ]

    def test_bad_choose_return(self):
        class Bad(WindowedAssembler):
            name = "bad"

            def choose(self, windows):
                return (0,)

        with pytest.raises(ValueError):
            Bad(2).assemble(pools_of(4))

    def test_out_of_range_pick(self):
        class OutOfRange(WindowedAssembler):
            name = "oor"

            def choose(self, windows):
                return tuple(99 for _ in windows)

        with pytest.raises(IndexError):
            OutOfRange(2).assemble(pools_of(4))


class TestComboSearch:
    def test_pairwise_distances(self):
        a = np.array([[0, 0], [1, 1]])
        b = np.array([[0, 1], [1, 1], [0, 0]])
        d = pairwise_signature_distances(a, b)
        assert d.shape == (2, 3)
        assert d[0, 2] == 0 and d[1, 1] == 0 and d[0, 0] == 1

    def test_pairwise_shape_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_signature_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_min_total_distance_combo(self):
        # 2 lanes with known best pair
        d01 = np.array([[5.0, 1.0], [2.0, 9.0]])
        picks, best, combos = min_total_distance_combo({(0, 1): d01}, [2, 2])
        assert picks == (0, 1)
        assert best == 1.0
        assert combos == 4

    def test_three_lane_combo(self):
        rng = np.random.default_rng(0)
        sizes = [3, 4, 2]
        mats = {
            (0, 1): rng.random((3, 4)),
            (0, 2): rng.random((3, 2)),
            (1, 2): rng.random((4, 2)),
        }
        picks, best, combos = min_total_distance_combo(mats, sizes)
        assert combos == 24
        # brute-force cross-check
        expected = min(
            (mats[(0, 1)][i, j] + mats[(0, 2)][i, k] + mats[(1, 2)][j, k], (i, j, k))
            for i in range(3)
            for j in range(4)
            for k in range(2)
        )
        assert picks == expected[1]
        assert best == pytest.approx(expected[0])

    def test_bad_pair_key(self):
        with pytest.raises(ValueError):
            min_total_distance_combo({(1, 0): np.zeros((2, 2))}, [2, 2])
