"""GatheringUnit and BlockRecord tests."""

import numpy as np
import pytest

from repro.core.eigen import eigen_sequence
from repro.core.gathering import GatheringError, GatheringUnit
from repro.core.records import BlockRecord
from repro.nand import SMALL_GEOMETRY
from repro.utils.bitvec import BitVector


@pytest.fixture()
def unit():
    return GatheringUnit(SMALL_GEOMETRY)


def feed_block(unit, lane=0, plane=0, block=0, seed=0, pe=0):
    rng = np.random.default_rng(seed)
    g = SMALL_GEOMETRY
    matrix = rng.normal(1700, 10, size=(g.layers_per_block, g.strings_per_layer))
    unit.open_block(lane, plane, block, pe)
    record = None
    for lwl in range(g.lwls_per_block):
        layer, string = divmod(lwl, g.strings_per_layer)
        record = unit.report(lane, plane, block, lwl, float(matrix[layer, string]))
    return record, matrix


class TestLifecycle:
    def test_open_twice_rejected(self, unit):
        unit.open_block(0, 0, 0)
        with pytest.raises(GatheringError):
            unit.open_block(0, 0, 0)

    def test_report_unopened_rejected(self, unit):
        with pytest.raises(GatheringError):
            unit.report(0, 0, 0, 0, 1000.0)

    def test_out_of_order_rejected(self, unit):
        unit.open_block(0, 0, 0)
        unit.report(0, 0, 0, 0, 1000.0)
        with pytest.raises(GatheringError):
            unit.report(0, 0, 0, 2, 1000.0)

    def test_abandon(self, unit):
        unit.open_block(0, 0, 0)
        assert unit.open_count == 1
        unit.abandon_block(0, 0, 0)
        assert unit.open_count == 0
        unit.abandon_block(0, 0, 9)  # idempotent

    def test_completion_closes_block(self, unit):
        record, _ = feed_block(unit)
        assert record is not None
        assert not unit.is_open(0, 0, 0)
        assert unit.completed == [record]


class TestRecordContents:
    def test_latency_sum(self, unit):
        record, matrix = feed_block(unit)
        assert record.pgm_total_us == pytest.approx(matrix.sum())

    def test_eigen_matches_offline(self, unit):
        record, matrix = feed_block(unit)
        assert record.eigen == eigen_sequence(matrix)

    def test_callback_invoked(self):
        seen = []
        unit = GatheringUnit(SMALL_GEOMETRY, seen.append)
        record, _ = feed_block(unit)
        assert seen == [record]

    def test_pe_cycles_recorded(self, unit):
        record, _ = feed_block(unit, pe=42)
        assert record.pe_cycles == 42

    def test_gather_measurement_helper(self, unit):
        rng = np.random.default_rng(3)
        g = SMALL_GEOMETRY
        matrix = rng.normal(1700, 10, size=(g.layers_per_block, g.strings_per_layer))
        record = unit.gather_measurement(1, 0, 5, matrix, pe_cycles=7)
        assert record.lane == 1 and record.block == 5
        assert record.pgm_total_us == pytest.approx(matrix.sum())


class TestFootprint:
    def test_staging_only_open_blocks(self, unit):
        assert unit.staging_bytes() == 0
        unit.open_block(0, 0, 0)
        first = unit.staging_bytes()
        assert first > 0
        unit.open_block(0, 0, 1)
        assert unit.staging_bytes() > first
        unit.abandon_block(0, 0, 0)
        unit.abandon_block(0, 0, 1)
        assert unit.staging_bytes() == 0

    def test_record_metadata_bytes(self, unit):
        record, _ = feed_block(unit)
        g = SMALL_GEOMETRY
        expected = 4 + (g.lwls_per_block + 7) // 8
        assert record.metadata_bytes() == expected


class TestBlockRecord:
    def test_distance(self):
        a = BlockRecord(0, 0, 0, 1.0, BitVector([1, 0, 1, 0]))
        b = BlockRecord(1, 0, 0, 2.0, BitVector([1, 1, 1, 1]))
        assert a.distance_to(b) == 2

    def test_key_and_str(self):
        record = BlockRecord(2, 1, 30, 500.0, BitVector([0]))
        assert record.key() == (2, 1, 30)
        assert "lane2" in str(record)
