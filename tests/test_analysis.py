"""Analysis layer tests: experiment drivers, tables, figure helpers."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE5,
    TestbedConfig,
    build_testbed,
    cumulative_mean,
    fig5_characterization,
    fig6_random_extra,
    fig13_distributions,
    fig14_per_superblock,
    improvement_series,
    render_histogram,
    render_series_block,
    render_table,
    render_table1,
    render_table2,
    render_table5,
    run_methods,
    sparkline,
    standard_pools,
    table2_window_sweep,
    table5_extra_latency,
)
from repro.nand import SMALL_GEOMETRY, VariationParams
from repro.utils.stats import Histogram

SMALL_TESTBED = TestbedConfig(
    geometry=SMALL_GEOMETRY, params=VariationParams(), seed=7, chips=3, pool_blocks=16
)


@pytest.fixture(scope="module")
def pools():
    chips = build_testbed(SMALL_TESTBED)
    return standard_pools(chips, SMALL_TESTBED.pool_blocks)


class TestDrivers:
    def test_run_methods_rows(self, pools):
        baseline, rows = run_methods(pools, ["SEQUENTIAL", "STR-MED(4)"])
        assert baseline.superblock_count == 16
        assert set(rows) == {"SEQUENTIAL", "STR-MED(4)"}
        row = rows["STR-MED(4)"]
        assert row.reduction_us == pytest.approx(
            baseline.mean_extra_program_us - row.result.mean_extra_program_us
        )

    def test_table2_names(self, pools):
        _, rows = table2_window_sweep(pools, windows=(4, 2))
        assert list(rows) == ["STR-RANK(4)", "STR-RANK(2)"]

    def test_table5(self, pools):
        baseline, rows = table5_extra_latency(pools)
        assert "QSTR-MED(4)" in rows
        text = render_table5(baseline, rows)
        assert "RANDOM" in text and "paper PGM" in text

    def test_fig5_series(self):
        chips = build_testbed(SMALL_TESTBED)
        series = fig5_characterization(chips, erase_blocks=6, curve_blocks=(0, 1))
        assert len(series.erase_by_chip_plane) == 3 * SMALL_GEOMETRY.planes_per_chip
        assert (0, 0) in series.program_curves
        curve = series.program_curves[(0, 0)]
        assert curve.shape == (SMALL_GEOMETRY.lwls_per_block,)

    def test_fig6(self, pools):
        series = fig6_random_extra(pools)
        assert len(series.extra_program_us) == 16
        assert series.mean_program > 0
        assert series.mean_erase >= 0

    def test_fig13(self, pools):
        baseline, rows = run_methods(pools, ["STR-MED(4)"])
        hists = fig13_distributions(rows, baseline, bins=10)
        assert set(hists) == {"RANDOM", "STR-MED(4)"}
        for hist in hists.values():
            assert hist.total == 16

    def test_fig14(self, pools):
        series = fig14_per_superblock(pools)
        assert len(series.str_med) == len(series.qstr_med) == len(series.random) == 16


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")

    def test_paper_constants_present(self):
        assert PAPER_TABLE1["OPTIMAL(8)"][1] == 19.49
        assert PAPER_TABLE5["RANDOM"][0] == 13084.17

    def test_render_table1_and_2(self, pools):
        _, rows1 = run_methods(pools, ["SEQUENTIAL"])
        assert "SEQUENTIAL" in render_table1(rows1)
        _, rows2 = table2_window_sweep(pools, windows=(2,))
        assert "STR-RANK(2)" in render_table2(rows2)


class TestFigureHelpers:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert len(sparkline([1.0] * 10)) == 10
        assert len(sparkline(list(range(200)), width=50)) == 50

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        assert line[0] == " " and line[-1] == "@"

    def test_render_series_block(self):
        text = render_series_block("title", {"a": [1.0, 2.0], "b": []})
        assert "title" in text and "(empty)" in text and "mean" in text

    def test_render_histogram(self):
        hist = Histogram(low=0, high=10, bins=2)
        hist.extend([1, 1, 6])
        text = render_histogram("h", hist)
        assert "#" in text

    def test_cumulative_mean(self):
        result = cumulative_mean([2.0, 4.0, 6.0])
        assert list(result) == [2.0, 3.0, 4.0]
        assert cumulative_mean([]).size == 0

    def test_improvement_series(self):
        result = improvement_series([100.0, 100.0], [50.0, 150.0])
        assert list(result) == [50.0, -50.0]
        with pytest.raises(ValueError):
            improvement_series([1.0], [1.0, 2.0])

    def test_improvement_series_zero_baseline(self):
        result = improvement_series([0.0], [1.0])
        assert result[0] == 0.0
