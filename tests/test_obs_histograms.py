"""Fixed-bucket latency histogram tests (repro.obs.histograms)."""

import pytest

from repro.obs.histograms import (
    DEFAULT_LATENCY_BUCKETS_US,
    LatencyHistogram,
    LatencyStat,
    merge_histograms,
)


class TestBucketLadder:
    def test_default_ladder_shape(self):
        assert DEFAULT_LATENCY_BUCKETS_US[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_US[-1] == 1e7
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US
        )

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(())
        with pytest.raises(ValueError):
            LatencyHistogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            LatencyHistogram((5.0, 1.0))


class TestEmptyHistogram:
    def test_quantile_raises(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.quantile(0.5)

    def test_summary_is_zeros(self):
        summary = LatencyHistogram().summary()
        assert summary == {
            "count": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }

    def test_count_and_overflow(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.overflow == 0
        assert hist.nonzero_buckets() == []


class TestSingleSample:
    def test_all_quantiles_collapse_to_value(self):
        hist = LatencyHistogram()
        hist.add(137.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(137.0)
        summary = hist.summary()
        assert summary["count"] == 1.0
        assert summary["mean"] == pytest.approx(137.0)
        assert summary["max"] == pytest.approx(137.0)

    def test_invalid_q(self):
        hist = LatencyHistogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)


class TestOverflowBucket:
    def test_overflow_reports_exact_maximum(self):
        hist = LatencyHistogram()
        hist.add(3e7)  # above the last 1e7 bound
        assert hist.overflow == 1
        assert hist.quantile(0.99) == pytest.approx(3e7)
        assert hist.summary()["max"] == pytest.approx(3e7)

    def test_overflow_mixes_with_finite_buckets(self):
        hist = LatencyHistogram()
        hist.extend([10.0] * 99)
        hist.add(5e7)
        assert hist.overflow == 1
        assert hist.quantile(0.5) <= 20.0
        assert hist.quantile(1.0) == pytest.approx(5e7)


class TestQuantiles:
    def test_monotone_and_clamped(self):
        hist = LatencyHistogram()
        hist.extend(float(v) for v in range(1, 1001))
        p50, p95, p99 = hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99)
        assert hist.stats.minimum <= p50 <= p95 <= p99 <= hist.stats.maximum
        # Bucket interpolation stays within the ladder's ~2x resolution.
        assert 200.0 <= p50 <= 1000.0

    def test_merge(self):
        one, two = LatencyHistogram(), LatencyHistogram()
        one.extend([10.0, 20.0])
        two.extend([30.0, 2e7])
        merged = merge_histograms([one, two])
        assert merged.count == 4
        assert merged.overflow == 1
        assert merged.stats.maximum == pytest.approx(2e7)
        assert merge_histograms([]) is None
        with pytest.raises(ValueError):
            merge_histograms([one, LatencyHistogram((1.0, 2.0))])


class TestLatencyStat:
    def test_running_stats_surface(self):
        stat = LatencyStat()
        stat.extend([100.0, 200.0, 300.0])
        assert stat.count == 3
        assert stat.mean == pytest.approx(200.0)
        assert stat.total == pytest.approx(600.0)
        assert stat.minimum == pytest.approx(100.0)
        assert stat.maximum == pytest.approx(300.0)
        assert stat.stdev > 0

    def test_tail_surface(self):
        stat = LatencyStat()
        stat.extend([10.0] * 99 + [10_000.0])
        assert stat.p50 < stat.p99 <= stat.maximum
        summary = stat.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert stat.quantile(1.0) == pytest.approx(10_000.0)

    def test_empty_repr_and_quantile(self):
        stat = LatencyStat()
        assert "empty" in repr(stat)
        with pytest.raises(ValueError):
            _ = stat.p99
