"""PageMapper tests, including a hypothesis model-based check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import MappingError, PageMapper, PhysicalSlot


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageMapper(0)
        mapper = PageMapper(10)
        with pytest.raises(MappingError):
            mapper.check_lpn(10)
        with pytest.raises(MappingError):
            mapper.check_lpn(-1)

    def test_map_and_lookup(self):
        mapper = PageMapper(10)
        assert mapper.map_page(3, PhysicalSlot(0, 5)) is None
        assert mapper.lookup(3) == PhysicalSlot(0, 5)
        assert mapper.lpn_at(0, 5) == 3
        assert mapper.valid_count(0) == 1
        assert mapper.mapped_pages == 1

    def test_remap_invalidates_stale(self):
        mapper = PageMapper(10)
        mapper.map_page(3, PhysicalSlot(0, 5))
        stale = mapper.map_page(3, PhysicalSlot(1, 0))
        assert stale == PhysicalSlot(0, 5)
        assert mapper.valid_count(0) == 0
        assert mapper.valid_count(1) == 1
        assert mapper.lpn_at(0, 5) is None

    def test_slot_collision_rejected(self):
        mapper = PageMapper(10)
        mapper.map_page(1, PhysicalSlot(0, 0))
        with pytest.raises(MappingError):
            mapper.map_page(2, PhysicalSlot(0, 0))

    def test_unmap(self):
        mapper = PageMapper(10)
        mapper.map_page(4, PhysicalSlot(2, 7))
        assert mapper.unmap_page(4) == PhysicalSlot(2, 7)
        assert mapper.lookup(4) is None
        assert mapper.unmap_page(4) is None
        assert mapper.valid_count(2) == 0

    def test_valid_slots_sorted(self):
        mapper = PageMapper(10)
        mapper.map_page(1, PhysicalSlot(0, 9))
        mapper.map_page(2, PhysicalSlot(0, 2))
        mapper.map_page(3, PhysicalSlot(1, 0))
        assert mapper.valid_slots(0) == [(2, 2), (9, 1)]

    def test_drop_superblock_guard(self):
        mapper = PageMapper(10)
        mapper.map_page(1, PhysicalSlot(0, 0))
        with pytest.raises(MappingError):
            mapper.drop_superblock(0)
        mapper.unmap_page(1)
        mapper.drop_superblock(0)  # now fine

    def test_iter_mapped(self):
        mapper = PageMapper(4)
        mapper.map_page(0, PhysicalSlot(0, 0))
        assert dict(mapper.iter_mapped()) == {0: PhysicalSlot(0, 0)}


class MapModel:
    """Reference model: plain dicts."""

    def __init__(self):
        self.l2p = {}

    def map(self, lpn, sb, slot):
        self.l2p[lpn] = (sb, slot)

    def unmap(self, lpn):
        self.l2p.pop(lpn, None)


@st.composite
def operations(draw):
    ops = []
    used_slots = set()
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["map", "unmap"]))
        lpn = draw(st.integers(0, 15))
        if kind == "map":
            slot = draw(st.integers(0, 200))
            if slot in used_slots:
                continue
            used_slots.add(slot)
            ops.append(("map", lpn, 0, slot))
        else:
            ops.append(("unmap", lpn))
    return ops


class TestModelBased:
    @settings(max_examples=60)
    @given(operations())
    def test_matches_reference_model(self, ops):
        mapper = PageMapper(16)
        model = MapModel()
        for op in ops:
            if op[0] == "map":
                _, lpn, sb, slot = op
                mapper.map_page(lpn, PhysicalSlot(sb, slot))
                model.map(lpn, sb, slot)
            else:
                _, lpn = op
                mapper.unmap_page(lpn)
                model.unmap(lpn)
        for lpn in range(16):
            expected = model.l2p.get(lpn)
            actual = mapper.lookup(lpn)
            if expected is None:
                assert actual is None
            else:
                assert (actual.superblock_id, actual.slot) == expected
        assert mapper.mapped_pages == len(model.l2p)
        # valid counts consistent with the model
        counts = {}
        for sb, slot in model.l2p.values():
            counts[sb] = counts.get(sb, 0) + 1
        for sb, count in counts.items():
            assert mapper.valid_count(sb) == count
