"""Sweep grid expansion, deterministic parallel execution, result cache."""

import json

import pytest

from repro.exp import (
    ResultCache,
    SimConfig,
    Sweep,
    cell_key,
    code_salt,
    run,
)
from repro.obs import MetricsRegistry
from repro.utils.rng import derive_seed

#: small enough that one cell takes well under a second.
BASE = SimConfig.testbed(seed=3, chips=2, pool_blocks=10)
PARAMS = {"methods": ["SEQUENTIAL"]}


def tiny_sweep():
    return Sweep("methods", base=BASE, params=PARAMS).over("seed", range(4))


class TestGridExpansion:
    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            Sweep("warp")

    def test_over_is_immutable_chaining(self):
        base = Sweep("methods", base=BASE)
        swept = base.over("pe_cycles", [0, 1000])
        assert len(base) == 1
        assert len(swept) == 2
        assert base.axes == ()

    def test_duplicate_and_empty_axes_rejected(self):
        sweep = Sweep("methods", base=BASE).over("seed", [1])
        with pytest.raises(ValueError, match="already swept"):
            sweep.over("seed", [2])
        with pytest.raises(ValueError, match="no values"):
            sweep.over("pe_cycles", [])

    def test_cross_product_order(self):
        sweep = (
            Sweep("methods", base=BASE)
            .over("seed", [0, 1])
            .over("pe_cycles", [0, 1000, 3000])
        )
        cells = sweep.cells()
        assert len(cells) == 6
        assert [cell.index for cell in cells] == list(range(6))
        # earlier axes vary slowest
        assert [dict(c.coords)["pe_cycles"] for c in cells[:3]] == [0, 1000, 3000]
        assert {dict(c.coords)["seed"] for c in cells[:3]} == {0}

    def test_seed_axis_derives_root_seed(self):
        cells = tiny_sweep().cells()
        for value, cell in zip(range(4), cells):
            assert cell.config.seed == derive_seed(BASE.seed, "seed", value)

    def test_config_axis_overrides_field(self):
        cells = Sweep("methods", base=BASE).over("pe_cycles", [0, 500]).cells()
        assert [c.config.pe_cycles for c in cells] == [0, 500]

    def test_dotted_config_axis(self):
        cells = (
            Sweep("methods", base=BASE)
            .over("variation.sigma_wl_noise_us", [1.0, 9.0])
            .cells()
        )
        assert [c.config.variation.sigma_wl_noise_us for c in cells] == [1.0, 9.0]

    def test_non_config_axis_becomes_task_param(self):
        cells = (
            Sweep("methods", base=BASE)
            .over("methods", [["SEQUENTIAL"], ["OPTIMAL(8)"]])
            .cells()
        )
        assert cells[0].params["methods"] == ["SEQUENTIAL"]
        assert cells[1].params["methods"] == ["OPTIMAL(8)"]


class TestDeterministicExecution:
    def test_serial_vs_parallel_bit_identical(self):
        serial = run(tiny_sweep(), workers=1)
        parallel = run(tiny_sweep(), workers=4)
        assert [c.result for c in serial.cells] == [c.result for c in parallel.cells]
        assert [c.cell.coords for c in serial.cells] == [
            c.cell.coords for c in parallel.cells
        ]

    def test_results_in_grid_order_and_json_typed(self):
        result = run(tiny_sweep(), workers=4)
        assert [c.cell.index for c in result.cells] == list(range(4))
        for value in result.column("baseline.mean_extra_program_us"):
            assert type(value) is float

    def test_column_digs_dotted_paths(self):
        result = run(Sweep("methods", base=BASE, params=PARAMS), workers=1)
        (value,) = result.column("methods.SEQUENTIAL.improvement_pct")
        assert isinstance(value, float)


class TestCache:
    def test_second_run_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run(tiny_sweep(), workers=2, cache=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 4)
        second = run(tiny_sweep(), workers=2, cache=cache)
        assert (second.cache_hits, second.cache_misses) == (4, 0)
        assert [c.result for c in first.cells] == [c.result for c in second.cells]

    def test_force_recomputes_despite_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run(tiny_sweep(), cache=cache)
        forced = run(tiny_sweep(), cache=cache, force=True)
        assert forced.cache_hits == 0

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run(Sweep("methods", base=BASE, params=PARAMS), cache=cache)
        shifted = Sweep("methods", base=BASE.with_(pe_cycles=100), params=PARAMS)
        result = run(shifted, cache=cache)
        assert result.cache_misses == 1

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run(Sweep("methods", base=BASE, params=PARAMS), cache=cache)
        result = run(
            Sweep("methods", base=BASE, params={"methods": ["OPTIMAL(8)"]}),
            cache=cache,
        )
        assert result.cache_misses == 1

    def test_salt_change_invalidates_key(self):
        key = cell_key("methods", BASE, PARAMS, "aaaa")
        assert key != cell_key("methods", BASE, PARAMS, "bbbb")
        assert key == cell_key("methods", BASE, dict(PARAMS), "aaaa")

    def test_code_salt_is_deterministic(self):
        assert code_salt(["repro.utils"]) == code_salt(["repro.utils"])
        assert code_salt(["repro.utils"]) != code_salt(["repro.nand"])
        # order-insensitive over the module set
        assert code_salt(["repro.nand", "repro.utils"]) == code_salt(
            ["repro.utils", "repro.nand"]
        )

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep = Sweep("methods", base=BASE, params=PARAMS)
        first = run(sweep, cache=cache)
        cache.path(first.cells[0].key).write_text("{ not json")
        again = run(sweep, cache=cache)
        assert again.cache_misses == 1
        assert again.cells[0].result == first.cells[0].result


class TestProgressAndManifest:
    def test_registry_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        registry = MetricsRegistry()
        run(tiny_sweep(), cache=cache, registry=registry)
        counters = {name: c.value for name, c in registry.counters.items()}
        assert counters["sweep.cells"] == 4
        assert counters["sweep.cache_misses"] == 4
        assert counters["sweep.cells_done"] == 4

    def test_echo_lines(self):
        lines = []
        run(Sweep("methods", base=BASE, params=PARAMS), echo=lines.append)
        assert lines == ["cell 1/1 [(base)] done"]

    def test_manifest_round_trips_through_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run(tiny_sweep(), cache=cache)
        manifest = json.loads(json.dumps(result.manifest()))
        assert manifest["task"] == "methods"
        assert manifest["cell_count"] == 4
        assert manifest["cache_misses"] == 4
        assert len(manifest["cells"]) == 4
        cell = manifest["cells"][0]
        assert set(cell) == {
            "index",
            "coords",
            "config_hash",
            "key",
            "cached",
            "provenance",
            "wall_s",
            "attempts",
            "result",
        }
        assert cell["provenance"] == "computed"
        assert cell["attempts"] == 1
        assert cell["wall_s"] >= 0.0
        assert manifest["wall_s"] >= 0.0
