"""SimConfig: round-trip serialization, functional updates, content hash."""

import os
import subprocess
import sys

import pytest

from repro.exp import ALLOCATOR_KINDS, SimConfig, WorkloadConfig
from repro.ftl import FtlConfig, WearLevelingConfig
from repro.nand import PAPER_GEOMETRY


class TestValidation:
    def test_defaults_are_the_paper_testbed(self):
        config = SimConfig()
        assert config.seed == 2024
        assert config.chips == 4
        assert config.pool_blocks == 400
        assert config.geometry == PAPER_GEOMETRY
        assert config.allocator in ALLOCATOR_KINDS

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SimConfig(chips=1)
        with pytest.raises(ValueError):
            SimConfig(pool_blocks=0)
        with pytest.raises(ValueError):
            SimConfig(pe_cycles=-1)
        with pytest.raises(ValueError):
            SimConfig(allocator="greedy")
        with pytest.raises(ValueError):
            WorkloadConfig(kind="trace")  # no trace_path

    def test_frozen(self):
        with pytest.raises(Exception):
            SimConfig().seed = 1  # type: ignore[misc]


class TestRoundTrip:
    def test_testbed_round_trip(self):
        config = SimConfig.testbed(seed=7, chips=3, pool_blocks=25, pe_cycles=1500)
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_device_round_trip(self):
        config = SimConfig.device(seed=5, chips=3, blocks=20, allocator="random")
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_round_trip_with_explicit_ftl(self):
        ftl = FtlConfig(
            usable_blocks_per_plane=16,
            wear_leveling=WearLevelingConfig(),
        )
        config = SimConfig.device(blocks=20).with_(ftl=ftl)
        restored = SimConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.ftl is not None
        assert restored.ftl.wear_leveling is not None
        assert restored.ftl.wear_leveling.pe_gap_threshold == 64

    def test_round_trip_through_json_text(self):
        import json

        config = SimConfig.device(seed=3, trace_path="traces/a.csv")
        assert SimConfig.from_dict(json.loads(config.canonical_json())) == config

    def test_from_dict_rejects_unknown_fields(self):
        data = SimConfig().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            SimConfig.from_dict(data)


class TestFunctionalUpdates:
    def test_with_replaces_top_level(self):
        config = SimConfig().with_(seed=9, pe_cycles=100)
        assert (config.seed, config.pe_cycles) == (9, 100)

    def test_with_path_nested(self):
        config = SimConfig().with_path("variation.sigma_wl_noise_us", 3.5)
        assert config.variation.sigma_wl_noise_us == 3.5
        assert SimConfig().variation.sigma_wl_noise_us != 3.5

    def test_with_path_coerces_int_to_float(self):
        config = SimConfig().with_path("workload.interarrival_us", 500)
        assert config.workload.interarrival_us == 500.0
        assert isinstance(config.workload.interarrival_us, float)

    def test_with_path_unknown_field_raises(self):
        with pytest.raises(ValueError):
            SimConfig().with_path("variation.nope", 1)

    def test_has_path(self):
        config = SimConfig()
        assert config.has_path("seed")
        assert config.has_path("workload.interarrival_us")
        assert config.has_path("variation.sigma_wl_noise_us")
        assert not config.has_path("methods")
        assert not config.has_path("workload.nope")


class TestContentHash:
    def test_equal_configs_equal_hash(self):
        a = SimConfig.testbed(seed=3, chips=2, pool_blocks=10)
        b = SimConfig.testbed(seed=3, chips=2, pool_blocks=10)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_any_field_change_changes_hash(self):
        base = SimConfig()
        variants = [
            base.with_(seed=1),
            base.with_(pe_cycles=100),
            base.with_(allocator="random"),
            base.with_path("variation.sigma_wl_noise_us", 9.0),
            base.with_path("workload.overwrite_fraction", 0.1),
        ]
        hashes = {c.content_hash() for c in variants} | {base.content_hash()}
        assert len(hashes) == len(variants) + 1

    def test_hash_survives_round_trip(self):
        config = SimConfig.device(seed=11, blocks=30)
        assert SimConfig.from_dict(config.to_dict()).content_hash() == config.content_hash()

    def test_hash_stable_across_process_boundary(self):
        """The content address must be identical in a fresh interpreter."""
        config = SimConfig.testbed(seed=3, chips=2, pool_blocks=10)
        code = (
            "from repro.exp import SimConfig;"
            "print(SimConfig.testbed(seed=3, chips=2, pool_blocks=10).content_hash())"
        )
        env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="random")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert proc.stdout.strip() == config.content_hash()

    def test_hash_stable_after_pickle(self):
        import pickle

        config = SimConfig.device(seed=8, blocks=24)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.content_hash() == config.content_hash()
