"""FaultPlan / FaultEvent value-object tests: validation, round-trips, specs."""

import json
import pickle

import pytest

from repro.faults import (
    KIND_ERASE_FAIL,
    KIND_PLANE_OUTAGE,
    KIND_PROGRAM_FAIL,
    KIND_READ_STORM,
    FaultEvent,
    FaultPlan,
)


class TestFaultEventValidation:
    def test_minimal_event(self):
        event = FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=5)
        assert event.at_op == 5
        assert event.plane is None and event.block is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike", chip=0, at_op=1)

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError, match="at_op and/or at_time_us"):
            FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0)

    def test_negative_triggers_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_time_us=-0.5)
        with pytest.raises(ValueError):
            FaultEvent(kind=KIND_PROGRAM_FAIL, chip=-1, at_op=0)

    def test_read_storm_needs_duration_and_sane_multiplier(self):
        with pytest.raises(ValueError, match="duration_ops"):
            FaultEvent(kind=KIND_READ_STORM, chip=0, at_op=0)
        with pytest.raises(ValueError, match="rber_multiplier"):
            FaultEvent(
                kind=KIND_READ_STORM, chip=0, at_op=0, duration_ops=4,
                rber_multiplier=0.5,
            )
        event = FaultEvent(
            kind=KIND_READ_STORM, chip=0, at_op=0, duration_ops=4,
            rber_multiplier=50.0,
        )
        assert event.duration_ops == 4

    def test_plane_outage_needs_explicit_plane(self):
        with pytest.raises(ValueError, match="explicit plane"):
            FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, at_op=3)
        event = FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, plane=1, at_op=3)
        assert event.plane == 1

    def test_round_trip(self):
        event = FaultEvent(
            kind=KIND_ERASE_FAIL, chip=2, plane=0, block=7, at_op=11,
            at_time_us=900.0,
        )
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultEvent fields"):
            FaultEvent.from_dict(
                {"kind": KIND_PROGRAM_FAIL, "chip": 0, "at_op": 1, "color": "red"}
            )


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan.none().is_null
        assert FaultPlan().is_null
        assert not FaultPlan(program_fail_prob=0.01).is_null
        assert not FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=1)]
        ).is_null

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(program_fail_prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(erase_fail_prob=-0.1)

    def test_event_dicts_are_coerced(self):
        plan = FaultPlan(
            events=[{"kind": KIND_PROGRAM_FAIL, "chip": 1, "at_op": 3}]
        )
        assert isinstance(plan.events[0], FaultEvent)
        assert plan.events[0].chip == 1

    def test_events_for_chip(self):
        plan = FaultPlan(
            events=[
                FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=1),
                FaultEvent(kind=KIND_ERASE_FAIL, chip=1, at_op=2),
                FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=9),
            ]
        )
        assert len(plan.events_for_chip(0)) == 2
        assert len(plan.events_for_chip(1)) == 1
        assert plan.events_for_chip(7) == ()

    def test_round_trip_and_pickle(self):
        plan = FaultPlan(
            program_fail_prob=0.01,
            erase_fail_prob=0.002,
            events=[FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, plane=0, at_op=4)],
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert pickle.loads(pickle.dumps(plan)) == plan
        # canonical dicts survive a JSON round-trip too
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"program_fail_prob": 0.1, "meteor": True})


class TestFromSpec:
    def test_csv_spec(self):
        plan = FaultPlan.from_spec("program=0.01,erase=0.005")
        assert plan.program_fail_prob == pytest.approx(0.01)
        assert plan.erase_fail_prob == pytest.approx(0.005)

    def test_single_key(self):
        plan = FaultPlan.from_spec("program=0.25")
        assert plan.program_fail_prob == pytest.approx(0.25)
        assert not plan.erase_fail_prob

    def test_file_spec(self, tmp_path):
        doc = {
            "program_fail_prob": 0.1,
            "erase_fail_prob": 0.0,
            "events": [
                {"kind": KIND_READ_STORM, "chip": 0, "at_op": 2,
                 "duration_ops": 8, "rber_multiplier": 30.0}
            ],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        plan = FaultPlan.from_spec(f"@{path}")
        assert plan.program_fail_prob == pytest.approx(0.1)
        assert plan.events[0].kind == KIND_READ_STORM

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("program")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("gamma=0.1")
