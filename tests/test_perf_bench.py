"""repro bench: suite document schema, round-trip, CLI regression gate."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    QUICK,
    SCHEMA_VERSION,
    SuiteScale,
    env_fingerprint,
    git_sha,
    render_suite,
    run_suite,
    validate_bench_doc,
)
from repro.perf.schema import metric

#: a shrunken quick suite so one run_suite call stays test-fast.
TINY = SuiteScale(
    name="quick",
    repetitions=1,
    testbed_blocks=16,
    testbed_chips=2,
    testbed_requests=80,
    scaled_blocks=20,
    scaled_chips=2,
    scaled_requests=120,
    signature_pool_blocks=6,
    signature_passes=2,
    sweep_pool_blocks=6,
    sweep_seeds=1,
)


@pytest.fixture(scope="module")
def suite_doc():
    return run_suite(TINY, repetitions=1)


class TestSuiteDocument:
    def test_schema_valid_and_json_round_trips(self, suite_doc):
        assert validate_bench_doc(suite_doc) == []
        recovered = json.loads(json.dumps(suite_doc, sort_keys=True))
        assert validate_bench_doc(recovered) == []
        assert recovered == suite_doc

    def test_pinned_metric_set(self, suite_doc):
        names = set(suite_doc["metrics"])
        assert {
            "replay_testbed_ops_per_s",
            "replay_testbed_wall_s",
            "replay_scaled_ops_per_s",
            "replay_scaled_wall_s",
            "signature_kernel_sigs_per_s",
            "sweep_cold_wall_s",
            "sweep_warm_wall_s",
            "sweep_warm_speedup",
            "replay_share_nand",
            "replay_share_ftl",
        } <= names
        assert len(names) >= 6

    def test_layer_shares_recorded(self, suite_doc):
        shares = suite_doc["layers"]["replay_testbed"]
        assert {"ftl", "nand"} <= set(shares)
        assert abs(sum(shares.values()) - 1.0) < 1e-6

    def test_env_and_sha_recorded(self, suite_doc):
        assert suite_doc["git_sha"] == git_sha()
        assert suite_doc["env"] == env_fingerprint()
        assert suite_doc["schema_version"] == SCHEMA_VERSION

    def test_render_lists_every_metric(self, suite_doc):
        text = render_suite(suite_doc)
        for name in suite_doc["metrics"]:
            assert name in text

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            run_suite(QUICK, repetitions=0)


class TestValidator:
    def _valid(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": "quick",
            "repetitions": 1,
            "git_sha": "abc1234",
            "env": dict(env_fingerprint()),
            "metrics": {"m": metric(1.0, "u", "higher", 10.0)},
            "layers": {"replay_testbed": {"ftl": 0.5, "nand": 0.5}},
            "benches": {},
        }

    def test_valid_document_has_no_errors(self):
        assert validate_bench_doc(self._valid()) == []

    def test_non_object_rejected(self):
        assert validate_bench_doc([1, 2]) == ["document is not a JSON object"]

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(suite="huge"), "suite"),
            (lambda d: d.update(repetitions=0), "repetitions"),
            (lambda d: d.update(git_sha=""), "git_sha"),
            (lambda d: d["env"].pop("python"), "env.python"),
            (lambda d: d.update(metrics={}), "metrics"),
            (
                lambda d: d["metrics"].update(m=metric(float("nan"), "u", "higher", 1)),
                "finite",
            ),
            (
                lambda d: d["metrics"]["m"].update(direction="sideways"),
                "direction",
            ),
            (
                lambda d: d["metrics"]["m"].update(tolerance_pct=-1),
                "tolerance_pct",
            ),
            (lambda d: d["metrics"]["m"].pop("unit"), "unit"),
            (
                lambda d: d["layers"].update(replay_testbed={"ftl": 1.5}),
                "share",
            ),
        ],
    )
    def test_each_violation_reported(self, mutate, fragment):
        doc = self._valid()
        mutate(doc)
        errors = validate_bench_doc(doc)
        assert errors
        assert any(fragment in error for error in errors)


class TestBenchCli:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_against_compare_self_passes(self, tmp_path, capsys, suite_doc):
        path = self._write(tmp_path / "bench.json", suite_doc)
        assert main(["bench", "--against", path, "--compare", path]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_regression_exits_one(self, tmp_path, capsys, suite_doc):
        worse = json.loads(json.dumps(suite_doc))
        entry = worse["metrics"]["replay_testbed_ops_per_s"]
        entry["value"] = entry["value"] / 10.0
        current = self._write(tmp_path / "worse.json", worse)
        baseline = self._write(tmp_path / "base.json", suite_doc)
        assert main(["bench", "--against", current, "--compare", baseline]) == 1
        assert "REGRESSED" in capsys.readouterr().out.upper()

    def test_stale_baseline_exits_one(self, tmp_path, capsys, suite_doc):
        stale = json.loads(json.dumps(suite_doc))
        stale["schema_version"] = SCHEMA_VERSION + 1
        current = self._write(tmp_path / "cur.json", suite_doc)
        baseline = self._write(tmp_path / "stale.json", stale)
        assert main(["bench", "--against", current, "--compare", baseline]) == 1
        assert "schema_version" in capsys.readouterr().out

    def test_tolerance_scale_env_var(self, tmp_path, monkeypatch, suite_doc):
        worse = json.loads(json.dumps(suite_doc))
        entry = worse["metrics"]["replay_testbed_ops_per_s"]
        entry["value"] = entry["value"] * 0.5  # 50% drop vs 40% band
        current = self._write(tmp_path / "worse.json", worse)
        baseline = self._write(tmp_path / "base.json", suite_doc)
        assert main(["bench", "--against", current, "--compare", baseline]) == 1
        monkeypatch.setenv("REPRO_BENCH_TOLERANCE_SCALE", "4")
        assert main(["bench", "--against", current, "--compare", baseline]) == 0

    def test_bad_tolerance_scale_exits_two(self, tmp_path, capsys, suite_doc):
        path = self._write(tmp_path / "bench.json", suite_doc)
        assert (
            main(
                [
                    "bench",
                    "--against", path,
                    "--compare", path,
                    "--tolerance-scale", "-1",
                ]
            )
            == 2
        )

    def test_unreadable_inputs_exit_two(self, tmp_path, capsys, suite_doc):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--against", missing]) == 2
        good = self._write(tmp_path / "bench.json", suite_doc)
        assert main(["bench", "--against", good, "--compare", missing]) == 2

    def test_quick_and_full_flags_exclusive(self):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--full"])

    def test_baseline_file_compares_clean_against_itself(self, repo_baseline):
        assert main(["bench", "--against", repo_baseline, "--compare", repo_baseline]) == 0


@pytest.fixture
def repo_baseline():
    """The committed baseline document; the gate CI compares against."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
    assert path.exists(), "BENCH_baseline.json must be committed at the repo root"
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert validate_bench_doc(doc) == []
    assert len(doc["metrics"]) >= 6
    return str(path)
