"""Flash package / testbed construction tests."""

import pytest

from repro.nand import (
    PAPER_GEOMETRY,
    PAPER_TESTBED_SPECS,
    SMALL_GEOMETRY,
    PackageSpec,
    VariationModel,
    VariationParams,
    build_package,
    build_paper_testbed,
)
from repro.nand import testbed_chips as flatten_testbed


@pytest.fixture(scope="module")
def model():
    return VariationModel(SMALL_GEOMETRY, VariationParams(), seed=2)


class TestPackageSpec:
    def test_valid_die_counts(self):
        for dies in (1, 2, 4, 8):
            PackageSpec("X", channel=0, dies=dies)

    def test_invalid_die_count(self):
        with pytest.raises(ValueError):
            PackageSpec("X", channel=0, dies=3)


class TestBuildPackage:
    def test_ddp(self, model):
        package = build_package(model, PackageSpec("DDP", 0, 2), first_chip_id=10)
        assert len(package) == 2
        assert package.die(0).chip_id == 10
        assert package.die(1).chip_id == 11

    def test_ce_out_of_range(self, model):
        package = build_package(model, PackageSpec("DDP", 0, 2), 0)
        with pytest.raises(ValueError):
            package.die(2)

    def test_dies_list_copy(self, model):
        package = build_package(model, PackageSpec("QDP", 0, 4), 0)
        dies = package.dies
        dies.clear()
        assert len(package) == 4


class TestPaperTestbed:
    def test_twenty_four_dies(self):
        model = VariationModel(PAPER_GEOMETRY, VariationParams(), seed=1)
        packages = build_paper_testbed(model)
        chips = flatten_testbed(packages)
        assert len(packages) == len(PAPER_TESTBED_SPECS) == 8
        assert len(chips) == 24  # 4 DDP x2 + 4 QDP x4 (Table IV)
        assert len({chip.chip_id for chip in chips}) == 24

    def test_channels_match_table_iv(self):
        assert {spec.channel for spec in PAPER_TESTBED_SPECS} == {0, 2}
