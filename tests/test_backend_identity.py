"""End-to-end backend identity: ``--backend vector`` is byte-for-byte scalar.

The vector engine's acceptance bar is the strongest equivalence the repo can
state: the same pinned configs that fence the policy layer
(``tests/test_policy_identity.py``) must produce *identical* JSONL traces,
metric summaries, and config content hashes when replayed on the vector
backend.  The hex digests below are the same pre-policy pins — scalar and
vector must both land on them, so a drift in either backend fires here.

The untraced comparisons cover the bulk write path (no tracer, no
timelines), which takes different code than the traced event-emitting path;
the GC-heavy config forces collections mid-replay so flush/GC boundaries
are compared too.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.exp import SimConfig, Sweep, build_stack
from repro.exp import run as run_sweep
from repro.ftl import FtlConfig
from repro.kernels import VectorFtl, VectorSsd
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.workloads import Replayer

#: the test_policy_identity FENCE pins, which the vector backend must hit too
VECTOR_FENCE = {
    "plain": "835cedb88c2b2e5594cb171a23c01a63552113bf2e2f839785eaffe54a98d8e3",
}

PLAIN_CONFIG_HASH = "3a5f792a954439f5"


def _plain() -> SimConfig:
    return SimConfig.device(seed=7, chips=4, blocks=24, requests=600)


def _gc_heavy() -> SimConfig:
    return SimConfig.device(
        seed=3,
        chips=2,
        blocks=20,
        requests=1200,
        ftl=FtlConfig(
            usable_blocks_per_plane=16,
            overprovision_ratio=0.40,
            gc_low_watermark=2,
            gc_high_watermark=4,
        ),
    ).with_path("workload.overwrite_fraction", 2.0)


def _trace_digest(config: SimConfig, tmp_path: Path) -> str:
    tracer = Tracer()
    stack = build_stack(config, tracer=tracer)
    Replayer(stack.ssd).replay(stack.requests())
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, tracer.events)
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _replay_state(config: SimConfig) -> dict:
    """Everything observable after an untraced replay, exactly."""
    stack = build_stack(config)
    report = Replayer(stack.ssd).replay(stack.requests())
    ssd = stack.ssd
    ftl = ssd.ftl
    return {
        "summary": report.summary(),
        "latencies": report.latencies(),
        "last_finish": ssd.metrics.last_finish_us,
        "channels": {
            name: (ch.busy_until_us, ch.busy_time_us)
            for name, ch in ssd.channels.items()
        },
        "dies": {
            lane: (die.busy_until_us, die.busy_time_us)
            for lane, die in ssd.dies.items()
        },
        "ftl": ftl.metrics.summary(),
        "map": sorted(
            (lpn, loc.superblock_id, loc.slot)
            for lpn, loc in ftl.mapper.iter_mapped()
        ),
    }


def test_backend_field_does_not_fork_the_config_hash():
    config = _plain()
    assert config.content_hash() == PLAIN_CONFIG_HASH
    assert config.with_(backend="vector").content_hash() == PLAIN_CONFIG_HASH


def test_vector_stack_actually_swaps_the_engine(monkeypatch):
    # a default-scalar config must build the scalar engine even when the
    # suite itself runs under REPRO_BACKEND=vector (the CI vector job)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    stack = build_stack(_plain().with_(backend="vector"))
    assert isinstance(stack.ssd, VectorSsd)
    assert isinstance(stack.ftl, VectorFtl)
    scalar = build_stack(_plain())
    assert not isinstance(scalar.ssd, VectorSsd)


def test_env_var_upgrades_the_default_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "vector")
    stack = build_stack(_plain())
    assert isinstance(stack.ssd, VectorSsd)
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError):
        build_stack(_plain()).ssd


@pytest.mark.parametrize("name", sorted(VECTOR_FENCE))
def test_vector_backend_reproduces_the_pinned_trace(name, tmp_path):
    config = _plain().with_(backend="vector")
    assert _trace_digest(config, tmp_path) == VECTOR_FENCE[name]


@pytest.mark.parametrize("factory", [_plain, _gc_heavy], ids=["plain", "gc_heavy"])
def test_untraced_replay_state_identical_across_backends(factory):
    scalar = _replay_state(factory())
    vector = _replay_state(factory().with_(backend="vector"))
    # exact equality — floats included; json round-trip catches NaN drift
    assert json.dumps(scalar, sort_keys=True) == json.dumps(vector, sort_keys=True)


def test_six_cell_sweep_identical_across_backends():
    def cells_of(backend: str):
        base = SimConfig.device(seed=5, chips=2, blocks=16, requests=300)
        if backend != "scalar":
            base = base.with_(backend=backend)
        sweep = Sweep("replay", base=base).over("seed", list(range(6)))
        result = run_sweep(sweep, workers=1, cache=None)
        assert not result.failures
        return [
            (item.cell.config_hash, json.dumps(item.result, sort_keys=True))
            for item in result.cells
        ]

    scalar_cells = cells_of("scalar")
    vector_cells = cells_of("vector")
    assert len(scalar_cells) == 6
    for (scalar_hash, scalar_doc), (vector_hash, vector_doc) in zip(
        scalar_cells, vector_cells
    ):
        # same cache key (backend is compare=False) and same bytes out
        assert scalar_hash == vector_hash
        assert scalar_doc == vector_doc
