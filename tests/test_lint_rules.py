"""Per-rule unit tests: every rule fires on its positive fixture and stays
quiet on the negative one, and suppression comments work at line and file
scope."""

from __future__ import annotations

import textwrap
from typing import List

import pytest

from repro.lint import Finding, all_rules, get_rule, lint_source
from repro.lint.engine import module_name_for
from repro.lint.layers import is_allowed_import, layer_of
from repro.lint.suppressions import parse_suppressions


def codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


def run(source: str, module: str = "repro.ftl.ftl") -> List[Finding]:
    return lint_source(textwrap.dedent(source), path="fixture.py", module=module)


# ---------------------------------------------------------------- registry


def test_registry_has_all_rule_families() -> None:
    registered = {rule.code for rule in all_rules()}
    assert {
        "RNG001",
        "RNG002",
        "RNG003",
        "RNG004",
        "RNG005",
        "DET001",
        "DET002",
        "LAY001",
        "NUM001",
        "NUM002",
        "UNIT001",
        "UNIT002",
        "UNIT003",
        "OBS001",
    } <= registered


def test_get_rule_unknown_code_raises() -> None:
    with pytest.raises(KeyError):
        get_rule("NOPE999")


# ---------------------------------------------------------------- RNG001


def test_rng001_flags_stdlib_random_import() -> None:
    assert "RNG001" in codes(run("import random\n"))
    assert "RNG001" in codes(run("from random import shuffle\n"))


def test_rng001_clean_on_numpy_and_rng_home() -> None:
    assert "RNG001" not in codes(run("import numpy as np\n"))
    # the RNG home module itself is exempt
    assert "RNG001" not in codes(
        lint_source("import random\n", module="repro.utils.rng")
    )


# ---------------------------------------------------------------- RNG002


def test_rng002_flags_legacy_global_numpy_api() -> None:
    assert "RNG002" in codes(run("import numpy as np\nnp.random.seed(3)\n"))
    assert "RNG002" in codes(run("import numpy as np\nx = np.random.rand(4)\n"))


def test_rng002_allows_default_rng_and_generator_classes() -> None:
    clean = """
        import numpy as np
        from repro.utils.rng import derive_seed
        rng = np.random.default_rng(derive_seed(1, "x"))
        gen = np.random.Generator
    """
    assert "RNG002" not in codes(run(clean))


# ---------------------------------------------------------------- RNG003


def test_rng003_flags_underived_seeds() -> None:
    assert "RNG003" in codes(run("import numpy as np\nr = np.random.default_rng(7)\n"))
    assert "RNG003" in codes(run("import numpy as np\nr = np.random.default_rng()\n"))
    assert "RNG003" in codes(
        run("from numpy.random import default_rng\nr = default_rng((1, 2))\n")
    )


def test_rng003_allows_derive_seed() -> None:
    clean = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "chip", 3))
    """
    assert "RNG003" not in codes(run(clean))


# ---------------------------------------------------------------- RNG004


def test_rng004_flags_unlabeled_stream_in_faults_module() -> None:
    source = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "chip", 3))
    """
    findings = run(source, module="repro.faults.injector")
    assert "RNG004" in codes(findings)


def test_rng004_allows_faults_labeled_stream() -> None:
    clean = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "faults", 3, "program"))
    """
    assert "RNG004" not in codes(run(clean, module="repro.faults.injector"))


def test_rng004_scoped_to_faults_modules_only() -> None:
    # the same unlabeled stream outside repro.faults is RNG004-clean
    source = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "chip", 3))
    """
    assert "RNG004" not in codes(run(source, module="repro.ftl.ftl"))


# ---------------------------------------------------------------- RNG005


def test_rng005_flags_unlabeled_stream_in_policy_module() -> None:
    source = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "bandit"))
    """
    findings = run(source, module="repro.policy.learned")
    assert "RNG005" in codes(findings)


def test_rng005_allows_policy_labeled_stream() -> None:
    clean = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "policy", "allocation.bandit"))
    """
    assert "RNG005" not in codes(run(clean, module="repro.policy.learned"))


def test_rng005_scoped_to_policy_modules_only() -> None:
    # the same unlabeled stream outside repro.policy is RNG005-clean
    source = """
        import numpy as np
        from repro.utils.rng import derive_seed
        r = np.random.default_rng(derive_seed(7, "chip", 3))
    """
    assert "RNG005" not in codes(run(source, module="repro.ftl.ftl"))


# ---------------------------------------------------------------- DET001


def test_det001_flags_wall_clock_in_simulator() -> None:
    assert "DET001" in codes(run("import time\nt = time.time()\n"))
    assert "DET001" in codes(
        run("from datetime import datetime\nd = datetime.now()\n")
    )
    assert "DET001" in codes(run("import os\nb = os.urandom(8)\n"))
    assert "DET001" in codes(run("from time import time\n"))


def test_det001_scoped_to_repro_package() -> None:
    # tools/ and benchmarks/ may measure wall time.
    assert "DET001" not in codes(
        lint_source("import time\nt = time.time()\n", module="tools.report")
    )


def test_det001_perf_carve_out_is_perf_counter_only() -> None:
    # repro.perf is the sanctioned wall-clock layer: perf_counter[_ns]
    # only, in both dotted and from-import spellings.
    assert "DET001" not in codes(
        run("from time import perf_counter\nt = perf_counter()\n",
            module="repro.perf.profiler")
    )
    assert "DET001" not in codes(
        run("import time\nt = time.perf_counter_ns()\n",
            module="repro.perf.bench")
    )
    # everything else stays banned even inside repro.perf
    assert "DET001" in codes(
        run("import time\nt = time.time()\n", module="repro.perf.profiler")
    )
    assert "DET001" in codes(
        run("from datetime import datetime\nd = datetime.now()\n",
            module="repro.perf.bench")
    )
    # and perf_counter outside repro.perf is still a finding
    assert "DET001" in codes(
        run("from time import perf_counter\n", module="repro.ftl.ftl")
    )


# ---------------------------------------------------------------- DET002


def test_det002_flags_bare_set_iteration() -> None:
    assert "DET002" in codes(run("for x in {1, 2, 3}:\n    pass\n"))
    assert "DET002" in codes(run("vals = [x for x in set(items)]\n"))


def test_det002_allows_sorted_sets() -> None:
    assert "DET002" not in codes(run("for x in sorted({1, 2, 3}):\n    pass\n"))
    assert "DET002" not in codes(run("for x in sorted(set(items)):\n    pass\n"))


# ---------------------------------------------------------------- LAY001


def test_lay001_flags_inverted_edge() -> None:
    findings = lint_source(
        "from repro.ftl.ftl import Ftl\n", module="repro.nand.chip"
    )
    assert "LAY001" in codes(findings)


def test_lay001_allows_downward_edge_and_exceptions() -> None:
    assert "LAY001" not in codes(
        lint_source("from repro.nand.chip import FlashChip\n", module="repro.ftl.ftl")
    )
    # the reviewed data-model exception
    assert "LAY001" not in codes(
        lint_source(
            "from repro.workloads.model import Request\n", module="repro.ssd.device"
        )
    )
    # but the rest of workloads stays off-limits to ssd
    assert "LAY001" in codes(
        lint_source(
            "from repro.workloads.replay import Replayer\n", module="repro.ssd.device"
        )
    )


def test_lay001_type_checking_imports_exempt() -> None:
    source = """
        from typing import TYPE_CHECKING
        if TYPE_CHECKING:
            from repro.ssd.device import Ssd
    """
    assert "LAY001" not in codes(
        lint_source(textwrap.dedent(source), module="repro.workloads.replay")
    )


def test_layer_map_helpers() -> None:
    assert layer_of("repro.ftl.ftl") == "ftl"
    assert layer_of("repro.cli") == ""
    assert is_allowed_import("repro.cli", "repro.ssd.device")
    assert not is_allowed_import("repro.utils.stats", "repro.nand.chip")


# ---------------------------------------------------------------- NUM001


def test_num001_flags_float_literal_equality() -> None:
    assert "NUM001" in codes(run("ok = latency == 1.5\n"))
    assert "NUM001" in codes(run("ok = 0.0 != latency\n"))


def test_num001_allows_int_compare_and_inequalities() -> None:
    assert "NUM001" not in codes(run("ok = count == 0\n"))
    assert "NUM001" not in codes(run("ok = latency < 1.5\n"))


# ---------------------------------------------------------------- NUM002


def test_num002_flags_mutable_defaults() -> None:
    assert "NUM002" in codes(run("def f(items=[]):\n    return items\n"))
    assert "NUM002" in codes(run("def f(*, cache={}):\n    return cache\n"))


def test_num002_allows_none_and_tuples() -> None:
    assert "NUM002" not in codes(run("def f(items=None, shape=(1, 2)):\n    pass\n"))


# ---------------------------------------------------------------- UNIT001


def test_unit001_flags_foreign_unit_suffixes() -> None:
    assert "UNIT001" in codes(run("configure(timeout_ms=5)\n"))
    assert "UNIT001" in codes(run("def f(delay_ns: int) -> None:\n    pass\n"))


def test_unit001_allows_us_suffix() -> None:
    assert "UNIT001" not in codes(run("configure(latency_us=5.0)\n"))


# ---------------------------------------------------------------- UNIT002


def test_unit002_flags_magic_conversion() -> None:
    assert "UNIT002" in codes(run("ms = latency_us / 1000.0\n"))
    assert "UNIT002" in codes(run("total_us = 1000 * delay_ms\n"))


def test_unit002_allows_named_constants() -> None:
    clean = """
        from repro.utils.units import US_PER_MS
        ms = latency_us / US_PER_MS
    """
    assert "UNIT002" not in codes(run(clean))
    # a bare numeric context is not a unit conversion
    assert "UNIT002" not in codes(run("scaled = count * 1000\n"))


# ---------------------------------------------------------------- UNIT003


def test_unit003_flags_large_latency_literal() -> None:
    assert "UNIT003" in codes(run("wait(delay_us=2_000_000)\n"))


def test_unit003_allows_small_or_named_values() -> None:
    assert "UNIT003" not in codes(run("wait(delay_us=8000.0)\n"))
    assert "UNIT003" not in codes(run("wait(delay_us=TBERS_US)\n"))


# ------------------------------------------------------------ suppressions


def test_line_suppression_silences_only_that_line() -> None:
    source = (
        "import numpy as np\n"
        "a = np.random.default_rng(1)  # reprolint: disable=RNG003\n"
        "b = np.random.default_rng(2)\n"
    )
    findings = lint_source(source, module="repro.ftl.ftl")
    assert codes(findings).count("RNG003") == 1
    assert findings[0].line == 3


def test_file_suppression_silences_whole_file() -> None:
    source = (
        "# reprolint: disable-file=RNG003\n"
        "import numpy as np\n"
        "a = np.random.default_rng(1)\n"
        "b = np.random.default_rng(2)\n"
    )
    assert "RNG003" not in codes(lint_source(source, module="repro.ftl.ftl"))


def test_suppression_is_code_specific() -> None:
    source = "import random  # reprolint: disable=DET001\n"
    assert "RNG001" in codes(lint_source(source, module="repro.ftl.ftl"))


def test_parse_suppressions_multiple_codes() -> None:
    index = parse_suppressions("x = 1  # reprolint: disable=RNG001, NUM001\n")
    assert index.line_codes[1] == frozenset({"RNG001", "NUM001"})


# ---------------------------------------------------------------- OBS001


def test_obs001_flags_clock_modules_in_obs() -> None:
    assert "OBS001" in codes(run("import time\n", module="repro.obs.tracer"))
    assert "OBS001" in codes(
        run("from datetime import datetime\n", module="repro.obs.export")
    )
    assert "OBS001" in codes(
        run("stamp = time.monotonic\n", module="repro.obs.tracer")
    )
    assert "OBS001" in codes(
        run(
            """
            import importlib
            clock = importlib.import_module("time")
            """,
            module="repro.obs.registry",
        )
    )
    assert "OBS001" in codes(
        run('clock = __import__("datetime")\n', module="repro.obs.tracer")
    )


def test_obs001_scoped_to_obs_package() -> None:
    # Outside repro.obs the stricter import ban does not apply (DET001
    # still polices wall-clock *calls* simulator-wide).
    assert "OBS001" not in codes(run("import time\n", module="repro.ftl.ftl"))
    # Benign imports inside repro.obs stay clean.
    assert "OBS001" not in codes(
        run("import json\nfrom pathlib import Path\n", module="repro.obs.export")
    )


def test_obs001_perf_carve_out() -> None:
    # repro.perf is in OBS001 scope but may name the two sanctioned
    # clock entry points — nothing else.
    assert "OBS001" not in codes(
        run("from time import perf_counter\n", module="repro.perf.profiler")
    )
    assert "OBS001" not in codes(
        run("from time import perf_counter, perf_counter_ns\n",
            module="repro.perf.profiler")
    )
    # wholesale module import is still a finding even in perf
    assert "OBS001" in codes(run("import time\n", module="repro.perf.bench"))
    assert "OBS001" in codes(
        run("from time import perf_counter, monotonic\n",
            module="repro.perf.profiler")
    )
    assert "OBS001" in codes(
        run("from datetime import datetime\n", module="repro.perf.bench")
    )
    # but obs proper gets no such allowance
    assert "OBS001" in codes(
        run("from time import perf_counter\n", module="repro.obs.tracer")
    )


# ---------------------------------------------------------------- engine


def test_module_name_for_src_layout(tmp_path) -> None:
    from pathlib import Path

    assert (
        module_name_for(Path("src/repro/ftl/ftl.py")) == "repro.ftl.ftl"
    )
    assert module_name_for(Path("src/repro/ftl/__init__.py")) == "repro.ftl"
    assert (
        module_name_for(Path("benchmarks/bench_x.py"), root=Path("."))
        == "benchmarks.bench_x"
    )


def test_syntax_error_reported_as_parse_finding() -> None:
    findings = lint_source("def broken(:\n", module="repro.ftl.ftl")
    assert codes(findings) == ["PARSE"]


def test_findings_sorted_and_json_roundtrip() -> None:
    import json

    from repro.lint import render_json, render_text

    source = "import random\nimport numpy as np\nr = np.random.default_rng(3)\n"
    findings = lint_source(source, module="repro.ftl.ftl")
    assert findings == sorted(findings)
    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings) >= 2
    assert payload["findings"][0]["code"]
    text = render_text(findings)
    assert "reprolint:" in text and "RNG001" in text
