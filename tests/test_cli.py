"""CLI tests (small scales so the suite stays fast)."""

import json
import textwrap

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.table == "all"
        assert args.blocks == 400
        args = build_parser().parse_args(["replay", "--allocator", "random"])
        assert args.allocator == "random"

    def test_invalid_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--table", "9"])


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "1,536" in out
        assert "99.22%" in out
        assert "52" in out

    def test_tables_small(self, capsys):
        assert main(["tables", "--table", "5", "--blocks", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "QSTR-MED(4)" in out

    def test_figures_small(self, capsys):
        assert main(["figures", "--figure", "6", "--blocks", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "extra PGM" in out

    def test_replay_synthetic(self, capsys):
        assert (
            main(
                [
                    "replay",
                    "--allocator",
                    "random",
                    "--blocks",
                    "32",
                    "--chips",
                    "3",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "allocator: random" in out
        assert "WRITE" in out

    def test_replay_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "t.csv"
        trace.write_text("# test\n0,W,0,1\n10,W,1,1\n20,R,0,1\n")
        assert (
            main(
                [
                    "replay",
                    "--trace",
                    str(trace),
                    "--blocks",
                    "20",
                    "--chips",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WRITE" in out


#: one seeded violation per rule family (file name -> (source, expected
#: code)), written as files under src/repro so the scoped rules apply.
VIOLATION_FIXTURES = {
    "rng.py": ("import numpy as np\nr = np.random.default_rng(7)\n", "RNG003"),
    "det.py": ("import time\nt = time.time()\n", "DET001"),
    "lay.py": ("from repro.ftl.ftl import Ftl\n", "LAY001"),
    "num.py": ("def f(items=[]):\n    return items\n", "NUM002"),
    "unit.py": ("def f(delay_ms: int) -> None:\n    pass\n", "UNIT001"),
}


def _seeded_tree(tmp_path, name, source):
    """A minimal src/repro/<pkg>/ tree holding one violating file."""
    pkg = {"lay.py": "nand"}.get(name, "ftl")
    target = tmp_path / "src" / "repro" / pkg
    target.mkdir(parents=True)
    path = target / name
    path.write_text(source)
    return path


class TestRunCommand:
    def test_run_writes_all_artifacts(self, capsys, tmp_path):
        chrome = tmp_path / "run.trace.json"
        jsonl = tmp_path / "run.trace.jsonl"
        summary = tmp_path / "run.summary.json"
        assert (
            main(
                [
                    "run",
                    "--blocks", "24",
                    "--chips", "3",
                    "--seed", "4",
                    "--requests", "150",
                    "--trace", str(chrome),
                    "--jsonl", str(jsonl),
                    "--summary", str(summary),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        out = captured.out
        assert "host_write_p99_us" in out
        assert "extra-latency attribution" in out
        assert "host perf:" in captured.err

        document = json.loads(chrome.read_text())
        rows = document["traceEvents"]
        assert rows
        timestamps = [row["ts"] for row in rows if row["ph"] != "M"]
        assert timestamps == sorted(timestamps)
        attributions = [row for row in rows if row["name"] == "mp_program"]
        assert attributions
        assert {"chip", "plane", "block"} <= set(
            attributions[0]["args"]["slowest"]
        )

        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)

        doc = json.loads(summary.read_text())
        assert doc["ftl"]["host_write_p99_us"] > 0
        assert any(key.endswith("_utilization") for key in doc["registry"])
        # host-side wall-clock telemetry (repro.perf Stopwatch)
        assert doc["perf"]["wall_s"] >= doc["perf"]["replay_wall_s"] >= 0.0
        assert doc["perf"]["ops_per_s"] > 0.0

    def test_obs_report_reads_back_jsonl(self, capsys, tmp_path):
        jsonl = tmp_path / "run.trace.jsonl"
        assert (
            main(
                [
                    "run",
                    "--blocks", "24",
                    "--chips", "3",
                    "--seed", "4",
                    "--requests", "120",
                    "--jsonl", str(jsonl),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "report", str(jsonl), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "spans (by category/name)" in out
        assert "mp_program" in out


class TestFaultFlags:
    def test_faulted_run_prints_fault_block_and_summary_keys(
        self, capsys, tmp_path
    ):
        summary = tmp_path / "s.json"
        assert (
            main(
                [
                    "run",
                    "--blocks", "32",
                    "--chips", "3",
                    "--seed", "7",
                    "--requests", "400",
                    "--faults", "program=0.006",
                    "--summary", str(summary),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "-- faults --" in out
        assert "sb_repairs" in out
        doc = json.loads(summary.read_text())
        assert doc["ftl"]["program_failures"] > 0
        assert doc["ftl"]["sb_repairs"] > 0

    def test_fault_free_run_has_no_fault_block(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--blocks", "24",
                    "--chips", "3",
                    "--seed", "4",
                    "--requests", "120",
                ]
            )
            == 0
        )
        assert "-- faults --" not in capsys.readouterr().out

    def test_repair_flag_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--repair", "eeny"])
        args = build_parser().parse_args(["run", "--repair", "random"])
        assert args.repair == "random"

    def test_bad_faults_spec_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--faults", "gamma=0.1"])
        assert excinfo.value.code == 2
        assert "bad --faults" in capsys.readouterr().err

    def test_unsurvivable_fault_schedule_exits_cleanly(self, capsys, tmp_path):
        # a plane outage on the single-plane device preset kills a whole
        # lane: the run must end with a capacity verdict, not a traceback
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "events": [
                        {
                            "kind": "plane_outage",
                            "chip": 0,
                            "plane": 0,
                            "at_op": 50,
                        }
                    ]
                }
            )
        )
        assert (
            main(
                [
                    "run",
                    "--blocks", "24",
                    "--chips", "3",
                    "--seed", "4",
                    "--requests", "300",
                    "--faults", f"@{plan}",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "out of space" in err
        assert "fault schedule" in err


class TestSweepCommand:
    SMALL = ["--blocks", "10", "--chips", "2", "--seed", "3"]

    def test_dry_run_prints_expanded_grid(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    *self.SMALL,
                    "--over", "seed=0,1,2",
                    "--over", "pe_cycles=0,1000",
                    "--dry-run",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "task: methods" in out
        assert "cells: 6" in out
        assert "seed=0 pe_cycles=1000" in out
        # every cell line carries its config content hash
        assert out.count("config=") == 6

    def test_bad_axis_spec_exits_two(self, capsys):
        assert main(["sweep", "--over", "seed", "--dry-run"]) == 2
        assert "bad --over" in capsys.readouterr().err

    def test_duplicate_axis_exits_two(self, capsys):
        assert main(["sweep", "--over", "seed=1", "--over", "seed=2", "--dry-run"]) == 2
        assert "already swept" in capsys.readouterr().err

    def test_run_twice_second_all_cache_hits(self, capsys, tmp_path):
        manifest = tmp_path / "manifest.json"
        argv = [
            "sweep",
            *self.SMALL,
            "--methods", "SEQUENTIAL",
            "--over", "seed=0,1",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 cells, 0 cache hits, 2 misses" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 cells, 2 cache hits, 0 misses" in second

        doc = json.loads(manifest.read_text())
        assert doc["cell_count"] == 2
        assert doc["cache_hits"] == 2
        assert doc["cache_misses"] == 0
        results = [cell["result"] for cell in doc["cells"]]
        assert all("SEQUENTIAL" in r["methods"] for r in results)

    def test_no_cache_mode(self, capsys, tmp_path):
        argv = [
            "sweep",
            *self.SMALL,
            "--methods", "SEQUENTIAL",
            "--cache-dir", "none",
        ]
        assert main(argv) == 0
        assert "1 cells, 0 cache hits, 1 misses" in capsys.readouterr().out

    def test_progress_mode_replaces_echo(self, capsys, tmp_path):
        manifest = tmp_path / "manifest.json"
        argv = [
            "sweep",
            *self.SMALL,
            "--methods", "SEQUENTIAL",
            "--over", "seed=0,1",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest),
            "--progress",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "progress 2/2 cells" in captured.err
        assert "sweep wall-clock:" in captured.err
        assert "cell 1/2" not in captured.err  # per-cell echo suppressed

        # manifest carries the per-cell wall-clock telemetry
        doc = json.loads(manifest.read_text())
        assert doc["wall_s"] >= 0.0
        for cell in doc["cells"]:
            assert cell["provenance"] == "computed"
            assert cell["wall_s"] >= 0.0
            assert cell["attempts"] == 1

        # warm rerun: cells come back as cache hits with lookup timing
        assert main(argv) == 0
        capsys.readouterr()
        doc = json.loads(manifest.read_text())
        assert all(cell["provenance"] == "cache" for cell in doc["cells"])


class TestLintCommand:
    def test_lint_clean_repo_exits_zero(self, capsys):
        assert main(["lint", "src", "benchmarks", "examples", "tools"]) == 0
        out = capsys.readouterr().out
        assert "reprolint: clean" in out

    def test_lint_default_paths_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "reprolint: clean" in capsys.readouterr().out

    @pytest.mark.parametrize("name", sorted(VIOLATION_FIXTURES))
    def test_lint_flags_each_rule_family(self, capsys, tmp_path, name):
        source, expected_code = VIOLATION_FIXTURES[name]
        path = _seeded_tree(tmp_path, name, source)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert expected_code in out
        assert name in out

    def test_lint_json_format(self, capsys, tmp_path):
        path = _seeded_tree(tmp_path, "rng.py", VIOLATION_FIXTURES["rng.py"][0])
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "RNG003"

    def test_lint_suppression_honored(self, capsys, tmp_path):
        source = textwrap.dedent(
            """\
            import numpy as np

            # Fixture: pinned stream for a test double.
            r = np.random.default_rng(7)  # reprolint: disable=RNG003
            """
        )
        path = _seeded_tree(tmp_path, "rng.py", source)
        assert main(["lint", str(path)]) == 0
        assert "reprolint: clean" in capsys.readouterr().out

    def test_lint_missing_paths_exit_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint"]) == 2
        assert "no lintable paths" in capsys.readouterr().err

    def test_lint_nonexistent_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err


_DEEP_VIOLATION = textwrap.dedent(
    """\
    import os


    def trace_names(root):
        out = []
        for name in os.listdir(root):
            out.append(name)
        return out
    """
)


class TestDeepLintCommand:
    def test_deep_repo_clean_with_empty_baseline(self, capsys):
        # The VEC001 grandfather entries were burned down when the signature
        # kernels were vectorized; the repo is now deep-clean outright.
        assert main(["lint", "--deep"]) == 0
        out = capsys.readouterr().out
        assert "reprolint: clean" in out
        assert "grandfathered" not in out

    def test_baseline_fully_burned_down(self):
        import json as _json
        from pathlib import Path

        baseline = _json.loads(
            (Path(__file__).parent.parent / "tools" / "reprolint_baseline.json")
            .read_text()
        )
        assert baseline["findings"] == {}

    def test_deep_flags_dataflow_finding(self, capsys, tmp_path):
        path = _seeded_tree(tmp_path, "manifest.py", _DEEP_VIOLATION)
        assert main(["lint", str(path), "--deep"]) == 1
        out = capsys.readouterr().out
        assert "DET011" in out

    def test_deep_sarif_output_validates(self, capsys, tmp_path):
        from repro.lint.sarif import validate_sarif

        path = _seeded_tree(tmp_path, "manifest.py", _DEEP_VIOLATION)
        assert main(["lint", str(path), "--deep", "--format", "sarif"]) == 1
        document = capsys.readouterr().out
        assert validate_sarif(document) == []
        parsed = json.loads(document)
        assert parsed["version"] == "2.1.0"
        assert any(
            result["ruleId"] == "DET011" for result in parsed["runs"][0]["results"]
        )

    def test_write_baseline_then_clean(self, capsys, tmp_path):
        path = _seeded_tree(tmp_path, "manifest.py", _DEEP_VIOLATION)
        baseline = tmp_path / "baseline.json"
        argv = ["lint", str(path), "--deep", "--baseline", str(baseline)]
        assert main(argv + ["--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "reprolint: clean" in out
        assert "grandfathered" in out

    def test_vector_report_stdout(self, capsys):
        assert main(["lint", "--vector-report"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["function_count"] >= 10
        assert doc["functions"][0]["score"] >= doc["functions"][-1]["score"]

    def test_vector_report_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "worklist.json"
        assert main(["lint", "--vector-report", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["function_count"] >= 10

    def test_changed_outside_git_exits_two(self, tmp_path, monkeypatch, capsys):
        _seeded_tree(tmp_path, "manifest.py", _DEEP_VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src", "--deep", "--changed"]) == 2
        assert "git checkout" in capsys.readouterr().err

    def test_changed_filters_to_dirty_files(self, tmp_path, monkeypatch, capsys):
        import subprocess

        path = _seeded_tree(tmp_path, "manifest.py", _DEEP_VIOLATION)
        env = {
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
        }
        for command in (
            ["git", "init", "-q"],
            ["git", "add", "-A"],
            ["git", "commit", "-q", "-m", "seed"],
        ):
            subprocess.run(command, cwd=tmp_path, check=True, env=env)
        monkeypatch.chdir(tmp_path)
        # the only violation is committed, so --changed filters it out
        assert main(["lint", "src", "--deep", "--changed"]) == 0
        capsys.readouterr()
        # a fresh (untracked) violating file is reported
        dirty = path.parent / "fresh.py"
        dirty.write_text(_DEEP_VIOLATION)
        assert main(["lint", "src", "--deep", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "manifest.py" not in out
