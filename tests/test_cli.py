"""CLI tests (small scales so the suite stays fast)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.table == "all"
        assert args.blocks == 400
        args = build_parser().parse_args(["replay", "--allocator", "random"])
        assert args.allocator == "random"

    def test_invalid_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--table", "9"])


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "1,536" in out
        assert "99.22%" in out
        assert "52" in out

    def test_tables_small(self, capsys):
        assert main(["tables", "--table", "5", "--blocks", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "QSTR-MED(4)" in out

    def test_figures_small(self, capsys):
        assert main(["figures", "--figure", "6", "--blocks", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "extra PGM" in out

    def test_replay_synthetic(self, capsys):
        assert (
            main(
                [
                    "replay",
                    "--allocator",
                    "random",
                    "--blocks",
                    "32",
                    "--chips",
                    "3",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "allocator: random" in out
        assert "WRITE" in out

    def test_replay_trace_file(self, capsys, tmp_path):
        trace = tmp_path / "t.csv"
        trace.write_text("# test\n0,W,0,1\n10,W,1,1\n20,R,0,1\n")
        assert (
            main(
                [
                    "replay",
                    "--trace",
                    str(trace),
                    "--blocks",
                    "20",
                    "--chips",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "WRITE" in out
