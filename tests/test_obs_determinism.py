"""End-to-end observability guarantees.

Two promises the tracing subsystem makes:

* determinism — two same-seed traced runs emit byte-identical JSONL logs
  and a valid, time-ordered Chrome trace;
* neutrality — attaching a tracer/registry never changes simulation
  results (no RNG draws, no reordering): traced and untraced runs produce
  identical FTL metrics.
"""

import json

import pytest

from repro.ftl import Ftl, FtlConfig
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    TraceSummary,
    Tracer,
    render_report,
    to_chrome,
    to_jsonl,
)
from repro.ssd import Ssd, TimingConfig
from repro.workloads import OpKind, Request


def run_workload(tracer=None, registry=None, seed=41):
    """A small fill + overwrite + read workload, GC-inducing and seeded."""
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=seed
    )
    chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(3)]
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=10,
            overprovision_ratio=0.3,
            gc_low_watermark=2,
            gc_high_watermark=3,
        ),
        tracer=tracer if tracer is not None else NULL_TRACER,
        registry=registry,
    )
    ftl.format()
    ssd = Ssd(ftl, TimingConfig(channels=2))
    t = 0.0
    pages = ftl.logical_pages
    for i in range(pages):
        ssd.submit(Request(time_us=t, op=OpKind.WRITE, lpn=i))
        t += 50.0
    for i in range(pages):  # overwrite: invalidations + GC traffic
        ssd.submit(Request(time_us=t, op=OpKind.WRITE, lpn=(i * 7) % pages))
        t += 50.0
    for i in range(0, pages, 3):
        ssd.submit(Request(time_us=t, op=OpKind.READ, lpn=i))
        t += 20.0
    return ssd


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        first, second = Tracer(), Tracer()
        run_workload(tracer=first)
        run_workload(tracer=second)
        assert len(first.events) > 100
        assert to_jsonl(first.events) == to_jsonl(second.events)

    def test_different_seed_differs(self):
        first, second = Tracer(), Tracer()
        run_workload(tracer=first, seed=41)
        run_workload(tracer=second, seed=42)
        assert to_jsonl(first.events) != to_jsonl(second.events)


class TestNeutrality:
    def test_tracing_never_changes_results(self):
        untraced = run_workload()
        traced = run_workload(tracer=Tracer(), registry=MetricsRegistry())
        assert untraced.ftl.metrics.summary() == traced.ftl.metrics.summary()
        assert untraced.utilization() == traced.utilization()
        assert (
            untraced.metrics.write_latency_us.summary()
            == traced.metrics.write_latency_us.summary()
        )


class TestChromeExport:
    def test_valid_and_time_ordered(self):
        tracer = Tracer()
        run_workload(tracer=tracer)
        document = json.loads(json.dumps(to_chrome(tracer.events)))
        rows = document["traceEvents"]
        assert rows, "empty Chrome trace"
        data_rows = [row for row in rows if row["ph"] != "M"]
        timestamps = [row["ts"] for row in data_rows]
        assert timestamps == sorted(timestamps)
        for row in data_rows:
            if row["ph"] == "X":
                assert row["dur"] >= 0.0
        # Every track got a thread_name metadata record.
        meta_tids = {row["tid"] for row in rows if row["ph"] == "M"}
        assert {row["tid"] for row in data_rows} <= meta_tids

    def test_attribution_names_slowest_member(self):
        tracer = Tracer()
        run_workload(tracer=tracer)
        attributions = [
            e for e in tracer.events if e.name == "mp_program" and e.ph == "i"
        ]
        assert attributions, "no MP attribution events recorded"
        for event in attributions:
            slowest = event.args["slowest"]
            assert {"chip", "plane", "block"} <= set(slowest)
            assert event.args["extra_us"] >= 0.0
            lanes = event.args["lane_latencies_us"]
            assert event.args["extra_us"] == pytest.approx(
                max(lanes) - min(lanes), abs=1e-2
            )


class TestRegistryWiring:
    def test_phase_counters_and_timelines(self):
        registry = MetricsRegistry()
        ssd = run_workload(tracer=Tracer(), registry=registry)
        snapshot = registry.snapshot(elapsed_us=ssd.metrics.last_finish_us)
        assert snapshot["qstr_gather_reports"] > 0
        assert snapshot["qstr_assemblies"] > 0
        assert snapshot["qstr_block_allocations"] > 0
        # Die/channel utilizations come from the attached timelines and
        # agree with the clocks' own accounting.
        for name, value in ssd.utilization().items():
            assert snapshot[f"{name}_utilization"] == pytest.approx(value)


class TestReport:
    def test_summary_and_render(self):
        tracer = Tracer()
        run_workload(tracer=tracer)
        summary = TraceSummary(tracer.events)
        assert summary.total_events == len(tracer.events)
        assert summary.elapsed_us > 0
        offenders = summary.top_offenders("mp_program", limit=5)
        assert offenders
        label, stat = offenders[0]
        assert label.startswith("chip")
        assert stat.total >= stat.mean
        text = render_report(summary)
        assert "extra-latency attribution" in text
        assert "superpage_program" in text
