"""Tracer and metrics-registry tests (repro.obs.tracer / registry)."""

import pytest

from repro.obs.registry import Counter, MetricsRegistry, UtilizationTimeline
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.complete("span", "cat", 0.0, 10.0, lpn=1)
        tracer.instant("evt", "cat", extra_us=5.0)
        tracer.counter("util", {"busy": 0.5})
        assert not hasattr(tracer, "events")

    def test_clock_is_monotonic(self):
        tracer = NullTracer()
        tracer.advance(5.0)
        tracer.advance(3.0)  # time never rewinds
        assert tracer.now_us == 5.0
        tracer.advance(8.0)
        assert tracer.now_us == 8.0

    def test_module_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestTracer:
    def test_records_in_call_order_with_seq(self):
        tracer = Tracer()
        assert tracer.enabled is True
        tracer.complete("a", "cat", 0.0, 10.0, track="t0", lpn=7)
        tracer.instant("b", "cat", ts_us=4.0)
        tracer.counter("c", {"y": 2.0, "x": 1.0})
        assert [e.seq for e in tracer.events] == [1, 2, 3]
        span, instant, counter = tracer.events
        assert (span.ph, span.ts_us, span.dur_us) == ("X", 0.0, 10.0)
        assert span.args == {"lpn": 7}
        assert (instant.ph, instant.ts_us, instant.dur_us) == ("i", 4.0, 0.0)
        assert counter.ph == "C"
        assert list(counter.args) == ["x", "y"]  # sorted keys

    def test_instant_defaults_to_sim_now(self):
        tracer = Tracer()
        tracer.advance(123.0)
        tracer.instant("evt", "cat")
        assert tracer.events[0].ts_us == 123.0

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.complete("bad", "cat", 10.0, -1.0)


class TestCounter:
    def test_increments(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestUtilizationTimeline:
    def test_busy_and_utilization(self):
        timeline = UtilizationTimeline("die0")
        timeline.record(0.0, 10.0)
        timeline.record(20.0, 10.0)
        timeline.record(40.0, 0.0)  # zero-duration: not a segment
        assert timeline.busy_us == pytest.approx(20.0)
        assert len(timeline.segments) == 2
        assert timeline.utilization(40.0) == pytest.approx(0.5)
        assert timeline.utilization(0.0) == 0.0
        assert timeline.utilization(5.0) == 1.0  # clamped

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            UtilizationTimeline("x").record(0.0, -1.0)

    def test_series(self):
        timeline = UtilizationTimeline("die0")
        timeline.record(0.0, 10.0)
        series = timeline.series(bucket_us=4.0, until_us=12.0)
        assert series == pytest.approx([1.0, 1.0, 0.5])
        assert timeline.series(4.0, 0.0) == []
        with pytest.raises(ValueError):
            timeline.series(0.0, 10.0)

    def test_series_truncates_at_until(self):
        timeline = UtilizationTimeline("die0")
        timeline.record(5.0, 100.0)
        series = timeline.series(bucket_us=10.0, until_us=20.0)
        assert series == pytest.approx([0.5, 1.0])


class TestMetricsRegistry:
    def test_lazily_creates_and_reuses(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.timeline("t") is registry.timeline("t")

    def test_snapshot_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(3)
        registry.counter("alpha").inc()
        registry.histogram("lat").extend([10.0, 1000.0])
        registry.timeline("die0").record(0.0, 50.0)
        snapshot = registry.snapshot(elapsed_us=100.0)
        assert snapshot["alpha"] == 1.0
        assert snapshot["zeta"] == 3.0
        assert snapshot["lat_count"] == 2.0
        assert snapshot["lat_p99_us"] == pytest.approx(1000.0)
        assert snapshot["die0_utilization"] == pytest.approx(0.5)
        assert list(snapshot)[:2] == ["alpha", "zeta"]  # counters sorted first

    def test_snapshot_without_elapsed_omits_utilization(self):
        registry = MetricsRegistry()
        registry.timeline("die0").record(0.0, 50.0)
        assert registry.snapshot() == {}
