"""FTL integration tests: format, write/read/trim, GC, integrity."""

import numpy as np
import pytest

from repro.core.placement import WriteSource
from repro.ftl import Ftl, FtlConfig, OutOfSpaceError
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams


def build_ftl(allocator_kind="qstr", blocks=12, op=0.35, seed=31, lanes=3):
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=seed
    )
    chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(lanes)]
    config = FtlConfig(
        usable_blocks_per_plane=blocks,
        planes_used=1,
        overprovision_ratio=op,
        gc_low_watermark=2,
        gc_high_watermark=3,
    )
    ftl = Ftl(chips, config, allocator_kind=allocator_kind)
    ftl.format()
    return ftl


class TestConstruction:
    def test_needs_two_chips(self):
        model = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=1)
        with pytest.raises(ValueError):
            Ftl([FlashChip(model.chip_profile(0), SMALL_GEOMETRY)])

    def test_config_bounds(self):
        model = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=1)
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(2)]
        with pytest.raises(ValueError):
            Ftl(chips, FtlConfig(usable_blocks_per_plane=9999))
        with pytest.raises(ValueError):
            Ftl(chips, FtlConfig(planes_used=99))

    def test_requires_format(self):
        model = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=1)
        chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(2)]
        ftl = Ftl(chips, FtlConfig(usable_blocks_per_plane=8))
        with pytest.raises(RuntimeError):
            ftl.write(0)

    def test_double_format_rejected(self):
        ftl = build_ftl()
        with pytest.raises(RuntimeError):
            ftl.format()

    def test_format_lists_all_blocks(self):
        ftl = build_ftl(blocks=8)
        assert all(count == 8 for count in ftl.free_block_counts().values())


class TestWriteRead:
    def test_buffered_until_superwl(self):
        ftl = build_ftl()
        reports = ftl.write(0)
        assert reports == []  # buffered, not yet a full super word-line
        result = ftl.read(0)
        assert result.located and result.buffer_hit

    def test_flush_emits_report(self):
        ftl = build_ftl()
        reports = []
        lpn = 0
        while not reports:
            reports = ftl.write(lpn)
            lpn += 1
        report = reports[0]
        assert report.pages == ftl.buffer.superwl_pages
        assert report.completion_us > 0
        assert report.extra_us >= 0

    def test_read_back_after_flush(self):
        ftl = build_ftl()
        count = ftl.buffer.superwl_pages * 3
        for lpn in range(count):
            ftl.write(lpn)
        ftl.flush()
        for lpn in range(count):
            result = ftl.read(lpn)
            assert result.located and not result.buffer_hit
            assert result.latency_us > 0

    def test_unwritten_read(self):
        ftl = build_ftl()
        result = ftl.read(5)
        assert not result.located

    def test_rewrite_coalesces_in_buffer(self):
        ftl = build_ftl()
        ftl.write(7)
        ftl.write(7)
        assert ftl.buffer.total_pending() == 1

    def test_trim(self):
        ftl = build_ftl()
        for lpn in range(ftl.buffer.superwl_pages):
            ftl.write(lpn)
        ftl.flush()
        ftl.trim(0)
        assert not ftl.read(0).located

    def test_lpn_bounds(self):
        ftl = build_ftl()
        with pytest.raises(Exception):
            ftl.write(ftl.logical_pages)


class TestGc:
    @pytest.mark.parametrize("kind", ["qstr", "random", "sequential", "pgm_sorted"])
    def test_sustained_overwrite_with_integrity(self, kind):
        ftl = build_ftl(allocator_kind=kind)
        rng = np.random.default_rng(0)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        for _ in range(ftl.logical_pages * 2):
            ftl.write(int(rng.integers(ftl.logical_pages)))
        ftl.flush()
        assert ftl.metrics.gc_runs > 0
        assert ftl.metrics.write_amplification > 1.0
        # every mapped page reads back as itself (IntegrityError otherwise)
        for lpn in rng.choice(ftl.logical_pages, size=100, replace=False):
            result = ftl.read(int(lpn))
            assert result.located

    def test_gc_respects_watermarks(self):
        ftl = build_ftl()
        rng = np.random.default_rng(1)
        for _ in range(ftl.logical_pages * 3):
            ftl.write(int(rng.integers(ftl.logical_pages)))
        assert ftl.allocator.min_free() >= 1

    def test_metrics_track_streams(self):
        ftl = build_ftl()
        rng = np.random.default_rng(2)
        for _ in range(ftl.logical_pages * 3):
            ftl.write(int(rng.integers(ftl.logical_pages)))
        ftl.flush()
        m = ftl.metrics
        assert m.host_pages_written > 0
        assert m.gc_pages_written > 0
        assert m.superblocks_erased == m.gc_runs
        assert m.extra_program_us.count > 0
        assert m.extra_erase_us.count > 0

    def test_out_of_space_when_full_of_valid_data(self):
        # Near-zero OP: the initial fill consumes every block while all data
        # stays valid, so GC never banked free blocks.  The next overwrite
        # burst needs a fresh superblock before GC can relocate into one —
        # the allocation failure must surface as OutOfSpaceError.
        ftl = build_ftl(op=0.02, blocks=6)
        with pytest.raises(OutOfSpaceError):
            for lpn in range(ftl.logical_pages):
                ftl.write(lpn)
            ftl.flush()
            for lpn in range(ftl.buffer.superwl_pages * 2):
                ftl.write(lpn)
            ftl.flush()


class TestUtilization:
    def test_utilization_tracks_mapped(self):
        ftl = build_ftl()
        assert ftl.utilization() == 0.0
        for lpn in range(ftl.buffer.superwl_pages):
            ftl.write(lpn)
        ftl.flush()
        assert ftl.utilization() > 0.0
