"""WriteBuffer and allocator tests."""

import numpy as np
import pytest

from repro.core.assembler import SpeedClass
from repro.core.gathering import GatheringUnit
from repro.core.placement import WriteSource
from repro.ftl.allocator import (
    AllocationError,
    QstrAllocator,
    SimpleAllocator,
    make_allocator,
)
from repro.ftl.writebuffer import BufferedPage, WriteBuffer
from repro.nand import SMALL_GEOMETRY


class TestWriteBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)

    def test_push_and_full_detection(self):
        buffer = WriteBuffer(3)
        for lpn in range(2):
            buffer.push(SpeedClass.FAST, BufferedPage(lpn, WriteSource.HOST))
        assert not buffer.has_full_superwl(SpeedClass.FAST)
        buffer.push(SpeedClass.FAST, BufferedPage(2, WriteSource.HOST))
        assert buffer.has_full_superwl(SpeedClass.FAST)
        assert buffer.pending(SpeedClass.FAST) == 3
        assert buffer.total_pending() == 3

    def test_pop_fifo(self):
        buffer = WriteBuffer(2)
        for lpn in range(4):
            buffer.push(SpeedClass.FAST, BufferedPage(lpn, WriteSource.HOST))
        batch = buffer.pop_superwl(SpeedClass.FAST)
        assert [p.lpn for p in batch] == [0, 1]
        assert buffer.pending(SpeedClass.FAST) == 2

    def test_pop_partial(self):
        buffer = WriteBuffer(4)
        buffer.push(SpeedClass.SLOW, BufferedPage(9, WriteSource.GC))
        with pytest.raises(ValueError):
            buffer.pop_superwl(SpeedClass.SLOW)
        batch = buffer.pop_superwl(SpeedClass.SLOW, allow_partial=True)
        assert [p.lpn for p in batch] == [9]

    def test_pop_empty(self):
        with pytest.raises(ValueError):
            WriteBuffer(2).pop_superwl(SpeedClass.FAST, allow_partial=True)

    def test_drop_lpn(self):
        buffer = WriteBuffer(4)
        buffer.push(SpeedClass.FAST, BufferedPage(1, WriteSource.HOST))
        buffer.push(SpeedClass.SLOW, BufferedPage(1, WriteSource.GC))
        assert buffer.drop_lpn(1) == 2
        assert buffer.total_pending() == 0

    def test_buffered_lpns(self):
        buffer = WriteBuffer(4)
        buffer.push(SpeedClass.FAST, BufferedPage(7, WriteSource.HOST))
        assert buffer.buffered_lpns() == {7: SpeedClass.FAST}


def seed_records(allocator, lanes=(0, 1), blocks=4):
    unit = GatheringUnit(SMALL_GEOMETRY)
    rng = np.random.default_rng(5)
    g = SMALL_GEOMETRY
    for lane in lanes:
        for block in range(blocks):
            matrix = rng.normal(1700, 10, size=(g.layers_per_block, g.strings_per_layer))
            record = GatheringUnit(g).gather_measurement(lane, 0, block, matrix)
            allocator.register_free(record)


class TestSimpleAllocator:
    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            SimpleAllocator([0, 1], "bogus")

    def test_allocate_one_per_lane(self):
        allocator = SimpleAllocator([0, 1], "random", seed=1)
        seed_records(allocator)
        members = allocator.allocate(SpeedClass.FAST)
        assert [m.lane for m in members] == [0, 1]
        assert allocator.free_count(0) == 3

    def test_sequential_prefers_lowest_block(self):
        allocator = SimpleAllocator([0, 1], "sequential")
        seed_records(allocator)
        members = allocator.allocate(SpeedClass.FAST)
        assert all(m.block == 0 for m in members)

    def test_pgm_sorted_prefers_fastest(self):
        allocator = SimpleAllocator([0, 1], "pgm_sorted")
        seed_records(allocator)
        members = allocator.allocate(SpeedClass.FAST)
        for lane in (0, 1):
            # no remaining free block on that lane is faster
            remaining = allocator._free[lane]
            chosen = next(m for m in members if m.lane == lane)
            assert all(chosen.pgm_total_us <= r.pgm_total_us for r in remaining)

    def test_exhaustion(self):
        allocator = SimpleAllocator([0, 1], "random")
        seed_records(allocator, blocks=1)
        allocator.allocate(SpeedClass.FAST)
        with pytest.raises(AllocationError):
            allocator.allocate(SpeedClass.FAST)

    def test_free_and_retire_cycle(self):
        allocator = SimpleAllocator([0, 1], "random")
        seed_records(allocator, blocks=2)
        members = allocator.allocate(SpeedClass.FAST)
        allocator.on_block_freed(members[0].lane, members[0].plane, members[0].block)
        assert allocator.free_count(members[0].lane) == 2
        allocator.on_block_retired(members[1].lane, members[1].plane, members[1].block)
        assert allocator.free_count(members[1].lane) == 1
        with pytest.raises(KeyError):
            allocator.on_block_freed(members[1].lane, members[1].plane, members[1].block)

    def test_no_metadata_cost(self):
        allocator = SimpleAllocator([0, 1], "random")
        assert allocator.metadata_bytes() == 0
        assert allocator.pair_checks == 0


class TestQstrAllocator:
    def test_allocates_via_scheme(self):
        allocator = QstrAllocator(SMALL_GEOMETRY, [0, 1])
        seed_records(allocator)
        members = allocator.allocate(SpeedClass.FAST)
        assert sorted(m.lane for m in members) == [0, 1]
        assert allocator.pair_checks > 0
        assert allocator.metadata_bytes() > 0

    def test_empty_lane_raises(self):
        allocator = QstrAllocator(SMALL_GEOMETRY, [0, 1])
        with pytest.raises(AllocationError):
            allocator.allocate(SpeedClass.FAST)


class TestFactory:
    def test_kinds(self):
        for kind in ("qstr", "random", "sequential", "pgm_sorted"):
            allocator = make_allocator(kind, SMALL_GEOMETRY, [0, 1])
            assert allocator.lanes == [0, 1]
        with pytest.raises(ValueError):
            make_allocator("nope", SMALL_GEOMETRY, [0, 1])
