"""Process-variation model tests: determinism and statistical structure.

These pin the properties the whole reproduction rests on (DESIGN.md §4):
quantization, within-chip similarity vs cross-chip variation, string-pattern
latents, erase coupling, wear trends.
"""

import numpy as np
import pytest

from repro.nand import SMALL_GEOMETRY, VariationModel, VariationParams
from repro.nand.variation import _quantize, _smooth_noise


@pytest.fixture(scope="module")
def model():
    return VariationModel(SMALL_GEOMETRY, VariationParams(), seed=99)


class TestParams:
    def test_defaults_valid(self):
        VariationParams()

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            VariationParams(latent_shared_frac=0.8, latent_chip_smooth_frac=0.3)
        with pytest.raises(ValueError):
            VariationParams(latent_shared_frac=-0.1)

    def test_rejects_bad_quant(self):
        with pytest.raises(ValueError):
            VariationParams(prog_quant_us=0)

    def test_rejects_bad_basis(self):
        with pytest.raises(ValueError):
            VariationParams(string_basis_count=0)

    def test_scaled_noise(self):
        params = VariationParams()
        scaled = params.scaled_noise(2.0)
        assert scaled.sigma_wl_noise_us == pytest.approx(2 * params.sigma_wl_noise_us)
        assert scaled.sigma_string_us == params.sigma_string_us


class TestHelpers:
    def test_quantize_grid(self):
        step = 6.1
        values = _quantize(np.array([0.0, 3.0, 6.2, 100.0]), step)
        assert np.allclose(np.round(values / step), values / step)

    def test_smooth_noise_std(self):
        # pointwise std is sigma in expectation: estimate over many fields
        samples = np.concatenate(
            [
                _smooth_noise(np.random.default_rng(i), 50, sigma=4.0, smooth=10.0)
                for i in range(200)
            ]
        )
        assert samples.std() == pytest.approx(4.0, rel=0.05)
        assert abs(samples.mean()) < 0.2

    def test_smooth_noise_short_fields_unbiased(self):
        # Regression: fields much shorter than the smoothing radius must not
        # pick up large mean offsets or inflated variance (this once skewed
        # every scaled-down test geometry).
        means = [
            _smooth_noise(np.random.default_rng(i), 16, sigma=1.0, smooth=40.0).mean()
            for i in range(300)
        ]
        assert abs(np.mean(means)) < 0.15
        assert np.std(means) < 1.5

    def test_smooth_noise_empty(self):
        assert _smooth_noise(np.random.default_rng(0), 0, 1.0, 5.0).size == 0

    def test_smooth_noise_correlation(self):
        rng = np.random.default_rng(0)
        field = _smooth_noise(rng, 2000, sigma=1.0, smooth=20.0)
        lag1 = np.corrcoef(field[:-1], field[1:])[0, 1]
        assert lag1 > 0.9  # heavily smoothed

    def test_smooth_noise_unsmoothed(self):
        rng = np.random.default_rng(0)
        field = _smooth_noise(rng, 100, sigma=2.0, smooth=0.5)
        assert field.shape == (100,)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=5)
        b = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=5)
        la = a.chip_profile(0).block_program_latencies(0, 3)
        lb = b.chip_profile(0).block_program_latencies(0, 3)
        assert np.array_equal(la, lb)
        assert a.chip_profile(1).erase_latency(1, 7) == b.chip_profile(1).erase_latency(1, 7)

    def test_different_seed_differs(self):
        a = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=5)
        b = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=6)
        assert not np.array_equal(
            a.chip_profile(0).block_program_latencies(0, 3),
            b.chip_profile(0).block_program_latencies(0, 3),
        )

    def test_cache_returns_same_array(self, model):
        profile = model.chip_profile(0)
        first = profile.block_program_latencies(0, 1)
        second = profile.block_program_latencies(0, 1)
        assert first is second
        assert not first.flags.writeable

    def test_chip_profile_cached(self, model):
        assert model.chip_profile(2) is model.chip_profile(2)


class TestProgramLatencies:
    def test_shape_and_positivity(self, model):
        latencies = model.chip_profile(0).block_program_latencies(0, 0)
        g = SMALL_GEOMETRY
        assert latencies.shape == (g.layers_per_block, g.strings_per_layer)
        assert (latencies > 0).all()

    def test_quantized(self, model):
        params = model.params
        latencies = model.chip_profile(0).block_program_latencies(1, 4)
        ratios = latencies / params.prog_quant_us
        assert np.allclose(ratios, np.round(ratios))

    def test_single_lwl_matches_matrix(self, model):
        profile = model.chip_profile(0)
        matrix = profile.block_program_latencies(0, 2)
        assert profile.program_latency(0, 2, 3, 1) == matrix[3, 1]

    def test_block_total(self, model):
        profile = model.chip_profile(1)
        assert profile.block_program_total(0, 5) == pytest.approx(
            profile.block_program_latencies(0, 5).sum()
        )

    def test_bounds_checked(self, model):
        profile = model.chip_profile(0)
        with pytest.raises(ValueError):
            profile.block_program_latencies(9, 0)
        with pytest.raises(ValueError):
            profile.program_latency(0, 0, 99, 0)

    def test_wear_speeds_up_programming(self, model):
        profile = model.chip_profile(0)
        fresh = profile.block_program_latencies(0, 6, pe=0).mean()
        worn = profile.block_program_latencies(0, 6, pe=3000).mean()
        assert worn < fresh  # negative program slope


class TestStructure:
    """The paper's Figure 5 structure claims, on the synthetic chips."""

    def test_within_chip_blocks_correlate_more(self, model):
        # Per-LWL curves of two blocks on the SAME chip should correlate
        # better (after removing the common shape) than across chips;
        # averaged over all block pairs to beat the small-geometry noise.
        profiles = [model.chip_profile(c) for c in range(4)]
        curves = {
            (c, b): profiles[c].block_program_latencies(0, b).reshape(-1)
            for c in range(4)
            for b in range(6)
        }
        common = np.mean(list(curves.values()), axis=0)

        def corr(x, y):
            xr, yr = x - common, y - common
            return float(np.corrcoef(xr, yr)[0, 1])

        within = [
            corr(curves[(c, a)], curves[(c, b)])
            for c in range(4)
            for a in range(6)
            for b in range(a + 1, 6)
        ]
        across = [
            corr(curves[(c1, b)], curves[(c2, b)])
            for c1 in range(4)
            for c2 in range(c1 + 1, 4)
            for b in range(6)
        ]
        assert np.mean(within) > np.mean(across) + 0.1

    def test_latent_drives_string_pattern(self, model):
        # Blocks with close latents must have more similar string patterns
        # than blocks with distant latents.
        profile = model.chip_profile(0)
        blocks = range(20)
        latents = {b: profile.block_latent(0, b) for b in blocks}
        def pattern(b):
            matrix = profile.block_program_latencies(0, b)
            return (matrix - matrix.mean(axis=1, keepdims=True)).reshape(-1)
        pairs = [(a, b) for a in blocks for b in blocks if a < b]
        close = [p for p in pairs if np.linalg.norm(latents[p[0]] - latents[p[1]]) < 0.3]
        far = [p for p in pairs if np.linalg.norm(latents[p[0]] - latents[p[1]]) > 1.5]
        if not close or not far:
            pytest.skip("seed produced no usable pairs")
        def mismatch(ps):
            return np.mean([np.abs(pattern(a) - pattern(b)).mean() for a, b in ps])
        assert mismatch(close) < mismatch(far)

    def test_latent_copy_isolated(self, model):
        profile = model.chip_profile(0)
        latent = profile.block_latent(0, 0)
        latent[:] = 99.0
        assert profile.block_latent(0, 0)[0] != 99.0


class TestEraseLatency:
    def test_positive_and_quantized(self, model):
        params = model.params
        value = model.chip_profile(0).erase_latency(0, 3)
        assert value > 0
        assert value / params.ers_quant_us == pytest.approx(
            round(value / params.ers_quant_us)
        )

    def test_wear_slows_erase(self, model):
        profile = model.chip_profile(0)
        assert profile.erase_latency(0, 4, pe=3000) > profile.erase_latency(0, 4, pe=0)

    def test_couples_to_program_speed(self):
        # Across many blocks, erase latency correlates with the block's
        # program-speed components (resid + latent), enabling Table V's
        # erase gains from program-similarity grouping.
        model = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=11)
        profile = model.chip_profile(0)
        ers = np.array([profile.erase_latency(0, b) for b in range(32)])
        pgm = np.array([profile.block_program_total(0, b) for b in range(32)])
        assert abs(np.corrcoef(ers, pgm)[0, 1]) > 0.2


class TestReliability:
    def test_endurance_positive(self, model):
        profile = model.chip_profile(0)
        assert profile.endurance_limit(0, 0) > 0

    def test_factory_bad_rate_reasonable(self):
        params = VariationParams(factory_bad_ratio=0.2)
        model = VariationModel(SMALL_GEOMETRY, params, seed=3)
        profile = model.chip_profile(0)
        bad = sum(
            profile.is_factory_bad(p, b)
            for p in range(SMALL_GEOMETRY.planes_per_chip)
            for b in range(SMALL_GEOMETRY.blocks_per_plane)
        )
        total = SMALL_GEOMETRY.planes_per_chip * SMALL_GEOMETRY.blocks_per_plane
        assert 0.05 < bad / total < 0.5

    def test_read_latency_positive(self, model):
        profile = model.chip_profile(0)
        assert profile.read_latency(0, 0, 5) > 0
        with pytest.raises(ValueError):
            profile.read_latency(0, 0, SMALL_GEOMETRY.lwls_per_block)
