"""FleetSim end-to-end: determinism, tail QoS, and graceful degradation.

Three pinned scenarios, all on the same 4-device fleet built from
``SimConfig.device(seed=7, chips=4, blocks=24)``:

* **baseline** — fault-free; every request acks and the serving trace
  lands on a pinned sha256 (the same fingerprint ``repro fleet`` prints);
* **outage** — a plane outage across every chip of device 0 at 30 ms;
  the device accumulates hard faults, is ejected, tenants re-shard, and
  *zero* requests are lost — with the p99.9 tail pinned to the fault-free
  value (hedged reads and replicas absorb the ejection);
* **storm** — simultaneous read storms on device 0; the soft-fault run
  trips the circuit breaker open and traffic steers away, again with
  zero failed requests.

The exact counter values are regression pins: any engine change that
shifts scheduling, retry, hedging or breaker behavior must show up here
as a deliberate diff.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.exp import SimConfig, Sweep, build_fleet
from repro.exp import run as run_sweep
from repro.faults import FaultEvent, FaultPlan
from repro.fleet import FleetConfig, FleetSim
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import to_jsonl

BASE_FLEET = FleetConfig(
    devices=4,
    replicas=2,
    tenants=6,
    requests_per_tenant=60,
    queue_depth=16,
    hedge_min_samples=16,
)

#: read storms want read traffic on the faulted device, so the storm
#: scenario runs every tenant on the mixed profile, read-heavy, with a
#: hair-trigger breaker (two consecutive soft faults trip it).
STORM_FLEET = FleetConfig(
    **{
        **BASE_FLEET.to_dict(),
        "profiles": ("mixed",),
        "read_fraction": 0.9,
        "breaker_threshold": 2,
    }
)

OUTAGE_PLAN = FaultPlan(
    events=tuple(
        FaultEvent(kind="plane_outage", chip=chip, plane=0, at_time_us=30000.0)
        for chip in range(4)
    )
)

STORM_PLAN = FaultPlan(
    events=tuple(
        FaultEvent(
            kind="read_storm",
            chip=chip,
            at_time_us=60000.0,
            duration_ops=5,
            rber_multiplier=4.0,
        )
        for chip in range(4)
    )
)

BASELINE_SHA = "55d06f2c224fe762690165a22fd50098bf82e5b13a1ead72cec7ffd39b9418ca"
OUTAGE_SHA = "e894cf6dce3e41112d44658f41178474f4f097fcc4cf1f30c92840c49faba82b"
STORM_SHA = "abe63c041d2bf1d8a225adf2f1a29882fb7151755c0951cd430b1894648303a5"


def serve(fleet: FleetConfig, faults: FaultPlan | None = None):
    config = SimConfig.device(seed=7, chips=4, blocks=24, faults=faults).with_(
        fleet=fleet
    )
    tracer = Tracer()
    sim = build_fleet(config, tracer=tracer, registry=MetricsRegistry())
    summary = sim.run().summary()
    sha = hashlib.sha256(to_jsonl(tracer.events).encode("utf-8")).hexdigest()
    return summary, sha


@pytest.fixture(scope="module")
def baseline():
    return serve(BASE_FLEET)


@pytest.fixture(scope="module")
def outage():
    return serve(BASE_FLEET, OUTAGE_PLAN)


@pytest.fixture(scope="module")
def storm():
    return serve(STORM_FLEET, STORM_PLAN)


class TestBaseline:
    def test_every_request_acks(self, baseline):
        summary, _ = baseline
        counters = summary["counters"]
        assert summary["requests"] == 360
        assert counters["acked"] == 360
        assert counters["failed"] == 0
        assert counters["reads"] + counters["writes"] == 360
        assert counters["ejections"] == 0
        assert counters["media_faults"] == 0

    def test_trace_hits_the_pinned_fingerprint(self, baseline):
        _, sha = baseline
        assert sha == BASELINE_SHA

    def test_rerun_is_byte_identical(self, baseline):
        summary, sha = baseline
        again_summary, again_sha = serve(BASE_FLEET)
        assert again_sha == sha
        assert json.dumps(again_summary, sort_keys=True) == json.dumps(
            summary, sort_keys=True
        )

    def test_tails_come_from_registry_histograms(self, baseline):
        summary, _ = baseline
        for key in ("latency", "read_latency", "write_latency"):
            tail = summary[key]
            assert set(tail) == {
                "count", "mean", "p50", "p99", "p999", "p9999", "max",
            }
            assert tail["p50"] <= tail["p99"] <= tail["p999"] <= tail["max"]
        assert summary["latency"]["count"] == 360

    def test_per_tenant_qos_rows(self, baseline):
        summary, _ = baseline
        rows = summary["tenants"]
        assert [row["tenant"] for row in rows] == list(range(6))
        assert [row["profile"] for row in rows] == [
            "zipf", "mixed", "zipf", "mixed", "zipf", "mixed",
        ]
        assert sum(row["acked"] for row in rows) == 360
        assert all(row["failed"] == 0 for row in rows)
        assert all(row["latency"]["p50"] <= row["latency"]["p999"] for row in rows)


class TestGracefulDegradation:
    def test_outage_ejects_the_device_without_losing_requests(self, outage):
        summary, sha = outage
        counters = summary["counters"]
        # exact regression pins — see the module docstring
        assert counters["acked"] == 360
        assert counters["failed"] == 0
        assert counters["ejections"] == 1
        assert counters["media_faults"] == 4
        assert sha == OUTAGE_SHA
        dev0 = summary["devices"][0]
        assert dev0["ejected"] is True
        assert dev0["hard_faults"] == 4
        survivors = summary["devices"][1:]
        assert all(not dev["ejected"] for dev in survivors)
        # the survivors absorbed the re-sharded traffic
        assert all(dev["submissions"] > dev0["submissions"] for dev in survivors)

    def test_tail_holds_through_the_ejection(self, baseline, outage):
        # replicas + hedging keep the p99.9 tail at the fault-free value
        base_summary, _ = baseline
        outage_summary, _ = outage
        assert (
            outage_summary["latency"]["p999"]
            == base_summary["latency"]["p999"]
            == 2063.34
        )

    def test_storm_trips_the_breaker_open(self, storm):
        summary, sha = storm
        counters = summary["counters"]
        assert counters["acked"] == 360
        assert counters["failed"] == 0
        assert counters["breaker_opens"] == 1
        assert counters["media_faults"] == 2
        assert counters["ejections"] == 0
        assert sha == STORM_SHA
        dev0 = summary["devices"][0]
        assert dev0["breaker_state"] == "open"
        assert dev0["breaker_opens"] == 1
        assert dev0["ejected"] is False

    def test_hedges_fire_and_sometimes_win(self, storm):
        summary, _ = storm
        counters = summary["counters"]
        assert counters["hedges"] > 0
        assert 0 < counters["hedge_wins"] <= counters["hedges"]


class TestConstruction:
    def test_device_count_mismatch_rejected(self):
        config = SimConfig.device(seed=7, chips=4, blocks=24).with_(
            fleet=BASE_FLEET
        )
        sim = build_fleet(config)
        with pytest.raises(ValueError, match="devices"):
            FleetSim(
                BASE_FLEET,
                [dev.ssd for dev in sim.devices[:2]],
                seed=7,
                pages_per_tenant=sim.pages_per_tenant,
            )

    def test_oversubscribed_logical_space_rejected(self):
        huge = FleetConfig(**{**BASE_FLEET.to_dict(), "tenants": 10_000})
        config = SimConfig.device(seed=7, chips=4, blocks=24).with_(fleet=huge)
        with pytest.raises(ValueError):
            build_fleet(config)


class TestSweepIntegration:
    def test_fleet_cells_identical_serial_vs_parallel(self):
        small = FleetConfig(
            devices=2,
            replicas=2,
            tenants=2,
            requests_per_tenant=12,
            queue_depth=8,
            hedge_min_samples=8,
        )
        base = SimConfig.device(seed=5, chips=2, blocks=20).with_(fleet=small)

        def shas(workers: int):
            sweep = Sweep("fleet", base=base).over("seed", [5, 6])
            result = run_sweep(sweep, workers=workers, cache=None)
            assert not result.failures
            return [
                (item.cell.config_hash, item.result["trace_sha256"])
                for item in result.cells
            ]

        serial = shas(1)
        parallel = shas(2)
        assert serial == parallel
        assert len({sha for _, sha in serial}) == 2  # seeds really fork
