"""RBER model and ECC engine tests."""

import numpy as np
import pytest

from repro.nand import (
    SMALL_GEOMETRY,
    EccConfig,
    EccEngine,
    FlashChip,
    PageType,
    ReliabilityParams,
    VariationModel,
    VariationParams,
    rber,
)
from repro.nand.errors import UncorrectableReadError


class TestRberModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityParams(base_rber=0)
        with pytest.raises(ValueError):
            ReliabilityParams(pe_scale_cycles=0)
        with pytest.raises(ValueError):
            ReliabilityParams(page_type_factor_step=0.5)
        with pytest.raises(ValueError):
            rber(ReliabilityParams(), pe=-1, retention_hours=0, page_type=PageType.LSB)

    def test_grows_with_pe(self):
        params = ReliabilityParams()
        fresh = rber(params, 0, 0, PageType.LSB)
        worn = rber(params, 3000, 0, PageType.LSB)
        assert worn > fresh * 10

    def test_grows_with_retention(self):
        params = ReliabilityParams()
        assert rber(params, 1000, 800, PageType.LSB) > rber(params, 1000, 0, PageType.LSB)

    def test_page_type_ordering(self):
        params = ReliabilityParams()
        lsb = rber(params, 1000, 0, PageType.LSB)
        csb = rber(params, 1000, 0, PageType.CSB)
        msb = rber(params, 1000, 0, PageType.MSB)
        assert lsb < csb < msb

    def test_saturates_at_half(self):
        assert rber(ReliabilityParams(), 100_000, 0, PageType.MSB) == 0.5


class TestProfileRber:
    @pytest.fixture(scope="class")
    def profile(self):
        model = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=3)
        return model.chip_profile(0)

    def test_positive_and_bounded(self, profile):
        value = profile.page_rber(0, 0, 0, PageType.LSB)
        assert 0 < value <= 0.5

    def test_block_to_block_variation(self, profile):
        values = {
            profile.page_rber(0, b, 0, PageType.LSB) for b in range(10)
        }
        assert len(values) > 1

    def test_layer_to_layer_variation(self, profile):
        g = SMALL_GEOMETRY
        values = {
            profile.page_rber(0, 0, layer * g.strings_per_layer, PageType.LSB)
            for layer in range(g.layers_per_block)
        }
        assert len(values) > 1

    def test_bounds_checked(self, profile):
        with pytest.raises(ValueError):
            profile.page_rber(0, 0, 999, PageType.LSB)


class TestEccEngine:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EccConfig(codeword_bytes=0)
        with pytest.raises(ValueError):
            EccConfig(correctable_bits=0)
        with pytest.raises(ValueError):
            EccConfig(max_read_retries=-1)
        with pytest.raises(ValueError):
            EccConfig(retry_rber_factor=0)

    def test_codewords_per_page(self):
        config = EccConfig(codeword_bytes=1024)
        assert config.codewords_per_page(SMALL_GEOMETRY) == 4  # 4 KiB user data

    def test_clean_read(self):
        engine = EccEngine(EccConfig(), SMALL_GEOMETRY)
        result = engine.read_page(0.0, np.random.default_rng(0))
        assert result.corrected_bits == 0
        assert result.retries == 0
        assert not result.uncorrectable

    def test_low_rber_corrected(self):
        engine = EccEngine(EccConfig(), SMALL_GEOMETRY)
        result = engine.read_page(1e-4, np.random.default_rng(0))
        assert not result.uncorrectable
        assert result.corrected_bits >= 0

    def test_high_rber_retries_then_succeeds(self):
        # pick an rber above the per-codeword capability but which halving
        # brings back into range
        config = EccConfig(correctable_bits=72, max_read_retries=4)
        engine = EccEngine(config, SMALL_GEOMETRY)
        result = engine.read_page(0.012, np.random.default_rng(1))
        assert result.retries > 0
        assert not result.uncorrectable
        assert result.extra_latency_us == result.retries * config.retry_latency_us

    def test_hopeless_rber_uncorrectable(self):
        config = EccConfig(max_read_retries=2)
        engine = EccEngine(config, SMALL_GEOMETRY)
        result = engine.read_page(0.4, np.random.default_rng(2))
        assert result.uncorrectable
        assert engine.uncorrectable_pages == 1

    def test_rber_bounds(self):
        engine = EccEngine(EccConfig(), SMALL_GEOMETRY)
        with pytest.raises(ValueError):
            engine.read_page(0.6, np.random.default_rng(0))

    def test_retry_rate_counter(self):
        engine = EccEngine(EccConfig(), SMALL_GEOMETRY)
        rng = np.random.default_rng(3)
        for _ in range(5):
            engine.read_page(1e-5, rng)
        assert engine.pages_read == 5
        assert engine.retry_rate == 0.0


class TestChipIntegration:
    def make_chip(self, ecc=True):
        params = VariationParams(
            factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=5)
        engine = EccEngine(EccConfig(), SMALL_GEOMETRY) if ecc else None
        return FlashChip(model.chip_profile(0), SMALL_GEOMETRY, ecc=engine)

    def test_fresh_read_has_correction_info(self):
        chip = self.make_chip()
        chip.erase_block(0, 0)
        chip.program_wordline(0, 0, 0, data={PageType.LSB: 7})
        result, payload = chip.read_page(0, 0, 0, PageType.LSB)
        assert payload == 7
        assert result.correction is not None
        assert not result.correction.uncorrectable

    def test_no_ecc_means_no_correction(self):
        chip = self.make_chip(ecc=False)
        chip.erase_block(0, 0)
        chip.program_wordline(0, 0, 0)
        result, _ = chip.read_page(0, 0, 0, PageType.LSB)
        assert result.correction is None

    def test_bake_tracks_retention(self):
        chip = self.make_chip()
        assert chip.clock_hours == 0.0
        chip.bake(100.0)
        assert chip.clock_hours == 100.0
        with pytest.raises(ValueError):
            chip.bake(-1)

    def test_worn_baked_read_fails(self):
        chip = self.make_chip()
        chip.stress_block(0, 0, 12_000)
        chip.erase_block(0, 0)
        chip.program_wordline(0, 0, 0)
        chip.bake(2_000)
        with pytest.raises(UncorrectableReadError):
            chip.read_page(0, 0, 0, PageType.MSB)

    def test_retry_latency_surfaces(self):
        # near end of life, MSB reads should sometimes need retries, and
        # the retry latency lands in the reported read time
        chip = self.make_chip()
        chip.stress_block(0, 0, 6_000)
        chip.erase_block(0, 0)
        chip.program_block(0, 0)
        latencies = []
        retried = 0
        g = SMALL_GEOMETRY
        for lwl in range(g.lwls_per_block):
            result, _ = chip.read_page(0, 0, lwl, PageType.MSB)
            latencies.append(result.latency_us)
            if result.correction.retries:
                retried += 1
        assert retried > 0
        assert max(latencies) > min(latencies)
