"""SuperpagePredictor tests."""

import numpy as np
import pytest

from repro.core.gathering import GatheringUnit
from repro.core.superpage import SuperpagePredictor
from repro.nand import SMALL_GEOMETRY


def make_record_and_matrix(lane, block, seed, fast_string=None):
    """A gathered record; optionally force one string to be clearly fastest."""
    rng = np.random.default_rng(seed)
    g = SMALL_GEOMETRY
    matrix = rng.normal(1700, 5, size=(g.layers_per_block, g.strings_per_layer))
    if fast_string is not None:
        matrix[:, fast_string] -= 60.0
    record = GatheringUnit(g).gather_measurement(lane, 0, block, matrix)
    return record, matrix


@pytest.fixture()
def predictor():
    return SuperpagePredictor(SMALL_GEOMETRY, lanes=[0, 1])


class TestLearning:
    def test_observe_validation(self, predictor):
        with pytest.raises(ValueError):
            predictor.observe(0, 0, 1700.0, eigen_bit=2)
        with pytest.raises(ValueError):
            predictor.observe(0, SMALL_GEOMETRY.lwls_per_block, 1700.0, 0)

    def test_ready_requires_all_lanes(self, predictor):
        assert not predictor.ready()
        predictor.observe(0, 0, 1700.0, 0)
        assert not predictor.ready()
        predictor.observe(1, 0, 1700.0, 0)
        assert predictor.ready()

    def test_lane_curve_learned(self, predictor):
        record, matrix = make_record_and_matrix(0, 0, seed=1)
        predictor.observe_record(record, matrix)
        flat = matrix.reshape(-1)
        for lwl in (0, 5, SMALL_GEOMETRY.lwls_per_block - 1):
            assert predictor.lane_curve_value(0, lwl) == pytest.approx(flat[lwl])

    def test_unseen_lwl_falls_back_to_lane_mean(self, predictor):
        predictor.observe(0, 0, 1000.0, 0)
        predictor.observe(0, 1, 2000.0, 1)
        assert predictor.lane_curve_value(0, 5) == pytest.approx(1500.0)

    def test_no_data_lane_mean_zero(self, predictor):
        assert predictor.lane_curve_value(0, 3) == 0.0
        assert predictor.bit_adjustment(0, 0) == 0.0


class TestBitAdjustment:
    def test_fast_bit_negative_adjustment(self, predictor):
        record, matrix = make_record_and_matrix(0, 0, seed=2, fast_string=1)
        predictor.observe_record(record, matrix)
        assert predictor.bit_adjustment(0, 0) < 0
        assert predictor.bit_adjustment(0, 1) > 0

    def test_prediction_orders_members(self, predictor):
        # two blocks with opposite fast strings: wherever their eigen bits
        # disagree, prediction must prefer the block whose bit says "fast"
        fast_record, fast_matrix = make_record_and_matrix(0, 0, seed=3, fast_string=0)
        slow_record, slow_matrix = make_record_and_matrix(0, 1, seed=4, fast_string=3)
        predictor.observe_record(fast_record, fast_matrix)
        predictor.observe_record(slow_record, slow_matrix)
        lwl = next(
            i
            for i in range(len(fast_record.eigen))
            if fast_record.eigen[i] == 0 and slow_record.eigen[i] == 1
        )
        assert predictor.predict_member(fast_record, lwl) < predictor.predict_member(
            slow_record, lwl
        )


class TestSuperwl:
    def test_max_semantics(self, predictor):
        a, ma = make_record_and_matrix(0, 0, seed=5)
        b, mb = make_record_and_matrix(1, 0, seed=6)
        predictor.observe_record(a, ma)
        predictor.observe_record(b, mb)
        combined = predictor.predict_superwl([a, b], 3)
        assert combined == pytest.approx(
            max(predictor.predict_member(a, 3), predictor.predict_member(b, 3))
        )

    def test_empty_members(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict_superwl([], 0)

    def test_prediction_correlates_with_truth(self):
        # Learned model must rank word-lines usefully: predicted vs actual
        # latency correlation on held-out blocks should be clearly positive.
        from repro.nand import FlashChip, VariationModel, VariationParams

        model = VariationModel(SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=8)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        predictor = SuperpagePredictor(SMALL_GEOMETRY, lanes=[0])
        unit = GatheringUnit(SMALL_GEOMETRY)
        records = {}
        for block in range(12):
            chip.erase_block(0, block)
            lat = np.array(chip.program_block(0, block)).reshape(
                SMALL_GEOMETRY.layers_per_block, SMALL_GEOMETRY.strings_per_layer
            )
            record = unit.gather_measurement(0, 0, block, lat, 0)
            records[block] = (record, lat.reshape(-1))
            if block < 8:  # train on the first 8
                predictor.observe_record(record, lat)
        predictions, actuals = [], []
        for block in range(8, 12):  # held out
            record, flat = records[block]
            for lwl in range(SMALL_GEOMETRY.lwls_per_block):
                predictions.append(predictor.predict_member(record, lwl))
                actuals.append(flat[lwl])
        corr = float(np.corrcoef(predictions, actuals)[0, 1])
        assert corr > 0.5
