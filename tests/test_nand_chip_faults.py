"""FlashChip fault hooks: status-register FAILs, outages, storms, retirement."""

import pytest

from repro.faults import (
    KIND_ERASE_FAIL,
    KIND_PLANE_OUTAGE,
    KIND_PROGRAM_FAIL,
    KIND_READ_STORM,
    NULL_INJECTOR,
    FaultEvent,
    FaultPlan,
    make_injector,
)
from repro.nand import (
    SMALL_GEOMETRY,
    EccConfig,
    EccEngine,
    FlashChip,
    VariationModel,
    VariationParams,
)
from repro.nand.errors import BadBlockError, UncorrectableReadError
from repro.nand.geometry import PageType


def build_chip(plan=None, seed=31, ecc=False):
    params = VariationParams(
        factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
    )
    model = VariationModel(SMALL_GEOMETRY, params, seed=seed)
    return FlashChip(
        model.chip_profile(0),
        SMALL_GEOMETRY,
        ecc=EccEngine(EccConfig(), SMALL_GEOMETRY) if ecc else None,
        injector=make_injector(plan, seed, 0),
    )


def fill_wordlines(chip, plane, block, count):
    for lwl in range(count):
        result = chip.program_wordline(
            plane, block, lwl, {PageType.LSB: ("D", plane, block, lwl)}
        )
        assert result.ok


class TestDefaultChipHasNoInjector:
    def test_default_is_the_shared_null_object(self):
        chip = build_chip()
        assert chip.injector is NULL_INJECTOR
        assert not chip.injector.enabled
        assert chip.grown_bad_blocks == 0


class TestProgramFail:
    def test_fail_status_retires_and_preserves_survivors(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=2)]
        )
        chip = build_chip(plan)
        assert chip.erase_block(0, 0).ok
        fill_wordlines(chip, 0, 0, 2)  # ops 0 and 1 succeed

        result = chip.program_wordline(0, 0, 2, {PageType.LSB: "doomed"})
        assert not result.ok
        assert result.latency_us > 0.0
        # the block is grown-bad: further programs are protocol errors
        assert chip.is_bad(0, 0)
        assert chip.grown_bad_blocks == 1
        with pytest.raises(BadBlockError):
            chip.program_wordline(0, 0, 3, {PageType.LSB: "x"})
        # data was not committed and the word-line pointer did not advance
        assert chip.programmed_lwls(0, 0) == 2
        # survivors remain readable for copy-back
        for lwl in range(2):
            read, payload = chip.read_page(0, 0, lwl, PageType.LSB)
            assert read.ok and payload == ("D", 0, 0, lwl)

    def test_retire_block_is_idempotent(self):
        chip = build_chip()
        chip.retire_block(0, 3)
        chip.retire_block(0, 3)
        assert chip.grown_bad_blocks == 1
        assert chip.is_bad(0, 3)


class TestEraseFail:
    def test_fail_status_retires_and_counts_the_cycle(self):
        plan = FaultPlan(events=[FaultEvent(kind=KIND_ERASE_FAIL, chip=0, at_op=1)])
        chip = build_chip(plan)
        assert chip.erase_block(0, 0).ok
        before = chip.pe_cycles(0, 1)
        result = chip.erase_block(0, 1)
        assert not result.ok
        assert chip.pe_cycles(0, 1) == before + 1
        assert chip.is_bad(0, 1)
        assert chip.grown_bad_blocks == 1
        with pytest.raises(BadBlockError):
            chip.erase_block(0, 1)


class TestPlaneOutage:
    def make_dead_plane_chip(self):
        # total-op clock: erase is op 1, the first program is op 2 and trips
        # the outage (after its own status check, so it still succeeds)
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, plane=0, at_op=2)]
        )
        chip = build_chip(plan)
        assert chip.erase_block(0, 0).ok
        fill_wordlines(chip, 0, 0, 1)
        assert chip.injector.plane_dead(0)
        return chip

    def test_program_and_erase_fail_without_state_change(self):
        chip = self.make_dead_plane_chip()
        assert not chip.program_wordline(0, 0, 1, {PageType.LSB: "x"}).ok
        assert chip.programmed_lwls(0, 0) == 1
        pe_before = chip.pe_cycles(0, 1)
        assert not chip.erase_block(0, 1).ok
        assert chip.pe_cycles(0, 1) == pe_before
        # a dead plane is an outage, not a retirement storm
        assert chip.grown_bad_blocks == 0

    def test_reads_surface_as_uncorrectable(self):
        chip = self.make_dead_plane_chip()
        with pytest.raises(UncorrectableReadError, match="plane offline"):
            chip.read_page(0, 0, 0, PageType.LSB)

    def test_other_planes_keep_working(self):
        chip = self.make_dead_plane_chip()
        assert chip.erase_block(1, 0).ok
        assert chip.program_wordline(1, 0, 0, {PageType.LSB: "y"}).ok
        _, payload = chip.read_page(1, 0, 0, PageType.LSB)
        assert payload == "y"


class TestReadStorm:
    def test_storm_raises_read_cost_then_subsides(self):
        storm = FaultPlan(
            events=[
                FaultEvent(
                    kind=KIND_READ_STORM, chip=0, at_op=0, duration_ops=3,
                    rber_multiplier=1000.0,
                )
            ]
        )
        stormy = build_chip(storm, ecc=True)
        calm = build_chip(ecc=True)
        # mid-life wear so a 1000x RBER needs read-retries but stays correctable
        for chip in (stormy, calm):
            chip.stress_block(0, 0, 2000)
            fill_wordlines(chip, 0, 0, 1)

        def read_cost(chip):
            result, _ = chip.read_page(0, 0, 0, PageType.LSB)
            return result.latency_us, result.correction

        stormy_costs = [read_cost(stormy) for _ in range(3)]
        calm_costs = [read_cost(calm) for _ in range(3)]
        # the elevated RBER forces read-retries the calm chip never needs
        assert all(c[1].retries > 0 for c in stormy_costs)
        assert all(c[1].retries == 0 for c in calm_costs)
        assert sum(c[0] for c in stormy_costs) > sum(c[0] for c in calm_costs)
        assert stormy.injector.injected_read_storms == 1
        # after the window the two chips read identically again
        after_storm, _ = read_cost(stormy)
        after_calm, _ = read_cost(calm)
        assert after_storm == pytest.approx(after_calm)
