"""Seeded fuzz/property tests for the batch kernels.

Each property runs over a pinned band of seeds (deterministic in CI), and
every assertion message carries the reproducing seed, so a failure line is
a one-seed repro recipe: feed the printed seed back into the generator and
the exact inputs come back.

Properties pinned here (the batch kernels must uphold what the scalar model
guarantees):

* signature distances are symmetric with a zero diagonal, and a block is
  never closer to another block than to itself;
* MP completion of a super word-line is exactly the max over the member
  latencies (and extra is max - min, never negative);
* wear moves latency monotonically — programs speed up with P/E cycles,
  erases slow down — in the batch path exactly as in the scalar one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    batch_erase_latencies,
    batch_lwl_rank,
    batch_str_median,
    block_latency_stack,
    eigen_distance_matrix,
    pack_eigen_bits,
    signature_distance_matrix,
    superwl_stats,
)
from repro.nand import SMALL_GEOMETRY, VariationModel, VariationParams

FUZZ_SEEDS = range(200, 230)


def _random_stack(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, 9))
    layers = int(rng.integers(1, 12))
    strings = int(rng.integers(1, 6))
    # mix continuous values with deliberate ties
    stack = rng.uniform(1000.0, 4000.0, (k, layers, strings))
    if rng.random() < 0.5:
        stack = np.round(stack, -1)  # coarse grid: many exact ties
    return stack


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_signature_distances_symmetric_with_zero_diagonal(seed):
    stack = _random_stack(seed)
    for name, matrix in (
        ("rank", signature_distance_matrix(batch_lwl_rank(stack))),
        ("eigen", eigen_distance_matrix(pack_eigen_bits(stack))),
    ):
        assert np.array_equal(matrix, matrix.T), f"{name} asymmetric (seed={seed})"
        assert np.array_equal(
            np.diag(matrix), np.zeros(len(matrix), dtype=matrix.dtype)
        ), f"{name} self-distance nonzero (seed={seed})"
        assert (matrix >= 0).all(), f"{name} negative distance (seed={seed})"


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_self_similarity_is_maximal(seed):
    """No other block is strictly more similar to i than i itself."""
    stack = _random_stack(seed)
    matrix = signature_distance_matrix(batch_str_median(stack))
    for i in range(len(matrix)):
        assert matrix[i, i] == matrix[i].min(), (
            f"block {i} closer to another block than to itself (seed={seed})"
        )


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_mp_completion_is_the_member_max(seed):
    rng = np.random.default_rng(seed)
    members = int(rng.integers(1, 9))
    lwls = int(rng.integers(1, 40))
    table = rng.uniform(1000.0, 4000.0, (members, lwls))
    stats = superwl_stats(table)
    assert np.array_equal(
        stats.completion_us, table.max(axis=0)
    ), f"completion != member max (seed={seed})"
    assert (stats.extra_us >= 0).all(), f"negative extra latency (seed={seed})"
    for lwl in range(lwls):
        assert (
            stats.completion_us[lwl] == table[stats.slowest[lwl], lwl]
        ), f"slowest index wrong at lwl {lwl} (seed={seed})"
        assert (
            table[stats.fastest[lwl], lwl] == table[:, lwl].min()
        ), f"fastest index wrong at lwl {lwl} (seed={seed})"


@pytest.mark.parametrize("seed", range(300, 310))
def test_wear_monotonicity_matches_the_scalar_model(seed):
    """Programs never slow down with wear; erases never speed up."""
    profile = VariationModel(SMALL_GEOMETRY, VariationParams(), seed=seed).chip_profile(0)
    rng = np.random.default_rng(seed)
    blocks = [
        int(b)
        for b in rng.choice(SMALL_GEOMETRY.blocks_per_plane, 4, replace=False)
    ]
    young, old = 0, 3000
    prog_young = block_latency_stack(profile, 0, blocks, young)
    prog_old = block_latency_stack(profile, 0, blocks, old)
    ers_young = batch_erase_latencies(profile, 0, blocks, young)
    ers_old = batch_erase_latencies(profile, 0, blocks, old)
    for i, block in enumerate(blocks):
        assert (prog_old[i] <= prog_young[i]).all(), (
            f"block {block} programs slower when worn (seed={seed})"
        )
        assert ers_old[i] >= ers_young[i], (
            f"block {block} erases faster when worn (seed={seed})"
        )
