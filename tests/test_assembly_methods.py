"""Assembly method tests: the eight directions on measured pools."""

import numpy as np
import pytest

from repro.assembly import (
    METHOD_REGISTRY,
    ErsLatencyAssembler,
    LwlRankAssembler,
    OptimalAssembler,
    PgmLatencyAssembler,
    PwlRankAssembler,
    RandomAssembler,
    SequentialAssembler,
    StrMedianAssembler,
    StrRankAssembler,
    evaluate_assembler,
)
from repro.assembly.base import LanePool
from repro.characterization.datasets import BlockMeasurement


def _consumes_each_block_once(assembler, pools):
    superblocks = assembler.assemble(pools)
    keys = [key for sb in superblocks for key in sb.member_keys()]
    assert len(keys) == len(set(keys))
    assert len(superblocks) == min(len(p) for p in pools)
    return superblocks


ALL_METHODS = [
    RandomAssembler(seed=0),
    SequentialAssembler(),
    ErsLatencyAssembler(),
    PgmLatencyAssembler(),
    OptimalAssembler(4),
    LwlRankAssembler(4),
    PwlRankAssembler(4),
    StrRankAssembler(4),
    StrMedianAssembler(4),
]


class TestAllMethods:
    @pytest.mark.parametrize("assembler", ALL_METHODS, ids=lambda a: a.name)
    def test_valid_partition(self, assembler, small_pools):
        _consumes_each_block_once(assembler, small_pools)

    @pytest.mark.parametrize("assembler", ALL_METHODS, ids=lambda a: a.name)
    def test_lane_structure(self, assembler, small_pools):
        superblocks = assembler.assemble(small_pools)
        lanes = tuple(pool.lane for pool in small_pools)
        for sb in superblocks:
            assert sb.lanes == lanes
            for lane, member in zip(sb.lanes, sb.members):
                assert member.chip_id == lane


class TestRandom:
    def test_seed_reproducible(self, small_pools):
        a = RandomAssembler(seed=3).assemble(small_pools)
        b = RandomAssembler(seed=3).assemble(small_pools)
        assert [sb.member_keys() for sb in a] == [sb.member_keys() for sb in b]

    def test_seed_sensitivity(self, small_pools):
        a = RandomAssembler(seed=3).assemble(small_pools)
        b = RandomAssembler(seed=4).assemble(small_pools)
        assert [sb.member_keys() for sb in a] != [sb.member_keys() for sb in b]


class TestSequential:
    def test_same_offsets_grouped(self, small_pools):
        superblocks = SequentialAssembler().assemble(small_pools)
        for sb in superblocks:
            blocks = {m.block for m in sb.members}
            planes = {m.plane for m in sb.members}
            assert len(blocks) == 1 and len(planes) == 1


class TestLatencySorts:
    def test_ers_sort_monotone(self, small_pools):
        superblocks = ErsLatencyAssembler().assemble(small_pools)
        per_lane = list(zip(*[sb.members for sb in superblocks]))
        for lane_members in per_lane:
            values = [m.erase_latency_us for m in lane_members]
            assert values == sorted(values)

    def test_pgm_sort_monotone(self, small_pools):
        superblocks = PgmLatencyAssembler().assemble(small_pools)
        per_lane = list(zip(*[sb.members for sb in superblocks]))
        for lane_members in per_lane:
            values = [m.program_total_us for m in lane_members]
            assert values == sorted(values)


class TestOptimal:
    def test_window_one_equals_pgm_sort(self, small_pools):
        opt = OptimalAssembler(1)
        base = PgmLatencyAssembler()
        assert [sb.member_keys() for sb in opt.assemble(small_pools)] == [
            sb.member_keys() for sb in base.assemble(small_pools)
        ]

    def test_combination_counter(self, small_pools):
        opt = OptimalAssembler(4, refine_passes=0)
        opt.assemble(small_pools)
        # per batch of 4: 4^4 + 3^4 + 2^4 + 1 = 353 combos; 24 blocks = 6 batches
        assert opt.combinations_checked == 6 * (256 + 81 + 16 + 1)

    def test_refinement_never_hurts(self, small_pools):
        raw = evaluate_assembler(OptimalAssembler(4, refine_passes=0), small_pools)
        refined = evaluate_assembler(OptimalAssembler(4, refine_passes=4), small_pools)
        assert refined.mean_extra_program_us <= raw.mean_extra_program_us + 1e-9

    def test_rejects_bad_refine(self):
        with pytest.raises(ValueError):
            OptimalAssembler(4, refine_passes=-1)

    def test_beats_random_clearly(self, small_pools):
        random_result = evaluate_assembler(RandomAssembler(seed=1), small_pools)
        optimal_result = evaluate_assembler(OptimalAssembler(4), small_pools)
        assert (
            optimal_result.mean_extra_program_us < random_result.mean_extra_program_us
        )


class TestRankMethods:
    def test_pair_check_counter(self, small_pools):
        asm = StrMedianAssembler(4)
        asm.assemble(small_pools)
        assert asm.pair_checks > 0
        assert asm.combinations_checked > 0

    def test_perfect_similarity_grouped(self):
        # Construct pools where lanes share identical string patterns for
        # matching block ids: distance-0 partners exist and must be chosen.
        rng = np.random.default_rng(7)
        patterns = [rng.normal(0, 5, size=(4, 4)) for _ in range(4)]
        pools = []
        for lane in range(3):
            blocks = []
            order = rng.permutation(4)
            for position, pattern_id in enumerate(order):
                matrix = 100.0 + patterns[pattern_id] + position * 0.001
                matrix.setflags(write=False)
                blocks.append(
                    BlockMeasurement(lane, 0, int(pattern_id), 0, matrix, 100.0)
                )
            pools.append(LanePool(lane=lane, blocks=blocks))
        superblocks = StrRankAssembler(4).assemble(pools)
        for sb in superblocks:
            pattern_ids = {m.block for m in sb.members}
            assert len(pattern_ids) == 1  # same pattern matched across lanes


class TestRegistry:
    def test_all_methods_constructible(self, small_pools):
        for name, factory in METHOD_REGISTRY.items():
            assembler = factory()
            superblocks = assembler.assemble(small_pools)
            assert superblocks, name
