"""Tenant streams: independence, determinism, and the merged total order."""

from repro.fleet import FleetConfig, fleet_workload, tenant_stream
from repro.fleet.tenants import tenant_profile
from repro.workloads import OpKind

FLEET = FleetConfig(tenants=4, requests_per_tenant=32, profiles=("zipf", "mixed"))
PAGES = 500


class TestTenantStream:
    def test_deterministic(self):
        a = tenant_stream(FLEET, 7, 1, PAGES)
        b = tenant_stream(FLEET, 7, 1, PAGES)
        assert a == b

    def test_tenants_draw_from_independent_streams(self):
        # growing the tenant population must not perturb existing tenants
        small = FleetConfig(**{**FLEET.to_dict(), "tenants": 2})
        assert tenant_stream(small, 7, 0, PAGES) == tenant_stream(FLEET, 7, 0, PAGES)
        assert tenant_stream(FLEET, 7, 0, PAGES) != tenant_stream(FLEET, 7, 2, PAGES)

    def test_seed_forks_the_stream(self):
        assert tenant_stream(FLEET, 7, 0, PAGES) != tenant_stream(FLEET, 8, 0, PAGES)

    def test_lpns_stay_inside_the_tenant_slice(self):
        for tenant in range(FLEET.tenants):
            for request in tenant_stream(FLEET, 7, tenant, PAGES):
                assert 0 <= request.lpn < PAGES

    def test_profiles_cycle_by_tenant(self):
        assert [tenant_profile(FLEET, t) for t in range(4)] == [
            "zipf", "mixed", "zipf", "mixed",
        ]
        # zipf tenants are write-only; mixed tenants issue reads too
        assert all(
            r.op is OpKind.WRITE for r in tenant_stream(FLEET, 7, 0, PAGES)
        )
        assert any(
            r.op is OpKind.READ for r in tenant_stream(FLEET, 7, 1, PAGES)
        )


class TestFleetWorkload:
    def test_merge_is_a_total_order(self):
        merged = fleet_workload(FLEET, 7, PAGES)
        assert len(merged) == FLEET.tenants * FLEET.requests_per_tenant
        keys = [(tr.time_us, tr.tenant, tr.index) for tr in merged]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_merge_is_deterministic(self):
        assert fleet_workload(FLEET, 7, PAGES) == fleet_workload(FLEET, 7, PAGES)

    def test_per_tenant_indices_are_contiguous(self):
        merged = fleet_workload(FLEET, 7, PAGES)
        for tenant in range(FLEET.tenants):
            indices = [tr.index for tr in merged if tr.tenant == tenant]
            assert sorted(indices) == list(range(FLEET.requests_per_tenant))
