"""FleetConfig: validation, serialization, and SimConfig hash stability."""

import json

import pytest

from repro.exp import SimConfig
from repro.fleet import FleetConfig, TENANT_PROFILES


class TestValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"devices": 1}, "at least two devices"),
            ({"replicas": 0}, "replicas"),
            ({"devices": 2, "replicas": 3}, "replicas"),
            ({"tenants": 0}, "tenant"),
            ({"requests_per_tenant": 0}, "requests_per_tenant"),
            ({"interarrival_us": 0.0}, "interarrival_us"),
            ({"profiles": ()}, "profile"),
            ({"profiles": ("zipf", "bogus")}, "unknown tenant profile"),
            ({"read_fraction": 1.5}, "read_fraction"),
            ({"queue_depth": 0}, "queue_depth"),
            ({"deadline_us": 0.0}, "deadline_us"),
            ({"max_retries": -1}, "max_retries"),
            ({"backoff_us": -1.0}, "backoff_us"),
            ({"hedge_quantile": 1.0}, "hedge_quantile"),
            ({"hedge_min_samples": 0}, "hedge_min_samples"),
            ({"breaker_threshold": 0}, "threshold"),
            ({"breaker_window_us": 0.0}, "window"),
            ({"breaker_cooldown_us": 0.0}, "cooldown"),
            ({"eject_hard_faults": 0}, "eject_hard_faults"),
            ({"fault_device": 4}, "fault_device"),
            ({"fault_device": -1}, "fault_device"),
        ],
    )
    def test_bad_field_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FleetConfig(**kwargs)

    def test_profiles_list_coerced_to_tuple(self):
        fleet = FleetConfig(profiles=["zipf", "hotcold"])
        assert fleet.profiles == ("zipf", "hotcold")

    def test_every_registered_profile_is_accepted(self):
        assert FleetConfig(profiles=TENANT_PROFILES).profiles == TENANT_PROFILES


class TestSerialization:
    def test_round_trip(self):
        fleet = FleetConfig(devices=3, replicas=3, profiles=("hotcold",))
        assert FleetConfig.from_dict(fleet.to_dict()) == fleet

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FleetConfig fields"):
            FleetConfig.from_dict({"devices": 2, "turbo": True})

    def test_from_spec_key_values(self):
        fleet = FleetConfig.from_spec(
            "devices=3,replicas=1,tenants=4,profiles=zipf+hotcold,"
            "deadline_us=25000,hedge_quantile=0.9"
        )
        assert fleet.devices == 3
        assert fleet.replicas == 1
        assert fleet.profiles == ("zipf", "hotcold")
        assert fleet.deadline_us == 25000.0
        assert fleet.hedge_quantile == 0.9

    def test_from_spec_json_file(self, tmp_path):
        fleet = FleetConfig(devices=5, tenants=10)
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(fleet.to_dict()), encoding="utf-8")
        assert FleetConfig.from_spec(f"@{path}") == fleet

    @pytest.mark.parametrize(
        "spec", ["", "devices", "warp=9", "devices=two"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FleetConfig.from_spec(spec)


class TestSimConfigIntegration:
    def test_fleet_free_configs_hash_exactly_as_before(self):
        # the fleet field must be invisible when unset: this is the same
        # pinned hash tests/test_backend_identity.py fences
        config = SimConfig.device(seed=7, chips=4, blocks=24, requests=600)
        assert config.content_hash() == "3a5f792a954439f5"
        assert "fleet" not in config.to_dict()

    def test_fleet_field_round_trips_through_simconfig(self):
        fleet = FleetConfig(devices=3, tenants=4)
        config = SimConfig.device(seed=7, chips=4, blocks=24).with_(fleet=fleet)
        data = config.to_dict()
        assert data["fleet"]["devices"] == 3
        rebuilt = SimConfig.from_dict(data)
        assert rebuilt.fleet == fleet
        assert rebuilt.content_hash() == config.content_hash()

    def test_fleet_field_forks_the_hash_when_set(self):
        config = SimConfig.device(seed=7, chips=4, blocks=24)
        with_fleet = config.with_(fleet=FleetConfig())
        assert with_fleet.content_hash() != config.content_hash()
