"""Unit helpers tests."""

import pytest

from repro.utils.units import (
    format_bytes,
    format_us,
    improvement_pct,
    ms_to_us,
    us_to_ms,
    us_to_s,
)


class TestConversions:
    def test_roundtrip(self):
        assert us_to_ms(ms_to_us(3.5)) == pytest.approx(3.5)

    def test_us_to_s(self):
        assert us_to_s(2_000_000) == pytest.approx(2.0)


class TestFormatting:
    def test_format_us_scales(self):
        assert format_us(12.5) == "12.50 us"
        assert format_us(1500) == "1.50 ms"
        assert format_us(2_500_000) == "2.500 s"

    def test_format_us_negative(self):
        assert format_us(-1500) == "-1.50 ms"

    def test_format_bytes_scales(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0 MiB"
        assert "GiB" in format_bytes(5 * 1024**3)
        assert "TiB" in format_bytes(2 * 1024**4)

    def test_format_bytes_negative(self):
        assert format_bytes(-2048) == "-2.0 KiB"


class TestImprovement:
    def test_positive_when_smaller(self):
        assert improvement_pct(100, 80) == pytest.approx(20.0)

    def test_negative_when_larger(self):
        assert improvement_pct(100, 120) == pytest.approx(-20.0)

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_pct(0, 1)
