"""Sensitivity-driver tests (tiny scales; the bench runs the real sweep)."""

import pytest

from repro.analysis.sensitivity import (
    KNOBS,
    evaluate_variant,
    knob_sweep,
    seed_sweep,
)
from repro.nand import SMALL_GEOMETRY, VariationParams

TINY = dict(geometry=SMALL_GEOMETRY, chips=3, pool_blocks=16, seed=5)


class TestKnobs:
    def test_every_knob_applies(self):
        params = VariationParams()
        for name, apply in KNOBS.items():
            scaled = apply(params, 2.0)
            assert scaled != params, name

    def test_unknown_knob(self):
        with pytest.raises(ValueError):
            knob_sweep("bogus")

    def test_knob_scaling_is_multiplicative(self):
        params = VariationParams()
        scaled = KNOBS["wl_noise"](params, 3.0)
        assert scaled.sigma_wl_noise_us == pytest.approx(3 * params.sigma_wl_noise_us)
        both = KNOBS["block_offsets"](params, 0.5)
        assert both.sigma_block_drift_us == pytest.approx(
            0.5 * params.sigma_block_drift_us
        )
        assert both.sigma_block_resid_us == pytest.approx(
            0.5 * params.sigma_block_resid_us
        )


class TestEvaluate:
    def test_point_fields(self):
        point = evaluate_variant("base", VariationParams(), **TINY)
        assert point.label == "base"
        assert point.random_extra_pgm_us > 0
        assert point.qstr_extra_pgm_us > 0
        assert point.qstr_improvement_pct == pytest.approx(
            (1 - point.qstr_extra_pgm_us / point.random_extra_pgm_us) * 100
        )

    def test_knob_sweep_labels(self):
        points = knob_sweep("wl_noise", factors=(1.0,), **TINY)
        assert [p.label for p in points] == ["wl_noise x1"]

    def test_seed_sweep(self):
        points = seed_sweep([1, 2], **{k: v for k, v in TINY.items() if k != "seed"})
        assert [p.label for p in points] == ["seed 1", "seed 2"]
        # different wafers -> different baselines
        assert points[0].random_extra_pgm_us != points[1].random_extra_pgm_us
