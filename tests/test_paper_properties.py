"""End-to-end reproduction properties on the paper geometry.

These tests pin the paper's *qualitative* findings on small-but-real pools
(48 blocks x 4 chips): method orderings, erase coupling, QSTR-MED overhead,
and P/E robustness.  The full-scale numbers live in the benchmarks.
"""

import pytest

from repro.assembly import (
    OptimalAssembler,
    RandomAssembler,
    SequentialAssembler,
    StrMedianAssembler,
    StrRankAssembler,
    evaluate_assembler,
)
from repro.core import QstrMedAssembler, overhead_reduction_pct


@pytest.fixture(scope="module")
def results(paper_pools):
    methods = {
        "random": RandomAssembler(seed=1),
        "sequential": SequentialAssembler(),
        "str_rank8": StrRankAssembler(8),
        "str_rank2": StrRankAssembler(2),
        "str_med4": StrMedianAssembler(4),
        "qstr_med4": QstrMedAssembler(4),
        "optimal8": OptimalAssembler(8),
    }
    return {name: evaluate_assembler(asm, paper_pools) for name, asm in methods.items()}


class TestHeadlineOrdering:
    def test_similarity_methods_beat_random(self, results):
        base = results["random"].mean_extra_program_us
        for name in ("str_rank8", "str_med4", "qstr_med4", "optimal8"):
            assert results[name].mean_extra_program_us < base, name

    def test_optimal_is_best(self, results):
        best = results["optimal8"].mean_extra_program_us
        for name, result in results.items():
            if name != "optimal8":
                assert best <= result.mean_extra_program_us + 1e-9, name

    def test_window_monotonicity(self, results):
        assert (
            results["str_rank8"].mean_extra_program_us
            < results["str_rank2"].mean_extra_program_us
        )

    def test_qstr_comparable_to_str_med(self, results):
        base = results["random"].mean_extra_program_us
        q = results["qstr_med4"].program_improvement_vs(results["random"])
        s = results["str_med4"].program_improvement_vs(results["random"])
        assert abs(q - s) < 6.0
        assert q > 5.0

    def test_erase_improves_with_similarity(self, results):
        assert (
            results["qstr_med4"].mean_extra_erase_us
            < results["random"].mean_extra_erase_us
        )

    def test_sequential_close_to_random_at_small_scale(self, results):
        # Over only 48 consecutive blocks the wafer drift is nearly constant,
        # so sequential's advantage (a ~10% effect at 400-block scale — see
        # the Table I bench) shrinks into the noise; it must at least not be
        # materially worse than random.
        assert results["sequential"].mean_extra_program_us < (
            results["random"].mean_extra_program_us * 1.03
        )


class TestOverheadClaims:
    def test_pair_check_reduction(self, paper_pools):
        qstr = QstrMedAssembler(4)
        qstr.assemble(paper_pools)
        superblocks = min(len(p) for p in paper_pools)
        # 12 pair checks per superblock — (4 lanes - 1) x depth 4 — except
        # the final rounds where catalogs hold fewer than 4 candidates (how
        # many depends on per-lane pool sizes, which bad blocks make uneven).
        assert superblocks * 12 - 40 <= qstr.pair_checks <= superblocks * 12

    def test_headline_9922(self):
        assert overhead_reduction_pct(4, 4, 4) == pytest.approx(99.22, abs=0.01)


class TestDeterminism:
    def test_identical_reruns(self, paper_pools):
        a = evaluate_assembler(QstrMedAssembler(4), paper_pools)
        b = evaluate_assembler(QstrMedAssembler(4), paper_pools)
        assert a.extra_program_us == b.extra_program_us
