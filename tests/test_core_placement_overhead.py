"""Placement policy and overhead accounting tests."""

import pytest

from repro.core.assembler import SpeedClass
from repro.core.overhead import (
    FootprintModel,
    lane_pairs,
    overhead_reduction_pct,
    qstr_med_pair_checks,
    str_med_pair_checks,
)
from repro.core.placement import (
    DEFAULT_POLICY,
    UNIFORM_POLICY,
    PlacementPolicy,
    WriteIntent,
    WriteSource,
)
from repro.nand import PAPER_GEOMETRY
from repro.utils.units import TIB


class TestPlacement:
    def test_default_routing(self):
        assert DEFAULT_POLICY.classify(WriteIntent(WriteSource.HOST)) is SpeedClass.FAST
        assert DEFAULT_POLICY.classify(WriteIntent(WriteSource.GC)) is SpeedClass.SLOW
        assert (
            DEFAULT_POLICY.classify(WriteIntent(WriteSource.METADATA))
            is SpeedClass.SLOW
        )

    def test_uniform_routing(self):
        assert UNIFORM_POLICY.classify(WriteIntent(WriteSource.GC)) is SpeedClass.FAST

    def test_superpage_steering(self):
        policy = PlacementPolicy(small_write_page_limit=4)
        assert policy.prefers_fast_superpage(
            WriteIntent(WriteSource.HOST, pages=2, sequential=False)
        )
        assert not policy.prefers_fast_superpage(
            WriteIntent(WriteSource.HOST, pages=8, sequential=False)
        )
        assert not policy.prefers_fast_superpage(
            WriteIntent(WriteSource.HOST, pages=2, sequential=True)
        )
        assert not policy.prefers_fast_superpage(
            WriteIntent(WriteSource.GC, pages=1)
        )


class TestComputingOverhead:
    """Section VI-B2's headline numbers."""

    def test_lane_pairs(self):
        assert lane_pairs(4) == 6
        with pytest.raises(ValueError):
            lane_pairs(1)

    def test_str_med_1536(self):
        # window 4, four chips: 256 combinations x 6 pairs (the paper's count)
        assert str_med_pair_checks(4, 4) == 1536

    def test_qstr_med_12(self):
        assert qstr_med_pair_checks(4, 4) == 12

    def test_reduction_99_22(self):
        assert overhead_reduction_pct() == pytest.approx(99.22, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            str_med_pair_checks(0, 4)
        with pytest.raises(ValueError):
            qstr_med_pair_checks(1, 4)
        with pytest.raises(ValueError):
            qstr_med_pair_checks(4, 0)


class TestSpaceOverhead:
    """Section VI-D1 / Equation 2."""

    def test_bytes_per_block_52(self):
        model = FootprintModel(PAPER_GEOMETRY)
        # 4 B latency + 384 bits = 48 B eigen -> 52 B (the paper's figure)
        assert model.eigen_bytes_per_block == 48
        assert model.bytes_per_block == 52

    def test_1tb_footprint_megabytes(self):
        model = FootprintModel(PAPER_GEOMETRY)
        footprint = model.footprint_bytes(TIB)
        # paper: ~6.5 MB for a 1 TB SSD of ~8 MB blocks; our geometry's block
        # is 18 MB user data, so the footprint is proportionally smaller but
        # must stay in the single-digit-MB range.
        assert 1_000_000 < footprint < 10_000_000

    def test_fraction_of_dram_tiny(self):
        model = FootprintModel(PAPER_GEOMETRY)
        assert model.footprint_fraction_of_dram() < 0.01

    def test_block_count_rounds_up(self):
        model = FootprintModel(PAPER_GEOMETRY)
        assert model.block_count_for_capacity(1) == 1
