"""State-machine fuzzing of FlashChip: random op streams keep invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nand import SMALL_GEOMETRY, FlashChip, PageType, VariationModel, VariationParams
from repro.nand.errors import (
    FlashError,
    ProgramOrderError,
    ProgramStateError,
    ReadStateError,
)


def make_chip(seed=123):
    params = VariationParams(
        factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
    )
    model = VariationModel(SMALL_GEOMETRY, params, seed=seed)
    return FlashChip(model.chip_profile(0), SMALL_GEOMETRY)


class ChipModel:
    """Reference state: per block, erased flag + next LWL + page contents."""

    def __init__(self):
        self.erased = {}
        self.next_lwl = {}
        self.pages = {}

    def erase(self, block):
        self.erased[block] = True
        self.next_lwl[block] = 0
        self.pages[block] = {}

    def can_program(self, block, lwl):
        return self.erased.get(block, False) and self.next_lwl.get(block, 0) == lwl

    def program(self, block, lwl, payload):
        self.next_lwl[block] = lwl + 1
        self.pages[block][lwl] = payload

    def readable(self, block, lwl):
        return lwl < self.next_lwl.get(block, 0)


ops = st.lists(
    st.tuples(
        st.sampled_from(["erase", "program", "program_bad_order", "read"]),
        st.integers(0, 3),  # block
        st.integers(0, SMALL_GEOMETRY.lwls_per_block - 1),
    ),
    min_size=1,
    max_size=60,
)


class TestChipFuzz:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=ops)
    def test_matches_reference_model(self, stream):
        chip = make_chip()
        model = ChipModel()
        for op, block, lwl in stream:
            if op == "erase":
                chip.erase_block(0, block)
                model.erase(block)
            elif op == "program":
                expected = model.next_lwl.get(block, 0)
                if model.can_program(block, expected) and expected < SMALL_GEOMETRY.lwls_per_block:
                    chip.program_wordline(0, block, expected, {PageType.LSB: (block, expected)})
                    model.program(block, expected, (block, expected))
                else:
                    with pytest.raises((ProgramStateError, ProgramOrderError)):
                        chip.program_wordline(0, block, expected)
            elif op == "program_bad_order":
                expected = model.next_lwl.get(block, 0)
                wrong = (expected + 1) % SMALL_GEOMETRY.lwls_per_block
                if model.erased.get(block, False) and wrong != expected:
                    with pytest.raises(ProgramOrderError):
                        chip.program_wordline(0, block, wrong)
                # model unchanged either way
            else:  # read
                if model.readable(block, lwl):
                    _, payload = chip.read_page(0, block, lwl, PageType.LSB)
                    assert payload == model.pages[block].get(lwl)
                else:
                    with pytest.raises(ReadStateError):
                        chip.read_page(0, block, lwl, PageType.LSB)
        # final sweep: chip agrees with the model everywhere we touched
        for block in model.next_lwl:
            assert chip.programmed_lwls(0, block) == model.next_lwl[block]

    def test_long_random_stream_never_corrupts(self):
        chip = make_chip(7)
        model = ChipModel()
        rng = np.random.default_rng(0)
        for _ in range(3000):
            block = int(rng.integers(4))
            roll = rng.random()
            try:
                if roll < 0.1:
                    chip.erase_block(0, block)
                    model.erase(block)
                elif roll < 0.7:
                    lwl = model.next_lwl.get(block, 0)
                    if lwl < SMALL_GEOMETRY.lwls_per_block:
                        chip.program_wordline(0, block, lwl, {PageType.MSB: lwl})
                        model.program(block, lwl, lwl)
                else:
                    lwl = int(rng.integers(SMALL_GEOMETRY.lwls_per_block))
                    if model.readable(block, lwl):
                        _, payload = chip.read_page(0, block, lwl, PageType.MSB)
                        assert payload == model.pages[block].get(lwl)
            except FlashError as error:
                # only legal rejections may occur
                assert isinstance(
                    error, (ProgramStateError, ProgramOrderError, ReadStateError)
                ), error
