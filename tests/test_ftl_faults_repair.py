"""FTL-level fault recovery: repairs, degraded modes, parity double faults."""

import pytest

from repro.faults import FaultPlan, make_injector
from repro.ftl import Ftl, FtlConfig, IntegrityError
from repro.nand import (
    SMALL_GEOMETRY,
    EccConfig,
    EccEngine,
    FlashChip,
    VariationModel,
    VariationParams,
)

STRONG_ECC = EccConfig()
#: stress level that saturates RBER -> every read on that lane fails
DEAD_PE = 15_000


def build_ftl(
    plan=None,
    *,
    weak_lanes=(),
    lanes=3,
    seed=61,
    blocks=24,
    parity=True,
    repair_policy="qstr",
):
    params = VariationParams(
        factory_bad_ratio=0.0, endurance_cycles=100_000, endurance_sigma_log=0.0
    )
    model = VariationModel(SMALL_GEOMETRY, params, seed=seed)
    chips = []
    for lane in range(lanes):
        chip = FlashChip(
            model.chip_profile(lane),
            SMALL_GEOMETRY,
            ecc=EccEngine(STRONG_ECC, SMALL_GEOMETRY),
            injector=make_injector(plan, seed, lane),
        )
        if lane in weak_lanes:
            for block in range(blocks):
                chip.stress_block(0, block, DEAD_PE)
        chips.append(chip)
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=blocks,
            overprovision_ratio=0.5,
            gc_low_watermark=2,
            gc_high_watermark=3,
            parity_protection=parity,
            repair_policy=repair_policy,
            max_repair_attempts=8,
        ),
    )
    ftl.format()
    return ftl


def write_rounds(ftl, rounds):
    """Sequentially (re)write the whole logical space ``rounds`` times."""
    reports = []
    for _ in range(rounds):
        for lpn in range(ftl.logical_pages):
            reports.extend(ftl.write(lpn))
    reports.extend(ftl.flush())
    return reports


class TestProgramFailRepair:
    def test_repair_path_end_to_end(self):
        plan = FaultPlan(program_fail_prob=0.004)
        ftl = build_ftl(plan)
        reports = write_rounds(ftl, 2)
        metrics = ftl.metrics

        assert metrics.program_failures > 0
        assert metrics.sb_repairs > 0
        assert metrics.blocks_retired >= metrics.sb_repairs
        assert metrics.repair_copy_us.count == metrics.sb_repairs
        # every super word-line on a repaired superblock feeds the
        # degradation metric the repair policy controls
        assert metrics.post_repair_extra_us.count > 0
        # chips agree: grown-bad accounting matches what the FTL retired
        assert sum(c.grown_bad_blocks for c in ftl.chips.values()) > 0
        # zero data loss: every logical page is still readable
        for lpn in range(ftl.logical_pages):
            assert ftl.read(lpn).located

    def test_flush_reports_carry_repair_accounting(self):
        plan = FaultPlan(program_fail_prob=0.004)
        ftl = build_ftl(plan)
        reports = write_rounds(ftl, 2)
        repaired = [r for r in reports if r.repairs]
        assert repaired, "no flush hit the repair path"
        for report in repaired:
            assert len(report.repair_us) == len(report.lane_latencies_us)
            assert sum(report.repair_us) > 0.0
        assert all(r.repair_us == () for r in reports if not r.repairs)

    def test_metrics_summary_exposes_fault_keys_only_when_active(self):
        clean = build_ftl()
        write_rounds(clean, 1)
        assert "program_failures" not in clean.metrics.summary()

        faulted = build_ftl(FaultPlan(program_fail_prob=0.004))
        write_rounds(faulted, 2)
        summary = faulted.metrics.summary()
        assert summary["program_failures"] > 0
        assert summary["sb_repairs"] > 0
        assert "post_repair_extra_mean_us" in summary

    def test_both_repair_policies_absorb_the_same_schedule(self):
        results = {}
        for policy in ("qstr", "random"):
            ftl = build_ftl(
                FaultPlan(program_fail_prob=0.004), repair_policy=policy
            )
            write_rounds(ftl, 2)
            for lpn in range(ftl.logical_pages):
                assert ftl.read(lpn).located
            results[policy] = ftl.metrics
        # the injected schedule is seed-derived, not policy-derived
        assert (
            results["qstr"].program_failures
            == results["random"].program_failures
            > 0
        )

    def test_determinism_under_injection(self):
        def run():
            ftl = build_ftl(FaultPlan(program_fail_prob=0.004))
            write_rounds(ftl, 2)
            return ftl.metrics.summary()

        assert run() == run()


class TestEraseFailDegradation:
    def test_erase_fail_counts_and_degrades(self):
        plan = FaultPlan(erase_fail_prob=0.04)
        ftl = build_ftl(plan)
        # overwrite pressure so GC reclaims (and its erases can fail)
        write_rounds(ftl, 4)
        metrics = ftl.metrics
        assert metrics.erase_failures > 0
        assert metrics.superblocks_degraded > 0
        for lpn in range(ftl.logical_pages):
            assert ftl.read(lpn).located


class TestPlaneOutageDegradation:
    """A whole-plane outage degrades the FTL instead of corrupting it.

    Losing one of two planes halves a lane's pool, so full-capacity
    service cannot continue forever — degradation means the dead plane is
    purged from the allocator (never drafted again), every already-written
    page stays readable (dead-plane rows come back via parity), and a
    bounded working set keeps writing.
    """

    def build(self, tracer=None):
        from repro.faults import KIND_PLANE_OUTAGE, FaultEvent
        from repro.obs import Tracer

        # op 200 lands mid-fill: active superblocks already hold plane-0
        # members, so the next program on one FAILs and triggers the purge
        plan = FaultPlan(
            events=[
                FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, plane=0, at_op=200)
            ]
        )
        params = VariationParams(
            factory_bad_ratio=0.0,
            endurance_cycles=100_000,
            endurance_sigma_log=0.0,
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=61)
        chips = [
            FlashChip(
                model.chip_profile(lane),
                SMALL_GEOMETRY,
                ecc=EccEngine(STRONG_ECC, SMALL_GEOMETRY),
                injector=make_injector(plan, 61, lane),
            )
            for lane in range(3)
        ]
        ftl = Ftl(
            chips,
            FtlConfig(
                usable_blocks_per_plane=10,
                planes_used=2,
                overprovision_ratio=0.6,
                gc_low_watermark=2,
                gc_high_watermark=3,
                parity_protection=True,
                max_repair_attempts=8,
            ),
            tracer=tracer if tracer is not None else Tracer(),
        )
        ftl.format()
        return ftl

    def test_outage_purges_the_plane_and_loses_nothing(self):
        ftl = self.build()
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        ftl.flush()
        metrics = ftl.metrics
        assert metrics.plane_purges == 1
        assert metrics.program_failures >= 1
        assert metrics.sb_repairs >= 1
        # an outage is degradation, not a retirement storm: only the
        # repair's failed member was retired
        assert metrics.blocks_retired == metrics.sb_repairs

        # bounded hot-set overwrites keep flowing in degraded mode
        hot = ftl.buffer.superwl_pages * 2
        for _ in range(3):
            for lpn in range(hot):
                ftl.write(lpn)
        ftl.flush()
        # zero data loss: dead-plane rows reconstruct from parity
        for lpn in range(ftl.logical_pages):
            assert ftl.read(lpn).located

    def test_outage_emits_the_degraded_mode_trace_events(self):
        from repro.obs import Tracer

        tracer = Tracer()
        ftl = self.build(tracer=tracer)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        ftl.flush()
        names = [event.name for event in tracer.events]
        assert "fault_injected" in names
        assert "sb_repaired" in names
        assert "degraded_mode" in names
        degraded = next(
            e for e in tracer.events if e.name == "degraded_mode"
        )
        assert degraded.args["reason"] == "plane_outage"
        assert degraded.args["purged_free_blocks"] > 0


class TestParityDoubleFailures:
    """Satellite coverage of _reconstruct's three failure paths.

    Superblock members are NOT lane-sorted (the allocator orders them by
    catalog), so these tests locate a flushed page whose member/parity/peer
    lanes have the wear pattern each path needs.
    """

    def fill(self, ftl):
        for lpn in range(ftl.buffer.superwl_pages * 3):
            ftl.write(lpn)
        ftl.flush()

    def find_lpn(self, ftl, weak, *, parity_weak, peer_weak=None):
        """An LPN on a weak data member with the requested row geometry."""
        for lpn in range(ftl.logical_pages):
            slot = ftl.mapper.lookup(lpn)
            if slot is None:
                continue
            sb = ftl.table.get(slot.superblock_id)
            location = sb.slot_location(slot.slot)
            if sb.members[location.lane_index].lane not in weak:
                continue
            if (sb.members[sb.parity_lane_index].lane in weak) != parity_weak:
                continue
            peers = [
                sb.members[i].lane
                for i in range(sb.data_lane_count)
                if i != location.lane_index
            ]
            if peer_weak is not None and any(
                lane in weak for lane in peers
            ) != peer_weak:
                continue
            return lpn, slot, sb
        raise AssertionError("no flushed page with the requested geometry")

    def test_data_and_parity_unreadable(self):
        # every lane dead: the degraded read finds no parity row to lean on
        weak = (0, 1, 2)
        ftl = build_ftl(weak_lanes=weak)
        self.fill(ftl)
        lpn, _, _ = self.find_lpn(ftl, weak, parity_weak=True)
        with pytest.raises(IntegrityError, match="data and parity unreadable"):
            ftl.read(lpn)

    def test_peer_lane_unreadable_during_reconstruction(self):
        # the parity row is fine, but a surviving data lane fails mid-rebuild
        weak = (0, 1)
        ftl = build_ftl(weak_lanes=weak, lanes=4)
        self.fill(ftl)
        lpn, _, _ = self.find_lpn(ftl, weak, parity_weak=False, peer_weak=True)
        with pytest.raises(
            IntegrityError, match="double failure during reconstruction"
        ):
            ftl.read(lpn)

    def test_malformed_parity_payload(self):
        weak = (0,)
        ftl = build_ftl(weak_lanes=weak)
        self.fill(ftl)
        lpn, slot, sb = self.find_lpn(ftl, weak, parity_weak=False)
        location = sb.slot_location(slot.slot)
        parity = sb.members[sb.parity_lane_index]
        parity_chip = ftl.chips[parity.lane]
        pages = parity_chip._state(parity.plane, parity.block).pages
        pages[(location.lwl, location.page_type)] = "garbage"
        with pytest.raises(IntegrityError, match="parity page at"):
            ftl.read(lpn)


class TestZeroDataLossUnderFaultStorm:
    TARGET_FAULTS = 110

    @staticmethod
    def injected(ftl):
        return sum(
            chip.injector.injected_program_fails
            + chip.injector.injected_erase_fails
            for chip in ftl.chips.values()
        )

    def test_hundred_plus_faults_lose_nothing(self):
        # Each injected program/erase fail retires a block forever, so the
        # pool must hold ~TARGET_FAULTS spares: 8 lanes x 2 planes x 24
        # blocks at 0.55 OP leaves ~170 drafts before any lane runs dry.
        # The write loop is cut as soon as the target is crossed — the cut
        # point is seed-deterministic because the injectors are.
        plan = FaultPlan(program_fail_prob=0.005, erase_fail_prob=0.003)
        params = VariationParams(
            factory_bad_ratio=0.0,
            endurance_cycles=100_000,
            endurance_sigma_log=0.0,
        )
        model = VariationModel(SMALL_GEOMETRY, params, seed=61)
        chips = [
            FlashChip(
                model.chip_profile(lane),
                SMALL_GEOMETRY,
                ecc=EccEngine(STRONG_ECC, SMALL_GEOMETRY),
                injector=make_injector(plan, 61, lane),
            )
            for lane in range(8)
        ]
        ftl = Ftl(
            chips,
            FtlConfig(
                usable_blocks_per_plane=24,
                planes_used=2,
                overprovision_ratio=0.55,
                gc_low_watermark=2,
                gc_high_watermark=4,
                parity_protection=True,
                max_repair_attempts=8,
            ),
        )
        ftl.format()
        done = False
        for _ in range(12):
            for lpn in range(ftl.logical_pages):
                ftl.write(lpn)
                if lpn % 512 == 0 and self.injected(ftl) >= self.TARGET_FAULTS:
                    done = True
                    break
            if done:
                break
        ftl.flush()

        total = self.injected(ftl)
        assert total >= 100, f"only {total} faults injected"
        assert ftl.metrics.sb_repairs > 0
        # zero data loss: every logical page survived the storm
        for lpn in range(ftl.logical_pages):
            assert ftl.read(lpn).located
