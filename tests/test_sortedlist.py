"""SortedKeyList unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.sortedlist import SortedKeyList


def make(items=()):
    return SortedKeyList(items, key=lambda x: x)


class TestBasics:
    def test_initial_sort(self):
        assert list(make([3, 1, 2])) == [1, 2, 3]

    def test_add_returns_position(self):
        lst = make([1, 3])
        assert lst.add(2) == 1
        assert list(lst) == [1, 2, 3]

    def test_ties_keep_insertion_order(self):
        lst = SortedKeyList(key=lambda pair: pair[0])
        lst.add((1, "a"))
        lst.add((1, "b"))
        lst.add((1, "c"))
        assert [x[1] for x in lst] == ["a", "b", "c"]

    def test_pop_head_tail(self):
        lst = make([2, 1, 3])
        assert lst.pop_head() == 1
        assert lst.pop_tail() == 3
        assert list(lst) == [2]

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            make().pop_head()
        with pytest.raises(IndexError):
            make().pop_tail()

    def test_head_tail_views(self):
        lst = make([5, 1, 4, 2, 3])
        assert lst.head(2) == [1, 2]
        assert lst.tail(2) == [4, 5]
        assert lst.tail(0) == []
        assert lst.head(10) == [1, 2, 3, 4, 5]

    def test_remove(self):
        lst = make([1, 2, 2, 3])
        lst.remove(2)
        assert list(lst) == [1, 2, 3]

    def test_remove_absent(self):
        with pytest.raises(ValueError):
            make([1]).remove(2)

    def test_contains_and_index(self):
        lst = make([10, 20, 30])
        assert 20 in lst
        assert 25 not in lst
        assert lst.index_of(30) == 2
        assert lst.index_of(5) is None

    def test_getitem(self):
        lst = make([3, 1, 2])
        assert lst[0] == 1
        assert lst[-1] == 3
        assert lst[0:2] == [1, 2]

    def test_remove_distinct_objects_same_key(self):
        lst = SortedKeyList(key=lambda pair: pair[0])
        a, b = (1, "a"), (1, "b")
        lst.add(a)
        lst.add(b)
        lst.remove(b)
        assert list(lst) == [a]


class TestProperties:
    @given(st.lists(st.integers(-100, 100)))
    def test_always_sorted(self, values):
        lst = make()
        for v in values:
            lst.add(v)
        assert list(lst) == sorted(values)

    @given(st.lists(st.integers(-50, 50), min_size=1))
    def test_pop_head_is_min(self, values):
        lst = make(values)
        assert lst.pop_head() == min(values)

    @given(st.lists(st.integers(-50, 50), min_size=1), st.data())
    def test_remove_keeps_order(self, values, data):
        lst = make(values)
        victim = data.draw(st.sampled_from(values))
        lst.remove(victim)
        remaining = list(values)
        remaining.remove(victim)
        assert list(lst) == sorted(remaining)
