"""Flash command-set tests."""

import pytest

from repro.nand import SMALL_GEOMETRY, FlashChip, PageType, VariationModel, VariationParams
from repro.nand.commands import (
    CommandKind,
    CommandLog,
    EraseTarget,
    FlashCommand,
    ProgramTarget,
    ReadTarget,
    erase_command,
    execute,
    program_command,
    read_command,
)
from repro.nand.errors import MultiPlaneError


@pytest.fixture()
def chip():
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=8
    )
    return FlashChip(model.chip_profile(0), SMALL_GEOMETRY)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(MultiPlaneError):
            FlashCommand(CommandKind.ERASE, ())

    def test_kind_target_mismatch(self):
        with pytest.raises(MultiPlaneError):
            FlashCommand(CommandKind.ERASE, (ReadTarget(0, 0, 0, PageType.LSB),))

    def test_duplicate_planes(self):
        with pytest.raises(MultiPlaneError):
            erase_command(EraseTarget(0, 1), EraseTarget(0, 2))

    def test_multi_plane_flag(self):
        assert not erase_command(EraseTarget(0, 0)).is_multi_plane
        assert erase_command(EraseTarget(0, 0), EraseTarget(1, 0)).is_multi_plane


class TestExecution:
    def test_erase_then_program_then_read(self, chip):
        erase = execute(chip, erase_command(EraseTarget(0, 0), EraseTarget(1, 0)))
        assert erase.kind is CommandKind.ERASE
        assert erase.completion_us == max(erase.plane_latencies_us)
        assert erase.extra_latency_us >= 0

        program = execute(
            chip,
            program_command(
                ProgramTarget(0, 0, 0, {PageType.LSB: "a"}),
                ProgramTarget(1, 0, 0, {PageType.LSB: "b"}),
            ),
        )
        assert program.completion_us == max(program.plane_latencies_us)

        read = execute(
            chip,
            read_command(
                ReadTarget(0, 0, 0, PageType.LSB), ReadTarget(1, 0, 0, PageType.LSB)
            ),
        )
        assert read.payloads == ("a", "b")

    def test_single_plane_extra_zero(self, chip):
        result = execute(chip, erase_command(EraseTarget(0, 3)))
        assert result.extra_latency_us == 0.0

    def test_matches_chip_multiplane(self, chip):
        # command layer and chip-level MP helper must agree on semantics
        via_cmd = execute(chip, erase_command(EraseTarget(0, 4), EraseTarget(1, 4)))
        other = FlashChip(chip.profile, SMALL_GEOMETRY)
        via_chip = other.multiplane_erase([(0, 4), (1, 4)])
        assert via_cmd.completion_us == via_chip.latency_us
        assert via_cmd.extra_latency_us == via_chip.extra_latency_us


class TestCommandLog:
    def test_records_and_aggregates(self, chip):
        log = CommandLog()
        log.execute(chip, erase_command(EraseTarget(0, 5), EraseTarget(1, 5)))
        log.execute(
            chip,
            program_command(ProgramTarget(0, 5, 0), ProgramTarget(1, 5, 0)),
        )
        assert log.count() == 2
        assert log.count(CommandKind.ERASE) == 1
        assert log.count(CommandKind.PROGRAM) == 1
        assert log.total_extra_latency_us() >= 0
