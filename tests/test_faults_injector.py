"""FaultInjector behaviour: null object, scheduled events, seeded streams."""

from repro.faults import (
    KIND_ERASE_FAIL,
    KIND_PLANE_OUTAGE,
    KIND_PROGRAM_FAIL,
    KIND_READ_STORM,
    NULL_INJECTOR,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NullInjector,
    make_injector,
)


class TestNullInjector:
    def test_is_disabled_and_inert(self):
        assert not NULL_INJECTOR.enabled
        NULL_INJECTOR.advance(123.0)
        assert not NULL_INJECTOR.fail_program(0, 0)
        assert not NULL_INJECTOR.fail_erase(0, 0)
        assert NULL_INJECTOR.read_rber_multiplier(0, 0) == 1.0
        assert not NULL_INJECTOR.plane_dead(0)

    def test_make_injector_returns_null_for_null_plans(self):
        assert make_injector(None, 7, 0) is NULL_INJECTOR
        assert make_injector(FaultPlan.none(), 7, 0) is NULL_INJECTOR
        assert isinstance(NULL_INJECTOR, NullInjector)

    def test_make_injector_returns_live_for_real_plans(self):
        injector = make_injector(FaultPlan(program_fail_prob=0.5), 7, 0)
        assert isinstance(injector, FaultInjector)
        assert injector.enabled


class TestScheduledEvents:
    def test_program_fail_at_op(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=2)]
        )
        injector = make_injector(plan, 7, 0)
        # op indices 0,1 pass; op 2 fails; subsequent ops pass (one-shot)
        assert not injector.fail_program(0, 0)
        assert not injector.fail_program(0, 0)
        assert injector.fail_program(0, 0)
        assert not injector.fail_program(0, 0)
        assert injector.injected_program_fails == 1

    def test_event_for_other_chip_never_fires(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=3, at_op=0)]
        )
        injector = make_injector(plan, 7, 0)
        assert not any(injector.fail_program(0, 0) for _ in range(10))

    def test_plane_and_block_narrowing(self):
        # Time-armed events stay pending until an op touches plane 1, block 5.
        plan = FaultPlan(
            events=[
                FaultEvent(
                    kind=KIND_PROGRAM_FAIL, chip=0, plane=1, block=5,
                    at_time_us=0.0,
                )
            ]
        )
        injector = make_injector(plan, 7, 0)
        assert not injector.fail_program(0, 5)
        assert not injector.fail_program(1, 4)
        assert injector.fail_program(1, 5)
        # one-shot: consumed after firing
        assert not injector.fail_program(1, 5)

    def test_op_scheduled_event_is_exact_match(self):
        # at_op is an exact index: if the plane mismatches at that op, the
        # window is gone and the event never fires.
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, plane=1, at_op=0)]
        )
        injector = make_injector(plan, 7, 0)
        assert not injector.fail_program(0, 0)
        assert not any(injector.fail_program(1, 0) for _ in range(5))

    def test_erase_fail_uses_its_own_op_counter(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_ERASE_FAIL, chip=0, at_op=1)]
        )
        injector = make_injector(plan, 7, 0)
        # program ops do not advance the erase counter
        for _ in range(5):
            assert not injector.fail_program(0, 0)
        assert not injector.fail_erase(0, 0)
        assert injector.fail_erase(0, 0)
        assert injector.injected_erase_fails == 1

    def test_time_triggered_event(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_time_us=100.0)]
        )
        injector = make_injector(plan, 7, 0)
        assert not injector.fail_program(0, 0)
        injector.advance(99.0)
        assert not injector.fail_program(0, 0)
        injector.advance(101.0)
        assert injector.fail_program(0, 0)

    def test_plane_outage(self):
        plan = FaultPlan(
            events=[FaultEvent(kind=KIND_PLANE_OUTAGE, chip=0, plane=1, at_op=1)]
        )
        injector = make_injector(plan, 7, 0)
        assert not injector.plane_dead(1)
        # the outage triggers when the total-op clock reaches the event AND
        # the operation touches the dying plane
        assert not injector.fail_program(1, 0)
        assert injector.plane_dead(1)
        assert not injector.plane_dead(0)
        assert injector.injected_plane_outages == 1

    def test_read_storm_window(self):
        plan = FaultPlan(
            events=[
                FaultEvent(
                    kind=KIND_READ_STORM, chip=0, at_op=0, duration_ops=2,
                    rber_multiplier=40.0,
                )
            ]
        )
        injector = make_injector(plan, 7, 0)
        assert injector.read_rber_multiplier(0, 0) == 40.0
        assert injector.read_rber_multiplier(0, 0) == 40.0
        # window exhausted after duration_ops elevated reads
        assert injector.read_rber_multiplier(0, 0) == 1.0
        assert injector.injected_read_storms == 1


class TestSeededStreams:
    def test_probabilistic_failures_are_deterministic(self):
        plan = FaultPlan(program_fail_prob=0.3, erase_fail_prob=0.2)
        first = make_injector(plan, 11, 2)
        second = make_injector(plan, 11, 2)
        program = [first.fail_program(0, 0) for _ in range(200)]
        assert program == [second.fail_program(0, 0) for _ in range(200)]
        erase = [first.fail_erase(0, 0) for _ in range(200)]
        assert erase == [second.fail_erase(0, 0) for _ in range(200)]
        assert any(program) and not all(program)
        assert any(erase) and not all(erase)

    def test_streams_differ_across_chips_and_seeds(self):
        plan = FaultPlan(program_fail_prob=0.3)

        def draws(seed, chip):
            injector = make_injector(plan, seed, chip)
            return tuple(injector.fail_program(0, 0) for _ in range(128))

        assert draws(11, 0) != draws(11, 1)
        assert draws(11, 0) != draws(12, 0)

    def test_program_and_erase_streams_are_independent(self):
        plan = FaultPlan(program_fail_prob=0.3, erase_fail_prob=0.3)
        mixed = make_injector(plan, 11, 0)
        pure = make_injector(plan, 11, 0)
        # interleaving erase draws must not perturb the program stream
        mixed_program = []
        for _ in range(100):
            mixed.fail_erase(0, 0)
            mixed_program.append(mixed.fail_program(0, 0))
        assert mixed_program == [pure.fail_program(0, 0) for _ in range(100)]

    def test_fault_counters_accumulate(self):
        plan = FaultPlan(program_fail_prob=0.5)
        injector = make_injector(plan, 11, 0)
        fails = sum(injector.fail_program(0, 0) for _ in range(100))
        assert injector.injected_program_fails == fails > 0
