"""BitVector unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvec import BitVector

bit_lists = st.lists(st.integers(0, 1), min_size=0, max_size=200)


class TestConstruction:
    def test_from_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1]
        assert BitVector(bits).to_bits() == bits

    def test_zeros_and_ones(self):
        assert BitVector.zeros(5).popcount() == 0
        assert BitVector.ones(5).popcount() == 5
        assert len(BitVector.zeros(0)) == 0

    def test_from_string_ignores_spacing(self):
        assert BitVector.from_string("1001 0011") == BitVector([1, 0, 0, 1, 0, 0, 1, 1])
        assert BitVector.from_string("10_01") == BitVector([1, 0, 0, 1])

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            BitVector([0, 2])

    def test_raw_value_needs_length(self):
        with pytest.raises(ValueError):
            BitVector(value=5)

    def test_raw_value_too_wide(self):
        with pytest.raises(ValueError):
            BitVector(length=2, value=5)

    def test_raw_value_negative(self):
        with pytest.raises(ValueError):
            BitVector(length=4, value=-1)

    def test_declared_length_pads(self):
        v = BitVector([1], length=4)
        assert len(v) == 4
        assert v.to_bits() == [1, 0, 0, 0]

    def test_declared_length_too_small(self):
        with pytest.raises(ValueError):
            BitVector([1, 1, 1], length=2)


class TestOperations:
    def test_xor_and_popcount(self):
        a = BitVector.from_string("1100")
        b = BitVector.from_string("1010")
        assert (a ^ b) == BitVector.from_string("0110")
        assert a.hamming_distance(b) == 2

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            BitVector([1]) ^ BitVector([1, 0])

    def test_concat_order(self):
        joined = BitVector.concat([BitVector([1, 0]), BitVector([0, 1, 1])])
        assert joined.to_bits() == [1, 0, 0, 1, 1]

    def test_concat_empty(self):
        assert len(BitVector.concat([])) == 0

    def test_indexing(self):
        v = BitVector([1, 0, 1])
        assert v[0] == 1 and v[1] == 0 and v[2] == 1
        assert v[-1] == 1
        with pytest.raises(IndexError):
            v[3]

    def test_slicing(self):
        v = BitVector([1, 0, 1, 1])
        assert v[1:3] == BitVector([0, 1])

    def test_to_string_groups(self):
        assert BitVector([1, 0, 0, 1, 0, 0, 1, 1]).to_string() == "1001 0011"
        assert BitVector([1, 0, 1]).to_string(group=0) == "101"

    def test_hash_and_eq(self):
        assert BitVector([1, 0]) == BitVector([1, 0])
        assert BitVector([1, 0]) != BitVector([1, 0, 0])
        assert hash(BitVector([1, 0])) == hash(BitVector([1, 0]))

    def test_eq_other_type(self):
        assert BitVector([1]) != "1"


class TestProperties:
    @given(bit_lists)
    def test_roundtrip(self, bits):
        assert BitVector(bits).to_bits() == bits

    @given(bit_lists)
    def test_popcount_is_sum(self, bits):
        assert BitVector(bits).popcount() == sum(bits)

    @given(bit_lists)
    def test_xor_self_is_zero(self, bits):
        v = BitVector(bits)
        assert (v ^ v).popcount() == 0

    @given(bit_lists, st.integers(0, 5))
    def test_distance_symmetric(self, bits, flips):
        a = BitVector(bits)
        other = list(bits)
        for i in range(min(flips, len(other))):
            other[i] ^= 1
        b = BitVector(other)
        assert a.hamming_distance(b) == b.hamming_distance(a)

    @given(st.lists(bit_lists, min_size=1, max_size=5))
    def test_concat_length(self, parts):
        vectors = [BitVector(p) for p in parts]
        assert len(BitVector.concat(vectors)) == sum(len(p) for p in parts)

    @given(bit_lists, bit_lists, bit_lists)
    def test_triangle_inequality(self, xs, ys, zs):
        n = min(len(xs), len(ys), len(zs))
        a, b, c = BitVector(xs[:n]), BitVector(ys[:n]), BitVector(zs[:n])
        assert a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c)
