"""Characterization harness tests: datasets, prober, statistics."""

import numpy as np
import pytest

from repro.characterization import (
    BlockMeasurement,
    ChipDataset,
    MeasurementSet,
    ProbePlan,
    Prober,
    mean_lwl_curve,
    probe_testbed,
    residual_trend_correlation,
    variability_report,
    wordline_trend_correlation,
)
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams

from tests.conftest import make_chips


def make_measurement(chip_id=0, plane=0, block=0, value=10.0, ers=100.0, shape=(4, 4)):
    matrix = np.full(shape, value)
    matrix.setflags(write=False)
    return BlockMeasurement(
        chip_id=chip_id,
        plane=plane,
        block=block,
        pe_cycles=0,
        wl_latencies_us=matrix,
        erase_latency_us=ers,
    )


class TestBlockMeasurement:
    def test_program_total(self):
        m = make_measurement(value=2.0, shape=(3, 4))
        assert m.program_total_us == pytest.approx(24.0)

    def test_lwl_flattening_layer_major(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        matrix.setflags(write=False)
        m = BlockMeasurement(0, 0, 0, 0, matrix, 1.0)
        assert list(m.lwl_latencies()[:4]) == [0.0, 1.0, 2.0, 3.0]

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            BlockMeasurement(0, 0, 0, 0, np.zeros(4), 1.0)

    def test_key_and_repr(self):
        m = make_measurement(chip_id=2, plane=1, block=7)
        assert m.key() == (2, 1, 7)
        assert "c2/p1/b7" in repr(m)


class TestDatasets:
    def test_chip_dataset_guards_chip_id(self):
        dataset = ChipDataset(chip_id=1)
        with pytest.raises(ValueError):
            dataset.add(make_measurement(chip_id=0))

    def test_measurement_set_index(self):
        ms = MeasurementSet()
        ms.add(make_measurement(chip_id=0, block=1))
        ms.add(make_measurement(chip_id=1, block=2))
        assert len(ms) == 2
        assert ms.chip_ids() == [0, 1]
        assert ms.get(0, 0, 1) is not None
        assert ms.get(0, 0, 9) is None
        with pytest.raises(KeyError):
            ms.chip(5)

    def test_erase_series_and_totals(self):
        dataset = ChipDataset(chip_id=0)
        dataset.add(make_measurement(block=3, ers=50.0))
        assert dataset.erase_series() == [(0, 3, 50.0)]
        assert dataset.program_totals().shape == (1,)
        assert dataset.for_plane(0)[0].block == 3
        assert dataset.for_plane(1) == []


class TestProber:
    @pytest.fixture()
    def chip(self, small_model):
        return make_chips(small_model, 1)[0]

    def test_probe_block_shapes(self, chip):
        prober = Prober(chip)
        m = prober.probe_block(0, 0)
        g = SMALL_GEOMETRY
        assert m.wl_latencies_us.shape == (g.layers_per_block, g.strings_per_layer)
        assert m.erase_latency_us > 0
        assert m.pe_cycles == 1  # the probe erased once

    def test_probe_matches_chip_state(self, chip):
        prober = Prober(chip)
        prober.probe_block(0, 1)
        assert chip.is_fully_programmed(0, 1)

    def test_probe_plan_skips_bad(self):
        params = VariationParams(factory_bad_ratio=0.5)
        model = VariationModel(SMALL_GEOMETRY, params, seed=9)
        chip = FlashChip(model.chip_profile(0), SMALL_GEOMETRY)
        prober = Prober(chip)
        results = prober.probe_blocks(ProbePlan(planes=[0], blocks=range(10)))
        assert all(not chip.is_bad(0, m.block) for m in results)
        assert len(results) < 10

    def test_bring_to_pe(self, chip):
        prober = Prober(chip)
        prober.bring_to_pe(0, 2, 50)
        assert chip.pe_cycles(0, 2) == 50
        with pytest.raises(ValueError):
            prober.bring_to_pe(0, 2, 10)

    def test_probe_at_pe(self, chip):
        prober = Prober(chip)
        m = prober.probe_block_at_pe(0, 3, 100)
        assert m.pe_cycles == 101

    def test_probe_testbed(self, small_model):
        chips = make_chips(small_model, 2)
        ms = probe_testbed(chips, planes=[0], blocks=range(4))
        assert len(ms) <= 8
        assert set(ms.chip_ids()) <= {0, 1}


class TestStatistics:
    def test_variability_report(self, small_pools):
        ms = MeasurementSet()
        for pool in small_pools:
            for m in pool.blocks:
                # pools reuse chips 0..3 as lanes; measurement chip ids match
                ms.add(m)
        report = variability_report(ms, "program_total")
        assert report.within_chip_std > 0
        assert report.cross_chip_std > 0
        assert report.cross_to_within_ratio > 0

    def test_variability_requires_two_chips(self):
        ms = MeasurementSet()
        ms.add(make_measurement(chip_id=0))
        with pytest.raises(ValueError):
            variability_report(ms)

    def test_unknown_metric(self):
        ms = MeasurementSet()
        ms.add(make_measurement(chip_id=0))
        ms.add(make_measurement(chip_id=1))
        with pytest.raises(ValueError):
            variability_report(ms, "bogus")

    def test_trend_correlation_same_block(self, small_pools):
        m = small_pools[0].blocks[0]
        assert wordline_trend_correlation(m, m) == pytest.approx(1.0)

    def test_trend_correlation_within_vs_residual(self, small_pools):
        a, b = small_pools[0].blocks[0], small_pools[1].blocks[0]
        raw = wordline_trend_correlation(a, b)
        common = mean_lwl_curve([m for pool in small_pools for m in pool.blocks])
        residual = residual_trend_correlation(a, b, common)
        # The common layer shape dominates raw correlation across chips;
        # removing it exposes the chip difference.
        assert raw > residual

    def test_mean_curve_empty(self):
        with pytest.raises(ValueError):
            mean_lwl_curve([])

    def test_constant_curves(self):
        a = make_measurement(value=5.0)
        b = make_measurement(value=5.0)
        assert wordline_trend_correlation(a, b) == 1.0
