"""On-demand QSTR-MED assembler tests."""

import pytest

from repro.core.assembler import AssemblyError, OnDemandAssembler, SpeedClass
from repro.core.catalog import BlockCatalog
from repro.core.records import BlockRecord
from repro.utils.bitvec import BitVector


def record(lane, block, pgm, bits):
    return BlockRecord(lane, 0, block, float(pgm), BitVector(bits))


def build_catalogs():
    """Three lanes with known latencies and eigens.

    Lane 0 holds the globally fastest block (pgm 100) with eigen 1100;
    lanes 1/2 each have one head-4 candidate with a matching eigen.
    """
    catalogs = [BlockCatalog(lane) for lane in range(3)]
    eigens = {
        "match": [1, 1, 0, 0],
        "near": [1, 0, 0, 0],
        "far": [0, 0, 1, 1],
    }
    catalogs[0].add(record(0, 0, 100, eigens["match"]))
    catalogs[0].add(record(0, 1, 500, eigens["far"]))
    catalogs[0].add(record(0, 2, 600, eigens["far"]))
    for lane in (1, 2):
        catalogs[lane].add(record(lane, 0, 200, eigens["far"]))
        catalogs[lane].add(record(lane, 1, 210, eigens["near"]))
        catalogs[lane].add(record(lane, 2, 220, eigens["match"]))
    return catalogs


class TestConstruction:
    def test_needs_two_lanes(self):
        with pytest.raises(ValueError):
            OnDemandAssembler([BlockCatalog(0)])

    def test_duplicate_lanes(self):
        with pytest.raises(ValueError):
            OnDemandAssembler([BlockCatalog(0), BlockCatalog(0)])

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            OnDemandAssembler([BlockCatalog(0), BlockCatalog(1)], candidate_depth=0)


class TestFastAssembly:
    def test_reference_is_global_fastest(self):
        assembler = OnDemandAssembler(build_catalogs(), candidate_depth=4)
        choice = assembler.assemble(SpeedClass.FAST)
        assert choice.reference_lane == 0
        assert choice.member_for_lane(0).block == 0

    def test_candidates_chosen_by_eigen_distance(self):
        assembler = OnDemandAssembler(build_catalogs(), candidate_depth=4)
        choice = assembler.assemble(SpeedClass.FAST)
        # lanes 1 and 2 must pick the "match" eigen (block 2), not their
        # fastest block (block 0, "far" eigen)
        assert choice.member_for_lane(1).block == 2
        assert choice.member_for_lane(2).block == 2

    def test_depth_limits_candidates(self):
        # with depth 1 only the head is considered: latency order wins
        assembler = OnDemandAssembler(build_catalogs(), candidate_depth=1)
        choice = assembler.assemble(SpeedClass.FAST)
        assert choice.member_for_lane(1).block == 0

    def test_pair_check_count(self):
        assembler = OnDemandAssembler(build_catalogs(), candidate_depth=3)
        choice = assembler.assemble(SpeedClass.FAST)
        # 2 other lanes x 3 candidates
        assert choice.pair_checks == 6
        assert assembler.total_pair_checks == 6
        assert assembler.assembled_count == 1

    def test_members_consumed(self):
        catalogs = build_catalogs()
        assembler = OnDemandAssembler(catalogs, candidate_depth=4)
        choice = assembler.assemble(SpeedClass.FAST)
        for member in choice.members:
            assert member not in catalogs[member.lane]

    def test_member_for_lane_missing(self):
        assembler = OnDemandAssembler(build_catalogs())
        choice = assembler.assemble(SpeedClass.FAST)
        with pytest.raises(KeyError):
            choice.member_for_lane(99)


class TestSlowAssembly:
    def test_reference_is_global_slowest(self):
        assembler = OnDemandAssembler(build_catalogs(), candidate_depth=4)
        choice = assembler.assemble(SpeedClass.SLOW)
        assert choice.reference_lane == 0
        assert choice.member_for_lane(0).block == 2  # pgm 600


class TestExhaustion:
    def test_can_assemble_and_errors(self):
        catalogs = build_catalogs()
        assembler = OnDemandAssembler(catalogs, candidate_depth=4)
        assert assembler.can_assemble()
        for _ in range(3):
            assembler.assemble(SpeedClass.FAST)
        assert not assembler.can_assemble()
        with pytest.raises(AssemblyError):
            assembler.assemble(SpeedClass.FAST)

    def test_release_restores(self):
        catalogs = build_catalogs()
        assembler = OnDemandAssembler(catalogs, candidate_depth=4)
        choice = assembler.assemble(SpeedClass.FAST)
        assembler.release(choice.members)
        assert assembler.can_assemble()
        assert len(catalogs[0]) == 3

    def test_drain_consumes_everything(self):
        catalogs = build_catalogs()
        assembler = OnDemandAssembler(catalogs, candidate_depth=4)
        seen = set()
        while assembler.can_assemble():
            choice = assembler.assemble(SpeedClass.FAST)
            for member in choice.members:
                key = member.key()
                assert key not in seen
                seen.add(key)
        assert len(seen) == 9
