"""Evaluation harness tests."""

import pytest

from repro.assembly import (
    RandomAssembler,
    StrMedianAssembler,
    compare_methods,
    evaluate_assembler,
)
from repro.assembly.evaluate import MethodResult


class TestMethodResult:
    def test_aggregates(self):
        result = MethodResult(name="x", extra_program_us=[10.0, 20.0], extra_erase_us=[1.0, 3.0])
        assert result.superblock_count == 2
        assert result.mean_extra_program_us == pytest.approx(15.0)
        assert result.mean_extra_erase_us == pytest.approx(2.0)

    def test_improvements(self):
        baseline = MethodResult("base", [100.0], [10.0])
        better = MethodResult("better", [80.0], [5.0])
        assert better.program_improvement_vs(baseline) == pytest.approx(20.0)
        assert better.erase_improvement_vs(baseline) == pytest.approx(50.0)
        assert better.program_reduction_vs(baseline) == pytest.approx(20.0)


class TestEvaluate:
    def test_collects_per_superblock(self, small_pools):
        result = evaluate_assembler(RandomAssembler(seed=0), small_pools)
        assert result.superblock_count == min(len(p) for p in small_pools)
        assert all(v >= 0 for v in result.extra_program_us)
        assert all(v >= 0 for v in result.extra_erase_us)

    def test_overhead_counters_copied(self, small_pools):
        result = evaluate_assembler(StrMedianAssembler(4), small_pools)
        assert result.pair_checks > 0

    def test_compare_methods(self, small_pools):
        results = compare_methods(
            [RandomAssembler(seed=0), StrMedianAssembler(4)], small_pools
        )
        assert set(results) == {"random", "str_med(4)"}

    def test_same_pools_reused(self, small_pools):
        # evaluation must not consume/mutate the pools
        before = [len(p) for p in small_pools]
        evaluate_assembler(RandomAssembler(seed=0), small_pools)
        evaluate_assembler(StrMedianAssembler(4), small_pools)
        assert [len(p) for p in small_pools] == before
