"""Superpage-steering integration tests (Section V-D express/bulk streams)."""

import numpy as np
import pytest

from repro.core import WriteIntent, WriteSource
from repro.ftl import Ftl, FtlConfig, WriteStream
from repro.nand import FlashChip, NandGeometry, VariationModel, VariationParams

GEOM = NandGeometry(
    planes_per_chip=1,
    blocks_per_plane=48,
    layers_per_block=24,
    strings_per_layer=4,
    bits_per_cell=3,
)

SMALL = WriteIntent(WriteSource.HOST, pages=1, sequential=False)
BIG = WriteIntent(WriteSource.HOST, pages=32, sequential=True)


def build_ftl(steering=True, seed=5, blocks=40):
    model = VariationModel(GEOM, VariationParams(factory_bad_ratio=0.0), seed=seed)
    chips = [FlashChip(model.chip_profile(c), GEOM) for c in range(4)]
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=blocks,
            overprovision_ratio=0.3,
            gc_low_watermark=3,
            gc_high_watermark=5,
            superpage_steering=steering,
        ),
    )
    ftl.format()
    return ftl


class TestWriteStream:
    def test_speed_classes(self):
        from repro.core import SpeedClass

        assert WriteStream.SLOW.speed_class is SpeedClass.SLOW
        for stream in (WriteStream.FAST, WriteStream.FAST_EXPRESS, WriteStream.FAST_BULK):
            assert stream.speed_class is SpeedClass.FAST

    def test_steered_flags(self):
        assert WriteStream.FAST_EXPRESS.steered
        assert WriteStream.FAST_BULK.steered
        assert not WriteStream.FAST.steered
        assert not WriteStream.SLOW.steered


class TestStreamRouting:
    def test_predictor_only_with_steering(self):
        assert build_ftl(steering=True).predictor is not None
        assert build_ftl(steering=False).predictor is None

    def test_small_vs_big_streams(self):
        ftl = build_ftl(steering=True)
        assert ftl._stream_for(SMALL) is WriteStream.FAST_EXPRESS
        assert ftl._stream_for(BIG) is WriteStream.FAST_BULK
        assert (
            ftl._stream_for(WriteIntent(WriteSource.GC)) is WriteStream.SLOW
        )

    def test_steering_off_uses_plain_fast(self):
        ftl = build_ftl(steering=False)
        assert ftl._stream_for(SMALL) is WriteStream.FAST
        assert ftl._stream_for(BIG) is WriteStream.FAST

    def test_intent_source_mismatch_rejected(self):
        ftl = build_ftl(steering=False, blocks=12)
        with pytest.raises(ValueError):
            ftl.write(0, WriteSource.GC, intent=SMALL)


class TestSteeredDataPath:
    def test_express_lands_on_faster_superpages(self):
        ftl = build_ftl(steering=True)
        rng = np.random.default_rng(0)
        for lpn in range(ftl.logical_pages):
            intent = SMALL if rng.random() < 0.5 else BIG
            ftl.write(lpn, WriteSource.HOST, intent=intent)
        ftl.flush()
        express = ftl.metrics.stream_write_us[WriteStream.FAST_EXPRESS.value]
        bulk = ftl.metrics.stream_write_us[WriteStream.FAST_BULK.value]
        assert express.count > 100 and bulk.count > 100
        # the steering objective: small random writes see faster superpages
        assert express.mean < bulk.mean

    def test_integrity_with_steering_and_gc(self):
        ftl = build_ftl(steering=True)
        rng = np.random.default_rng(1)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn, WriteSource.HOST, intent=BIG)
        for _ in range(int(ftl.logical_pages * 0.8)):
            ftl.write(int(rng.integers(ftl.logical_pages)), WriteSource.HOST, intent=SMALL)
        ftl.flush()
        assert ftl.metrics.gc_runs > 0
        for lpn in rng.choice(ftl.logical_pages, size=100, replace=False):
            assert ftl.read(int(lpn)).located  # IntegrityError on corruption

    def test_two_fast_superblocks_open(self):
        ftl = build_ftl(steering=True)
        # force one flush on each steered stream
        for lpn in range(ftl.buffer.superwl_pages):
            ftl.write(lpn, WriteSource.HOST, intent=SMALL)
        for lpn in range(100, 100 + ftl.buffer.superwl_pages):
            ftl.write(lpn, WriteSource.HOST, intent=BIG)
        assert len(set(ftl._fast_pair)) == 2

    def test_stream_metrics_labels(self):
        ftl = build_ftl(steering=False, blocks=12)
        for lpn in range(ftl.buffer.superwl_pages):
            ftl.write(lpn)
        ftl.flush()
        assert WriteStream.FAST.value in ftl.metrics.stream_write_us
