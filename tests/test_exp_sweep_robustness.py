"""Sweep harness robustness: timeouts, bounded retries, failure rows."""

import os
import time

import pytest

from repro.exp import ResultCache, SimConfig, Sweep, run
from repro.exp.sweep import _retry_backoff_s
from repro.exp.tasks import register_task

BASE = SimConfig.testbed(seed=3, chips=2, pool_blocks=10)


# Registered at import time so fork-started pool workers inherit them.
@register_task("test-always-fails", modules=("repro.utils",))
def _always_fails(config, params):
    raise ValueError("boom")


@register_task("test-fails-when-told", modules=("repro.utils",))
def _fails_when_told(config, params):
    if params.get("shouldfail"):
        raise RuntimeError("told to fail")
    return {"ok": True}


@register_task("test-flaky", modules=("repro.utils",))
def _flaky(config, params):
    # Cross-process attempt counter: append one line per call.
    with open(params["counter"], "a", encoding="utf-8") as fh:
        fh.write("attempt\n")
    with open(params["counter"], encoding="utf-8") as fh:
        attempts = len(fh.readlines())
    if attempts < int(params["succeed_on"]):
        raise ValueError(f"flaking on attempt {attempts}")
    return {"attempts": attempts}


@register_task("test-sleepy", modules=("repro.utils",))
def _sleepy(config, params):
    time.sleep(float(params["sleep_s"]))
    return {"slept": True}


@register_task("test-worker-killer", modules=("repro.utils",))
def _worker_killer(config, params):
    if os.getpid() != int(params["main_pid"]):
        os._exit(1)  # hard-kill the pool worker -> BrokenProcessPool
    raise ValueError("refusing to run inline")


class TestValidation:
    def test_bad_retries_and_timeout_rejected(self):
        sweep = Sweep("test-always-fails", base=BASE)
        with pytest.raises(ValueError, match="retries"):
            run(sweep, retries=-1)
        with pytest.raises(ValueError, match="cell_timeout"):
            run(sweep, cell_timeout=0.0)


class TestFailureRows:
    def assert_failure_row(self, result, error_type, attempts):
        (cell,) = result.cells
        assert cell.failed
        row = cell.result
        assert row["failed"] is True
        assert row["error_type"] == error_type
        assert row["attempts"] == attempts
        assert row["message"]
        assert result.failures == 1

    def test_serial_failure_recorded_not_raised(self):
        result = run(Sweep("test-always-fails", base=BASE), workers=1)
        self.assert_failure_row(result, "ValueError", attempts=1)

    def test_pool_failure_recorded_not_raised(self):
        result = run(Sweep("test-always-fails", base=BASE), workers=2)
        self.assert_failure_row(result, "ValueError", attempts=1)

    def test_retries_exhausted_counts_attempts(self):
        result = run(Sweep("test-always-fails", base=BASE), retries=2)
        self.assert_failure_row(result, "ValueError", attempts=3)

    def test_failed_cells_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run(Sweep("test-always-fails", base=BASE), cache=cache)
        (cell,) = result.cells
        assert not cache.path(cell.key).exists()

    def test_failure_echo_marks_the_cell(self):
        lines = []
        run(Sweep("test-always-fails", base=BASE), echo=lines.append)
        assert any("FAILED" in line for line in lines)

    def test_mixed_sweep_keeps_going(self):
        sweep = Sweep("test-fails-when-told", base=BASE).over(
            "shouldfail", [0, 1, 0]
        )
        result = run(sweep, workers=2)
        assert [c.failed for c in result.cells] == [False, True, False]
        assert result.cells[0].result == {"ok": True}
        assert result.cells[1].result["error_type"] == "RuntimeError"
        assert result.failures == 1


class TestRetries:
    def test_flaky_cell_recovers_within_budget(self, tmp_path):
        counter = tmp_path / "attempts"
        sweep = Sweep(
            "test-flaky",
            base=BASE,
            params={"counter": str(counter), "succeed_on": 3},
        )
        result = run(sweep, retries=2)
        (cell,) = result.cells
        assert not cell.failed
        assert cell.result == {"attempts": 3}

    def test_flaky_cell_fails_without_budget(self, tmp_path):
        counter = tmp_path / "attempts"
        sweep = Sweep(
            "test-flaky",
            base=BASE,
            params={"counter": str(counter), "succeed_on": 3},
        )
        result = run(sweep, retries=1)
        (cell,) = result.cells
        assert cell.failed
        assert cell.result["attempts"] == 2

    def test_backoff_is_seed_stable_and_bounded(self):
        delays = [_retry_backoff_s(3, cell_index, attempt)
                  for cell_index in range(4) for attempt in range(1, 5)]
        assert delays == [_retry_backoff_s(3, c, a)
                          for c in range(4) for a in range(1, 5)]
        assert all(0.0 < d <= 2.0 for d in delays)
        # later attempts wait at least as long (exponential, capped)
        assert _retry_backoff_s(3, 0, 1) <= _retry_backoff_s(3, 0, 3)


class TestTimeouts:
    def test_serial_timeout_records_failure(self):
        sweep = Sweep("test-sleepy", base=BASE, params={"sleep_s": 30.0})
        start = time.monotonic()
        result = run(sweep, cell_timeout=0.2)
        assert time.monotonic() - start < 10.0
        (cell,) = result.cells
        assert cell.failed
        assert cell.result["error_type"] == "CellTimeoutError"

    def test_pool_timeout_records_failure(self):
        sweep = Sweep("test-sleepy", base=BASE, params={"sleep_s": 30.0})
        start = time.monotonic()
        result = run(sweep, workers=2, cell_timeout=0.2)
        assert time.monotonic() - start < 10.0
        (cell,) = result.cells
        assert cell.failed
        assert cell.result["error_type"] == "CellTimeoutError"

    def test_fast_cell_unaffected_by_timeout(self):
        sweep = Sweep("test-sleepy", base=BASE, params={"sleep_s": 0.0})
        result = run(sweep, cell_timeout=30.0)
        (cell,) = result.cells
        assert not cell.failed
        assert cell.result == {"slept": True}


class TestBrokenPool:
    def test_dead_worker_falls_back_to_serial(self):
        sweep = Sweep("test-worker-killer", base=BASE, params={
            "main_pid": os.getpid(),
        })
        result = run(sweep, workers=2)
        (cell,) = result.cells
        # the pool broke, the serial fallback re-ran the cell inline, and
        # its inline failure was recorded as a structured row
        assert cell.failed
        assert cell.result["error_type"] == "ValueError"

    def test_fallback_is_recorded_in_provenance(self):
        # Two cells force the real pool path (one pending cell short-cuts
        # to serial); the workers hard-exit, the pool breaks, and both
        # cells finish inline — which the manifest must say out loud.
        sweep = Sweep(
            "test-worker-killer", base=BASE, params={"main_pid": os.getpid()}
        ).over("variant", [0, 1])
        result = run(sweep, workers=2)
        assert len(result.cells) == 2
        assert all(cell.fallback for cell in result.cells)
        assert all(
            cell.provenance == "serial-fallback" for cell in result.cells
        )
        rows = result.manifest()["cells"]
        assert all(row["provenance"] == "serial-fallback" for row in rows)
        assert all(row["fallback"] is True for row in rows)

    def test_clean_pool_run_is_not_marked_fallback(self):
        sweep = Sweep(
            "test-fails-when-told", base=BASE
        ).over("shouldfail", [0, 0])
        result = run(sweep, workers=2)
        assert all(not cell.fallback for cell in result.cells)
        assert all(cell.provenance == "computed" for cell in result.cells)
        rows = result.manifest()["cells"]
        assert all("fallback" not in row for row in rows)


class TestBackoffHistory:
    def test_retry_backoffs_recorded_per_cell(self):
        result = run(Sweep("test-always-fails", base=BASE), retries=2)
        (cell,) = result.cells
        assert cell.attempts == 3
        # the recorded schedule is exactly the seed-stable one
        assert cell.backoffs_s == tuple(
            _retry_backoff_s(BASE.seed, 0, attempt) for attempt in (1, 2)
        )
        row = result.manifest()["cells"][0]
        assert row["backoffs_s"] == [round(b, 6) for b in cell.backoffs_s]

    def test_unretried_cells_carry_no_backoff_keys(self):
        result = run(Sweep("test-sleepy", base=BASE, params={"sleep_s": 0.0}))
        (cell,) = result.cells
        assert cell.backoffs_s == ()
        row = result.manifest()["cells"][0]
        assert "backoffs_s" not in row
        assert row["provenance"] == "computed"


class TestManifest:
    def test_failure_keys_present_only_when_failing(self):
        clean = run(Sweep("test-sleepy", base=BASE, params={"sleep_s": 0.0}))
        manifest = clean.manifest()
        assert "failures" not in manifest
        assert all("failed" not in cell for cell in manifest["cells"])

        broken = run(Sweep("test-always-fails", base=BASE))
        manifest = broken.manifest()
        assert manifest["failures"] == 1
        assert manifest["cells"][0]["failed"] is True
        assert manifest["cells"][0]["result"]["error_type"] == "ValueError"
