"""Scalar-vs-vector differential tests: every batch kernel twin is exact.

The vector backend's contract (DESIGN.md §13) is *bit*-identity, not
approximate agreement: for every function in ``tools/vector_worklist.json``
that gained a batch twin in :mod:`repro.kernels`, batch row ``i`` must equal
the scalar result for element ``i`` — same dtype-level values, same
tie-breaks, same IEEE-754 rounding.  All comparisons here are exact
(``array_equal`` / ``==``), never ``allclose``.

Shapes are adversarial on purpose: empty batches, single elements,
all-identical inputs (every tie-break fires), and blocks aged to the
endurance limit (the largest PE-dependent terms the model produces).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.assembly.signatures import (
    SIGNATURE_BUILDERS,
    signature_distance,
)
from repro.characterization.datasets import BlockMeasurement
from repro.core.gathering import GatheringError, GatheringUnit
from repro.ftl.mapping import MappingError, PageMapper, PhysicalSlot
from repro.kernels import (
    ArrayPageMapper,
    batch_erase_latencies,
    batch_lwl_rank,
    batch_pwl_rank,
    batch_str_median,
    batch_str_rank,
    block_latency_stack,
    block_program_totals,
    ecc_read_batch,
    eigen_bitvectors,
    eigen_distance_matrix,
    pack_eigen_bits,
    rber_batch,
    sequential_fill_prefix,
    signature_distance_matrix,
    superwl_stats,
)
from repro.nand import SMALL_GEOMETRY, VariationModel, VariationParams
from repro.nand.geometry import PageType
from repro.nand.reliability import EccConfig, EccEngine, ReliabilityParams, rber
from repro.utils.bitvec import BitVector
from repro.workloads.synthetic import sequential_fill

REPO_ROOT = Path(__file__).resolve().parent.parent

#: scalar worklist entry -> its batch twin in repro.kernels
TWINS = {
    "repro.assembly.signatures.lwl_rank_signature": batch_lwl_rank,
    "repro.assembly.signatures.pwl_rank_signature": batch_pwl_rank,
    "repro.assembly.signatures.str_rank_signature": batch_str_rank,
    "repro.assembly.signatures.str_median_signature": batch_str_median,
    "repro.assembly.signatures.signature_distance": signature_distance_matrix,
    "repro.nand.reliability.rber": rber_batch,
    "repro.nand.reliability.EccEngine.read_page": ecc_read_batch,
    "repro.nand.variation.ChipVariationProfile.block_program_latencies": (
        block_latency_stack
    ),
    "repro.nand.variation.ChipVariationProfile.block_program_total": (
        block_program_totals
    ),
    "repro.nand.variation.ChipVariationProfile.erase_latency": (
        batch_erase_latencies
    ),
}

SEEDS = (7, 99, 2024)


@pytest.fixture(scope="module")
def profile():
    return VariationModel(SMALL_GEOMETRY, VariationParams(), seed=99).chip_profile(0)


def _measurements(profile, blocks, pe=0):
    return [
        BlockMeasurement(
            chip_id=0,
            plane=0,
            block=block,
            pe_cycles=pe,
            wl_latencies_us=profile.block_program_latencies(0, block, pe),
            erase_latency_us=profile.erase_latency(0, block, pe),
        )
        for block in blocks
    ]


def _stack(measurements):
    return np.stack([m.wl_latencies_us for m in measurements])


def test_every_worklist_twin_is_exercised_here():
    """The committed worklist names each scalar function TWINS covers."""
    doc = json.loads(
        (REPO_ROOT / "tools" / "vector_worklist.json").read_text(encoding="utf-8")
    )
    listed = {entry["function"] for entry in doc["functions"]}
    missing = {
        name for name in TWINS if name.rsplit(".", 1)[0] not in
        {fn.rsplit(".", 1)[0] for fn in listed} and name not in listed
    }
    assert not missing, f"TWINS entries absent from the worklist: {missing}"


# -- signature kernels -------------------------------------------------------


BATCH_BY_NAME = {
    "lwl_rank": batch_lwl_rank,
    "pwl_rank": batch_pwl_rank,
    "str_rank": batch_str_rank,
    "str_median": batch_str_median,
}


@pytest.mark.parametrize("name", sorted(SIGNATURE_BUILDERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_signature_batch_rows_equal_scalar(name, seed, profile):
    rng = np.random.default_rng(seed)
    blocks = sorted(rng.choice(SMALL_GEOMETRY.blocks_per_plane, 6, replace=False))
    measurements = _measurements(profile, [int(b) for b in blocks])
    batch = BATCH_BY_NAME[name](_stack(measurements))
    for row, measurement in zip(batch, measurements):
        scalar = SIGNATURE_BUILDERS[name](measurement)
        assert row.dtype == scalar.dtype
        assert np.array_equal(row, scalar)


@pytest.mark.parametrize("name", sorted(BATCH_BY_NAME))
def test_signature_batch_empty_and_single(name, profile):
    layers = SMALL_GEOMETRY.layers_per_block
    strings = SMALL_GEOMETRY.strings_per_layer
    empty = BATCH_BY_NAME[name](np.zeros((0, layers, strings)))
    assert empty.shape == (0, layers * strings)
    single = BATCH_BY_NAME[name](_stack(_measurements(profile, [3])))
    scalar = SIGNATURE_BUILDERS[name](_measurements(profile, [3])[0])
    assert np.array_equal(single[0], scalar)


@pytest.mark.parametrize("name", sorted(BATCH_BY_NAME))
def test_signature_batch_all_identical_latencies_tie_break(name):
    """A constant matrix makes every comparison a tie: first-come must win."""
    layers, strings = 4, 4
    flat = np.full((layers, strings), 1500.0)
    measurement = BlockMeasurement(
        chip_id=0, plane=0, block=0, pe_cycles=0,
        wl_latencies_us=flat, erase_latency_us=1.0,
    )
    batch = BATCH_BY_NAME[name](flat[None, :, :])
    assert np.array_equal(batch[0], SIGNATURE_BUILDERS[name](measurement))


@pytest.mark.parametrize("seed", SEEDS)
def test_signature_distance_matrix_matches_pairwise_scalar(seed, profile):
    rng = np.random.default_rng(seed)
    blocks = [int(b) for b in rng.choice(SMALL_GEOMETRY.blocks_per_plane, 5, replace=False)]
    measurements = _measurements(profile, blocks)
    signatures = batch_str_median(_stack(measurements))
    matrix = signature_distance_matrix(signatures)
    assert np.array_equal(matrix, matrix.T)
    for i in range(len(blocks)):
        for j in range(len(blocks)):
            assert matrix[i, j] == signature_distance(signatures[i], signatures[j])


def test_eigen_pack_roundtrip_and_distances(profile):
    measurements = _measurements(profile, [0, 1, 2])
    stack = _stack(measurements)
    packed = pack_eigen_bits(stack)
    lwls = SMALL_GEOMETRY.lwls_per_block
    vectors = eigen_bitvectors(packed, lwls)
    bits = batch_str_median(stack)
    for vector, row in zip(vectors, bits):
        assert [vector[i] for i in range(lwls)] == [int(b) for b in row]
    distances = eigen_distance_matrix(packed)
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            assert distances[i, j] == BitVector.hamming_distance(a, b)


# -- variation model ---------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_block_latency_stack_rows_are_the_scalar_matrices(seed, profile):
    rng = np.random.default_rng(seed)
    blocks = [int(b) for b in rng.choice(SMALL_GEOMETRY.blocks_per_plane, 4, replace=False)]
    pes = [int(p) for p in rng.integers(0, 3000, len(blocks))]
    stack = block_latency_stack(profile, 0, blocks, pes)
    for row, block, pe in zip(stack, blocks, pes):
        assert np.array_equal(row, profile.block_program_latencies(0, block, pe))


def test_block_latency_stack_empty_batch(profile):
    stack = block_latency_stack(profile, 0, [])
    assert stack.shape == (
        0, SMALL_GEOMETRY.layers_per_block, SMALL_GEOMETRY.strings_per_layer
    )
    assert batch_erase_latencies(profile, 0, []).shape == (0,)


def test_block_latency_stack_at_endurance_limit(profile):
    """Max-PE aging: the largest wear terms still match the scalar path."""
    blocks = [0, 5, 9]
    pes = [profile.endurance_limit(0, block) for block in blocks]
    stack = block_latency_stack(profile, 0, blocks, pes)
    erases = batch_erase_latencies(profile, 0, blocks, pes)
    for i, (block, pe) in enumerate(zip(blocks, pes)):
        assert np.array_equal(stack[i], profile.block_program_latencies(0, block, pe))
        assert erases[i] == profile.erase_latency(0, block, pe)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_erase_latencies_bitwise_equal(seed, profile):
    rng = np.random.default_rng(seed)
    blocks = [int(b) for b in rng.choice(SMALL_GEOMETRY.blocks_per_plane, 8, replace=False)]
    pes = [int(p) for p in rng.integers(0, 500, len(blocks))]
    batch = batch_erase_latencies(profile, 0, blocks, pes)
    for value, block, pe in zip(batch, blocks, pes):
        assert value == profile.erase_latency(0, block, pe)


def test_superwl_stats_matches_python_reductions(profile):
    table = np.stack(
        [
            profile.block_program_latencies(0, block).reshape(-1)
            for block in (0, 1, 2, 3)
        ]
    )
    stats = superwl_stats(table)
    members, lwls = table.shape
    for lwl in range(lwls):
        column = [table[m, lwl] for m in range(members)]
        assert stats.completion_us[lwl] == max(column)
        assert stats.extra_us[lwl] == max(column) - min(column)
        assert stats.slowest[lwl] == max(range(members), key=lambda m: column[m])
        assert stats.fastest[lwl] == min(range(members), key=lambda m: column[m])


def test_superwl_stats_single_member_and_ties():
    single = superwl_stats(np.array([[5.0, 7.0]]))
    assert np.array_equal(single.completion_us, [5.0, 7.0])
    assert np.array_equal(single.extra_us, [0.0, 0.0])
    tied = superwl_stats(np.full((3, 4), 2.0))
    assert np.array_equal(tied.slowest, np.zeros(4))
    assert np.array_equal(tied.fastest, np.zeros(4))
    with pytest.raises(ValueError):
        superwl_stats(np.zeros((0, 4)))


def test_block_program_totals_is_the_sequential_fold(profile):
    matrices = [profile.block_program_latencies(0, block) for block in (0, 1, 7)]
    table = np.stack([m.reshape(-1) for m in matrices])
    totals = block_program_totals(table)
    for total, matrix in zip(totals, matrices):
        running = 0.0
        for value in matrix.reshape(-1):
            running += float(value)
        assert total == running
    assert np.array_equal(
        block_program_totals(np.zeros((2, 0))), np.zeros(2)
    )


# -- reliability -------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_rber_batch_equals_scalar(seed):
    params = ReliabilityParams()
    rng = np.random.default_rng(seed)
    n = 16
    pes = rng.integers(0, 6000, n)
    retention = rng.uniform(0.0, 2000.0, n)
    types = [PageType(int(v)) for v in rng.integers(0, 3, n)]
    layer_log = rng.normal(0.0, 0.2, n)
    block_log = rng.normal(0.0, 0.2, n)
    batch = rber_batch(params, pes, retention, types, layer_log, block_log)
    for i in range(n):
        assert batch[i] == rber(
            params, int(pes[i]), float(retention[i]), types[i],
            float(layer_log[i]), float(block_log[i]),
        )


def test_rber_batch_adversarial_shapes():
    params = ReliabilityParams()
    assert rber_batch(params, [], [], []).shape == (0,)
    single = rber_batch(params, [100], [10.0], [PageType.LSB])
    assert single.shape == (1,)
    assert single[0] == rber(params, 100, 10.0, PageType.LSB)
    with pytest.raises(ValueError):
        rber_batch(params, [-1], [0.0], [PageType.LSB])


@pytest.mark.parametrize("seed", SEEDS)
def test_ecc_read_batch_preserves_draw_order(seed):
    config = EccConfig()
    batch_engine = EccEngine(config, SMALL_GEOMETRY)
    scalar_engine = EccEngine(config, SMALL_GEOMETRY)
    rbers = np.random.default_rng(seed).uniform(1e-5, 5e-3, 32)
    result = ecc_read_batch(batch_engine, rbers, np.random.default_rng(seed + 1))
    rng = np.random.default_rng(seed + 1)
    for i, value in enumerate(rbers):
        correction = scalar_engine.read_page(float(value), rng)
        assert result.corrected_bits[i] == correction.corrected_bits
        assert result.retries[i] == correction.retries
        assert result.extra_latency_us[i] == correction.extra_latency_us
        assert result.uncorrectable[i] == correction.uncorrectable
    assert batch_engine.pages_read == scalar_engine.pages_read
    assert batch_engine.total_retries == scalar_engine.total_retries


# -- array-backed mapping ----------------------------------------------------


def _mirror_ops(seed, logical_pages=64, ops=400):
    """A randomized op tape both mappers replay move-for-move."""
    rng = np.random.default_rng(seed)
    slots_used = {}
    tape = []
    for _ in range(ops):
        kind = rng.choice(["map", "unmap", "lookup"])
        lpn = int(rng.integers(0, logical_pages))
        if kind == "map":
            sb = int(rng.integers(0, 6))
            slot = slots_used.get(sb, 0)
            slots_used[sb] = slot + 1
            tape.append(("map", lpn, sb, slot))
        else:
            tape.append((kind, lpn))
    return tape


@pytest.mark.parametrize("seed", SEEDS)
def test_array_mapper_mirrors_scalar_mapper(seed):
    scalar = PageMapper(64)
    vector = ArrayPageMapper(64)
    for op in _mirror_ops(seed):
        if op[0] == "map":
            _, lpn, sb, slot = op
            a = scalar.map_page(lpn, PhysicalSlot(sb, slot))
            b = vector.map_page(lpn, PhysicalSlot(sb, slot))
        elif op[0] == "unmap":
            a = scalar.unmap_page(op[1])
            b = vector.unmap_page(op[1])
        else:
            a = scalar.lookup(op[1])
            b = vector.lookup(op[1])
        assert a == b
    assert scalar.mapped_pages == vector.mapped_pages
    assert dict(scalar.iter_mapped()) == dict(vector.iter_mapped())
    for sb in range(6):
        assert scalar.valid_count(sb) == vector.valid_count(sb)
        assert sorted(scalar.valid_slots(sb)) == sorted(vector.valid_slots(sb))


def test_map_batch_equals_per_page_loop():
    loop = ArrayPageMapper(64)
    batch = ArrayPageMapper(64)
    lpns = [3, 9, 1, 17, 40]
    for i, lpn in enumerate(lpns):
        loop.map_page(lpn, PhysicalSlot(0, i))
    batch.map_batch(lpns, 0, 0)
    assert dict(loop.iter_mapped()) == dict(batch.iter_mapped())
    # rewrite: stale copies must be invalidated identically
    for i, lpn in enumerate(lpns):
        loop.map_page(lpn, PhysicalSlot(1, i))
    batch.map_batch(lpns, 1, 0)
    assert dict(loop.iter_mapped()) == dict(batch.iter_mapped())
    assert loop.valid_count(0) == batch.valid_count(0) == 0


def test_map_superwl_and_contig_agree_with_map_batch():
    reference = ArrayPageMapper(128, slots_per_superblock=64)
    fast = ArrayPageMapper(128, slots_per_superblock=64)
    contig = ArrayPageMapper(128, slots_per_superblock=64)
    run = list(range(16, 24))
    reference.map_batch(run, 0, 0)
    fast.map_superwl(run, 0, 0)
    contig.map_superwl_contig(16, 8, 0, 0)
    assert dict(reference.iter_mapped()) == dict(fast.iter_mapped())
    assert dict(reference.iter_mapped()) == dict(contig.iter_mapped())
    # overwrite below the high-water mark: the stale scan must still fire
    reference.map_batch(run, 1, 0)
    fast.map_superwl(run, 1, 0)
    contig.map_superwl_contig(16, 8, 1, 0)
    assert reference.valid_count(0) == fast.valid_count(0) == 0
    assert contig.valid_count(0) == 0
    assert dict(reference.iter_mapped()) == dict(contig.iter_mapped())
    assert reference.mapped_pages == fast.mapped_pages == contig.mapped_pages


def test_map_batch_adversarial_shapes():
    mapper = ArrayPageMapper(32)
    mapper.map_batch([], 0, 0)  # empty batch is a no-op
    assert mapper.mapped_pages == 0
    mapper.map_batch([5], 0, 0)  # single element
    assert mapper.lookup(5) == PhysicalSlot(0, 0)
    with pytest.raises(MappingError):
        mapper.map_batch([99], 0, 4)  # out of range
    with pytest.raises(MappingError):
        mapper.map_batch([7], 0, 0)  # slot 0 already holds lpn 5
    with pytest.raises(MappingError):
        mapper.drop_superblock(0)  # still holds a valid page


# -- gathering unit bulk completion ------------------------------------------


def test_complete_block_rejects_unknown_and_partial_blocks(profile):
    unit = GatheringUnit(SMALL_GEOMETRY)
    matrix = profile.block_program_latencies(0, 0)
    record = unit.gather_measurement(0, 0, 0, matrix)
    with pytest.raises(GatheringError):
        unit.complete_block(record)  # not open
    unit.open_block(0, 0, 1)
    unit.report(0, 0, 1, 0, float(matrix[0, 0]))
    stale = unit.completed[-1]
    with pytest.raises(GatheringError):
        unit.complete_block(stale)  # word-line reports already flowed


# -- workload prefix ---------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_fill_prefix_is_byte_identical_to_truncation(seed):
    logical_pages = 4096
    full = sequential_fill(logical_pages, seed=seed)
    for count in (0, 1, 37, len(full)):
        prefix = sequential_fill_prefix(logical_pages, count, seed=seed)
        assert prefix == full[:count]


def test_sequential_fill_prefix_overlong_count_matches_full():
    full = sequential_fill(512, seed=5)
    assert sequential_fill_prefix(512, 10_000, seed=5) == full
