"""Repair-policy experiment: the qstr-vs-random post-repair latency claim.

EXPERIMENTS.md cites this module as the tier-1 guard on the paper-extending
result: similarity-matched spares (``qstr``) blend into a repaired
superblock with strictly less post-repair extra program latency than
arbitrary spares (``random``) on the pinned experiment config.
"""

import pytest

from repro.analysis.faults import (
    compare_repair_policies,
    default_fault_config,
    render_repair_comparison,
)


@pytest.fixture(scope="module")
def comparison():
    # ~1000-request runs under both policies; compute once for the module
    return compare_repair_policies(default_fault_config(requests=1000))


class TestRepairPolicyComparison:
    def test_qstr_beats_random_on_the_pinned_config(self, comparison):
        by = comparison.by_policy()
        assert (
            by["qstr"].post_repair_extra_mean_us
            < by["random"].post_repair_extra_mean_us
        )
        assert comparison.qstr_advantage_us > 0.0

    def test_the_comparison_is_paired(self, comparison):
        # identical config seed -> identical injected fault schedule, so
        # both policies absorb the same failures and the same repair count
        by = comparison.by_policy()
        assert by["qstr"].program_failures == by["random"].program_failures > 0
        assert by["qstr"].sb_repairs == by["random"].sb_repairs > 0
        assert by["qstr"].post_repair_swls > 0
        assert by["random"].post_repair_swls > 0

    def test_zero_data_loss_under_both_policies(self, comparison):
        for result in comparison.results:
            assert result.unlocated_pages == 0

    def test_render_mentions_both_policies_and_the_advantage(self, comparison):
        text = render_repair_comparison(comparison)
        assert "qstr" in text and "random" in text
        assert "qstr advantage: +" in text
        assert comparison.config_hash in text


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        from repro.analysis.faults import run_repair_policy

        with pytest.raises(ValueError, match="policy"):
            run_repair_policy(default_fault_config(), "eeny_meeny")

    def test_default_config_is_faulted(self):
        config = default_fault_config()
        assert config.faults is not None
        assert config.faults.program_fail_prob > 0.0
