"""The policy protocol: specs, registry, pickling, learned determinism.

Covers the plumbing the rest of the suite builds on: text/dict round trips
of :class:`PolicySpec`/:class:`PolicyConfig`, loud failures on unknown
names, the registry's duplicate/point validation, pickling of both learned
policies (sweep workers receive them via configs), and the bandit's pinned
seed-derived exploration stream.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import SpeedClass, WriteIntent, WriteSource
from repro.exp import SimConfig, Sweep, run
from repro.policy import (
    DEFAULT_SPECS,
    POLICY_POINTS,
    AllocationContext,
    AllocationPolicy,
    BanditAllocationPolicy,
    GcVictimPolicy,
    LatencyPredictorPolicy,
    PolicyConfig,
    PolicySpec,
    get_policy,
    make_policy,
    policy_names,
    register_policy,
    resolve_policies,
)


# ---------------------------------------------------------------- PolicySpec


class TestPolicySpec:
    def test_text_round_trip_with_params(self):
        spec = PolicySpec.from_text("allocation.bandit:epsilon=0.25,window=8")
        assert spec.name == "allocation.bandit"
        assert spec.param_dict() == {"epsilon": 0.25, "window": 8}
        assert PolicySpec.from_text(spec.text()) == spec

    def test_dict_round_trip(self):
        spec = PolicySpec("assembly.predictor", {"warmup": 16})
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    def test_params_are_key_sorted_for_stable_hashing(self):
        a = PolicySpec("assembly.predictor", {"warmup": 16, "alpha": 0.5})
        b = PolicySpec("assembly.predictor", {"alpha": 0.5, "warmup": 16})
        assert a == b and a.text() == b.text()

    def test_name_without_point_prefix_rejected(self):
        with pytest.raises(ValueError, match="<point>"):
            PolicySpec("bandit")

    def test_duplicate_param_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PolicySpec("allocation.bandit", (("epsilon", 0.1), ("epsilon", 0.2)))


# -------------------------------------------------------------- PolicyConfig


class TestPolicyConfig:
    def test_explicit_defaults_normalize_to_unset(self):
        config = PolicyConfig(
            assembly="assembly.qstr", gc_victim=DEFAULT_SPECS["gc_victim"]
        )
        assert config.is_default
        assert config.assembly is None and config.gc_victim is None

    def test_repair_slot_is_never_normalized(self):
        # unset repair defers to the legacy FtlConfig.repair_policy shim,
        # so an *explicit* repair.qstr is a different (modern) statement.
        config = PolicyConfig(repair="repair.qstr")
        assert not config.is_default
        assert config.repair == PolicySpec("repair.qstr")

    def test_point_prefix_mismatch_rejected(self):
        with pytest.raises(ValueError, match="assembly"):
            PolicyConfig(assembly="gc.min_valid")

    def test_dict_round_trip_and_unknown_fields(self):
        config = PolicyConfig(allocation="allocation.bandit:epsilon=0.3")
        assert PolicyConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="unknown"):
            PolicyConfig.from_dict({"gc": {"name": "gc.min_valid"}})

    def test_with_path_coerces_spec_text(self):
        config = SimConfig.device(seed=3, blocks=24).with_path(
            "policies.allocation", "allocation.bandit:epsilon=0.1"
        )
        assert config.policies.allocation == PolicySpec(
            "allocation.bandit", {"epsilon": 0.1}
        )


# ------------------------------------------------------------------ registry


class TestRegistry:
    def test_every_point_has_a_registered_default(self):
        for point in POLICY_POINTS:
            names = policy_names(point)
            assert DEFAULT_SPECS[point].name in names

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(ValueError, match="registered"):
            get_policy("assembly.nope")

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown policy point"):
            policy_names("steering")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy("allocation.bandit")
            class Impostor(AllocationPolicy):
                pass

    def test_wrong_base_class_rejected(self):
        with pytest.raises(TypeError, match="GcVictimPolicy"):

            @register_policy("gc.upstart")
            class NotAGcPolicy(AllocationPolicy):
                pass

    def test_make_policy_instantiates_with_seed(self):
        policy = make_policy(PolicySpec("allocation.bandit"), seed=17)
        assert isinstance(policy, BanditAllocationPolicy)
        assert policy.seed == 17 and policy.short_name == "bandit"

    def test_resolve_fills_every_point(self):
        resolved = resolve_policies(PolicyConfig(), seed=5)
        assert resolved.gc_victim.name == "gc.min_valid"
        assert isinstance(resolved.gc_victim, GcVictimPolicy)
        assert resolved.repair.name == "repair.qstr"

    def test_resolve_legacy_repair_warns(self):
        with pytest.deprecated_call(match="repair.random"):
            resolved = resolve_policies(PolicyConfig(), seed=5, legacy_repair="random")
        assert resolved.repair.name == "repair.random"


# ------------------------------------------------------------------ pickling


def _bandit_context(pages: int = 1) -> AllocationContext:
    return AllocationContext(
        intent=WriteIntent(source=WriteSource.HOST, pages=pages),
        base_class=SpeedClass.FAST,
        prefers_fast=pages <= 8,
        steering_enabled=False,
        predictor_ready=False,
    )


class TestPickling:
    def test_predictor_pickles_with_learned_state(self):
        policy = make_policy(
            PolicySpec("assembly.predictor", {"warmup": 2, "alpha": 0.5}), seed=9
        )
        assert isinstance(policy, LatencyPredictorPolicy)
        policy.observe_program(0, 0, 3, 0, 120.0)
        policy.observe_program(0, 0, 3, 1, 160.0)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.observations == policy.observations == 2
        assert clone._estimates == policy._estimates
        assert clone.spec == policy.spec and clone.seed == policy.seed

    def test_bandit_pickles_and_streams_stay_in_lockstep(self):
        policy = make_policy(
            PolicySpec("allocation.bandit", {"epsilon": 0.5}), seed=13
        )
        for _ in range(10):
            policy.place(_bandit_context())
        policy.observe_flush("fast", 800.0, 4)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.decisions == policy.decisions == 10
        assert clone._mean_us == policy._mean_us
        # the pickled RNG must resume mid-stream, not restart
        original = [policy.place(_bandit_context()).speed_class for _ in range(20)]
        resumed = [clone.place(_bandit_context()).speed_class for _ in range(20)]
        assert original == resumed


# ------------------------------------------------------- bandit determinism


class TestBanditDeterminism:
    def test_same_seed_same_decision_sequence(self):
        a = make_policy(PolicySpec("allocation.bandit", {"epsilon": 0.4}), seed=21)
        b = make_policy(PolicySpec("allocation.bandit", {"epsilon": 0.4}), seed=21)
        seq_a = [a.place(_bandit_context()).speed_class for _ in range(64)]
        seq_b = [b.place(_bandit_context()).speed_class for _ in range(64)]
        assert seq_a == seq_b
        assert a.explorations == b.explorations > 0

    def test_different_seeds_diverge(self):
        a = make_policy(PolicySpec("allocation.bandit", {"epsilon": 0.4}), seed=21)
        b = make_policy(PolicySpec("allocation.bandit", {"epsilon": 0.4}), seed=22)
        seq_a = [a.place(_bandit_context()).speed_class for _ in range(64)]
        seq_b = [b.place(_bandit_context()).speed_class for _ in range(64)]
        assert seq_a != seq_b

    def test_non_host_writes_pass_through_untouched(self):
        policy = make_policy(PolicySpec("allocation.bandit"), seed=3)
        decision = policy.place(
            AllocationContext(
                intent=WriteIntent(source=WriteSource.GC, pages=4),
                base_class=SpeedClass.SLOW,
                prefers_fast=True,
                steering_enabled=False,
                predictor_ready=False,
            )
        )
        assert decision.speed_class is SpeedClass.SLOW
        assert policy.decisions == 0


# ---------------------------------------------- sweeps across the process pool


LEARNED_BASE = (
    SimConfig.device(seed=5, chips=3, blocks=24, requests=200)
    .with_path("policies.assembly", "assembly.predictor:warmup=32")
    .with_path("policies.allocation", "allocation.bandit:epsilon=0.2")
)


class TestLearnedSweeps:
    def test_learned_policies_serial_vs_parallel_bit_identical(self):
        sweep = Sweep("replay", base=LEARNED_BASE).over("seed", range(2))
        serial = run(sweep, workers=1)
        parallel = run(sweep, workers=2)
        assert [c.result for c in serial.cells] == [
            c.result for c in parallel.cells
        ]

    def test_learned_cells_fork_the_cache_key_from_static(self):
        static = SimConfig.device(seed=5, chips=3, blocks=24, requests=200)
        hashes = {
            static.content_hash(),
            LEARNED_BASE.content_hash(),
            LEARNED_BASE.with_path(
                "policies.allocation", "allocation.bandit:epsilon=0.5"
            ).content_hash(),
        }
        assert len(hashes) == 3
