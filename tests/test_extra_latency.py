"""Extra-latency definition tests (Section III-A semantics)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.characterization.datasets import BlockMeasurement
from repro.characterization.extra_latency import (
    extra_erase_latency,
    extra_program_latency,
    per_wordline_extra_program,
    superblock_erase_completion,
    superblock_program_completion,
)


def measurement(matrix, ers=100.0, chip=0):
    array = np.asarray(matrix, dtype=float)
    array.setflags(write=False)
    return BlockMeasurement(chip, 0, 0, 0, array, ers)


class TestDefinitions:
    def test_known_values(self):
        a = measurement([[10.0, 20.0]], ers=100.0)
        b = measurement([[12.0, 18.0]], ers=104.0, chip=1)
        # per-WL gaps: |10-12| = 2, |20-18| = 2 -> total 4
        assert extra_program_latency([a, b]) == pytest.approx(4.0)
        assert list(per_wordline_extra_program([a, b])) == [2.0, 2.0]
        assert extra_erase_latency([a, b]) == pytest.approx(4.0)
        assert superblock_program_completion([a, b]) == pytest.approx(12 + 20)
        assert superblock_erase_completion([a, b]) == pytest.approx(104.0)

    def test_identical_members_zero_extra(self):
        a = measurement([[5.0, 6.0], [7.0, 8.0]])
        b = measurement([[5.0, 6.0], [7.0, 8.0]], chip=1)
        assert extra_program_latency([a, b]) == 0.0
        assert extra_erase_latency([a, b]) == 0.0

    def test_requires_two_members(self):
        a = measurement([[1.0]])
        with pytest.raises(ValueError):
            extra_program_latency([a])
        with pytest.raises(ValueError):
            extra_erase_latency([a])

    def test_mismatched_shapes(self):
        a = measurement([[1.0, 2.0]])
        b = measurement([[1.0, 2.0, 3.0]], chip=1)
        with pytest.raises(ValueError):
            extra_program_latency([a, b])

    def test_empty_completion(self):
        with pytest.raises(ValueError):
            superblock_erase_completion([])


lat_matrices = st.lists(
    st.lists(st.floats(1, 1000, allow_nan=False), min_size=4, max_size=4),
    min_size=2,
    max_size=2,
)


class TestProperties:
    @given(st.lists(lat_matrices, min_size=2, max_size=5))
    def test_extra_nonnegative_and_bounded(self, matrices):
        members = [measurement(m, chip=i) for i, m in enumerate(matrices)]
        extra = extra_program_latency(members)
        assert extra >= 0
        # extra <= sum over WLs of (max over all values - min over all values)
        stacked = np.array(matrices, dtype=float).reshape(len(matrices), -1)
        bound = (stacked.max() - stacked.min()) * stacked.shape[1]
        assert extra <= bound + 1e-9

    @given(st.lists(lat_matrices, min_size=2, max_size=4))
    def test_completion_at_least_any_member_total(self, matrices):
        members = [measurement(m, chip=i) for i, m in enumerate(matrices)]
        completion = superblock_program_completion(members)
        for member in members:
            assert completion >= member.program_total_us - 1e-9

    @given(st.lists(lat_matrices, min_size=2, max_size=4))
    def test_adding_member_never_reduces_extra(self, matrices):
        members = [measurement(m, chip=i) for i, m in enumerate(matrices)]
        smaller = extra_program_latency(members[:2])
        bigger = extra_program_latency(members)
        assert bigger >= smaller - 1e-9

    @given(lat_matrices, lat_matrices)
    def test_extra_invariant_to_common_shift(self, first, second):
        members = [measurement(first, chip=0), measurement(second, chip=1)]
        shifted = [
            measurement((np.asarray(first) + 17.0).tolist(), chip=0),
            measurement((np.asarray(second) + 17.0).tolist(), chip=1),
        ]
        assert extra_program_latency(members) == pytest.approx(
            extra_program_latency(shifted), abs=1e-6
        )
