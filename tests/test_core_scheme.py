"""QstrMedScheme (runtime) and QstrMedAssembler (offline) tests."""

import numpy as np
import pytest

from repro.assembly import RandomAssembler, StrMedianAssembler, evaluate_assembler
from repro.core import QstrMedAssembler, QstrMedScheme, SpeedClass, WriteIntent, WriteSource
from repro.core.gathering import GatheringUnit
from repro.nand import SMALL_GEOMETRY


def make_record(lane, plane, block, seed):
    rng = np.random.default_rng(seed)
    g = SMALL_GEOMETRY
    matrix = rng.normal(1700, 10, size=(g.layers_per_block, g.strings_per_layer))
    return GatheringUnit(g).gather_measurement(lane, plane, block, matrix)


def make_scheme(blocks_per_lane=6, lanes=(0, 1, 2)):
    scheme = QstrMedScheme(SMALL_GEOMETRY, lanes)
    for lane in lanes:
        for block in range(blocks_per_lane):
            scheme.register_free_block(make_record(lane, 0, block, seed=lane * 100 + block))
    return scheme


class TestRuntimeScheme:
    def test_duplicate_lanes_rejected(self):
        with pytest.raises(ValueError):
            QstrMedScheme(SMALL_GEOMETRY, [0, 0])

    def test_assemble_for_intent(self):
        scheme = make_scheme()
        host = scheme.assemble_for(WriteIntent(WriteSource.HOST))
        gc = scheme.assemble_for(WriteIntent(WriteSource.GC))
        assert host.speed_class is SpeedClass.FAST
        assert gc.speed_class is SpeedClass.SLOW

    def test_free_block_accounting(self):
        scheme = make_scheme(blocks_per_lane=4)
        assert scheme.min_free_blocks() == 4
        scheme.assemble(SpeedClass.FAST)
        assert scheme.min_free_blocks() == 3
        assert all(scheme.free_blocks(lane) == 3 for lane in scheme.lanes)

    def test_regathered_record_replaces_old(self):
        scheme = make_scheme(blocks_per_lane=2, lanes=(0, 1))
        choice = scheme.assemble(SpeedClass.FAST)
        member = choice.member_for_lane(0)
        g = SMALL_GEOMETRY
        scheme.note_block_allocated(0, member.plane, member.block, pe_cycles=1)
        rng = np.random.default_rng(77)
        matrix = rng.normal(1500, 10, size=(g.layers_per_block, g.strings_per_layer))
        for lwl in range(g.lwls_per_block):
            layer, string = divmod(lwl, g.strings_per_layer)
            scheme.note_wordline_programmed(
                0, member.plane, member.block, lwl, float(matrix[layer, string])
            )
        scheme.note_block_freed(0, member.plane, member.block)
        listed = [
            r
            for r in scheme.catalog(0)
            if (r.plane, r.block) == (member.plane, member.block)
        ]
        assert len(listed) == 1
        assert listed[0].pgm_total_us == pytest.approx(matrix.sum())

    def test_freed_without_gather_reuses_old_record(self):
        scheme = make_scheme(blocks_per_lane=2, lanes=(0, 1))
        choice = scheme.assemble(SpeedClass.FAST)
        member = choice.member_for_lane(1)
        scheme.note_block_freed(1, member.plane, member.block)
        assert scheme.free_blocks(1) == 2

    def test_freed_unknown_block_raises(self):
        scheme = make_scheme()
        with pytest.raises(KeyError):
            scheme.note_block_freed(0, 1, 31)

    def test_retired_block_never_relisted(self):
        scheme = make_scheme(blocks_per_lane=2, lanes=(0, 1))
        choice = scheme.assemble(SpeedClass.FAST)
        member = choice.member_for_lane(0)
        scheme.note_block_retired(0, member.plane, member.block)
        assert scheme.free_blocks(0) == 1
        with pytest.raises(KeyError):
            scheme.note_block_freed(0, member.plane, member.block)

    def test_metadata_bytes_tracks_state(self):
        scheme = make_scheme(blocks_per_lane=2, lanes=(0, 1))
        at_rest = scheme.metadata_bytes()
        assert at_rest > 0
        scheme.assemble(SpeedClass.FAST)
        # records moved to in-use, still accounted
        assert scheme.metadata_bytes() == at_rest

    def test_pair_check_accounting(self):
        scheme = make_scheme(blocks_per_lane=5, lanes=(0, 1, 2))
        scheme.assemble(SpeedClass.FAST)
        assert scheme.total_pair_checks == 2 * 4  # (lanes-1) x depth
        assert scheme.assembled_count == 1


class TestOfflineAdapter:
    def test_valid_partition(self, small_pools):
        superblocks = QstrMedAssembler(4).assemble(small_pools)
        keys = [k for sb in superblocks for k in sb.member_keys()]
        assert len(keys) == len(set(keys))
        assert len(superblocks) == min(len(p) for p in small_pools)

    def test_pair_checks_much_smaller_than_str_med(self, small_pools):
        qstr = QstrMedAssembler(4)
        qstr.assemble(small_pools)
        str_med = StrMedianAssembler(4)
        str_med.assemble(small_pools)
        assert qstr.pair_checks < str_med.pair_checks

    def test_comparable_quality_to_str_med(self, paper_pools):
        baseline = evaluate_assembler(RandomAssembler(seed=1), paper_pools)
        qstr = evaluate_assembler(QstrMedAssembler(4), paper_pools)
        str_med = evaluate_assembler(StrMedianAssembler(4), paper_pools)
        q_imp = qstr.program_improvement_vs(baseline)
        s_imp = str_med.program_improvement_vs(baseline)
        assert q_imp > 0
        assert abs(q_imp - s_imp) < 6.0  # "equivalent capability" (Fig. 14)

    def test_demand_schedule(self, small_pools):
        count = min(len(p) for p in small_pools)
        demand = [SpeedClass.FAST, SpeedClass.SLOW] * count
        superblocks = QstrMedAssembler(4, demand=demand[:count]).assemble(small_pools)
        assert len(superblocks) == count

    def test_demand_too_short(self, small_pools):
        with pytest.raises(ValueError):
            QstrMedAssembler(4, demand=[SpeedClass.FAST]).assemble(small_pools)
