"""ManagedSuperblock / SuperblockTable tests."""

import pytest

from repro.core.assembler import SpeedClass
from repro.core.records import BlockRecord
from repro.ftl.superblock import (
    ManagedSuperblock,
    SbState,
    SuperblockStateError,
    SuperblockTable,
)
from repro.nand import SMALL_GEOMETRY, PageType
from repro.utils.bitvec import BitVector


def members(lanes=3):
    return tuple(
        BlockRecord(lane, 0, lane + 10, 1000.0, BitVector([0, 1])) for lane in range(lanes)
    )


def make_sb(lanes=3, sb_id=0):
    return ManagedSuperblock(sb_id, SpeedClass.FAST, members(lanes), SMALL_GEOMETRY)


class TestGeometry:
    def test_capacity(self):
        sb = make_sb(3)
        assert sb.lane_count == 3
        assert sb.pages_per_superwl == 3 * SMALL_GEOMETRY.bits_per_cell
        assert sb.capacity_pages == SMALL_GEOMETRY.pages_per_block * 3

    def test_slot_location_order(self):
        sb = make_sb(2)
        # slots fill lanes first, then page types, then the next LWL
        first = sb.slot_location(0)
        assert (first.lane_index, first.lwl, first.page_type) == (0, 0, PageType.LSB)
        second = sb.slot_location(1)
        assert (second.lane_index, second.page_type) == (1, PageType.LSB)
        third = sb.slot_location(2)
        assert (third.lane_index, third.page_type) == (0, PageType.CSB)
        next_wl = sb.slot_location(sb.pages_per_superwl)
        assert next_wl.lwl == 1

    def test_slot_bounds(self):
        sb = make_sb()
        with pytest.raises(ValueError):
            sb.slot_location(sb.capacity_pages)

    def test_needs_members(self):
        with pytest.raises(ValueError):
            ManagedSuperblock(0, SpeedClass.FAST, (), SMALL_GEOMETRY)


class TestLifecycle:
    def test_claim_advances_pointer(self):
        sb = make_sb()
        slots = sb.claim_slots(sb.pages_per_superwl)
        assert slots == list(range(sb.pages_per_superwl))
        assert sb.next_slot == sb.pages_per_superwl

    def test_claim_overflow(self):
        sb = make_sb()
        sb.claim_slots(sb.capacity_pages)
        assert sb.is_full
        with pytest.raises(SuperblockStateError):
            sb.claim_slots(1)

    def test_claim_validation(self):
        with pytest.raises(ValueError):
            make_sb().claim_slots(0)

    def test_seal_and_erase_states(self):
        sb = make_sb()
        sb.seal()
        assert sb.state is SbState.SEALED
        with pytest.raises(SuperblockStateError):
            sb.claim_slots(1)
        with pytest.raises(SuperblockStateError):
            sb.seal()
        sb.mark_erased()
        assert sb.state is SbState.ERASED

    def test_erase_requires_sealed(self):
        with pytest.raises(SuperblockStateError):
            make_sb().mark_erased()


class TestTable:
    def test_create_assigns_ids(self):
        table = SuperblockTable(SMALL_GEOMETRY)
        a = table.create(SpeedClass.FAST, members())
        b = table.create(SpeedClass.SLOW, members())
        assert (a.sb_id, b.sb_id) == (0, 1)
        assert table.get(1) is b
        assert len(table) == 2

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            SuperblockTable(SMALL_GEOMETRY).get(0)

    def test_open_tracking(self):
        table = SuperblockTable(SMALL_GEOMETRY)
        assert table.open_superblock(SpeedClass.FAST) is None
        sb = table.create(SpeedClass.FAST, members())
        table.set_open(SpeedClass.FAST, sb)
        assert table.open_superblock(SpeedClass.FAST) is sb
        table.set_open(SpeedClass.FAST, None)
        assert table.open_superblock(SpeedClass.FAST) is None

    def test_sealed_listing_and_forget(self):
        table = SuperblockTable(SMALL_GEOMETRY)
        sb = table.create(SpeedClass.FAST, members())
        assert table.sealed() == []
        sb.seal()
        assert table.sealed() == [sb]
        with pytest.raises(SuperblockStateError):
            table.forget(sb.sb_id)
        sb.mark_erased()
        table.forget(sb.sb_id)
        assert len(table) == 0
