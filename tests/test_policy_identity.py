"""The static-default policy fence: byte-identical to the pre-policy stack.

The policy layer's contract is that an all-unset :class:`PolicyConfig` is a
*drop-in*: same config content hashes (the sweep cache must keep hitting)
and byte-for-byte identical JSONL traces (the determinism CI compares them
verbatim).  The hex digests below were captured at the commit immediately
before the policy layer landed; if one of these assertions fires, a
refactor changed simulated behavior — that is a correctness regression, not
a snapshot to refresh casually.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.exp import SimConfig, build_stack
from repro.faults import FaultPlan
from repro.ftl import FtlConfig, WearLevelingConfig
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.policy import PolicyConfig, PolicySpec
from repro.workloads import Replayer


def _plain() -> SimConfig:
    return SimConfig.device(seed=7, chips=4, blocks=24, requests=600)


def _steered() -> SimConfig:
    return SimConfig.device(
        seed=11,
        chips=4,
        blocks=28,
        requests=900,
        ftl=FtlConfig(
            usable_blocks_per_plane=20,
            overprovision_ratio=0.30,
            gc_low_watermark=2,
            gc_high_watermark=4,
            superpage_steering=True,
            wear_leveling=WearLevelingConfig(
                pe_gap_threshold=4, check_interval_erases=4
            ),
        ),
    )


def _faulted() -> SimConfig:
    return SimConfig.device(
        seed=7,
        chips=4,
        blocks=40,
        requests=800,
        ftl=FtlConfig(
            usable_blocks_per_plane=32,
            overprovision_ratio=0.45,
            gc_low_watermark=2,
            gc_high_watermark=4,
        ),
        faults=FaultPlan(program_fail_prob=0.004),
    )


#: (config factory, pre-policy config hash, pre-policy trace sha256)
FENCE = {
    "plain": (
        _plain,
        "3a5f792a954439f5",
        "835cedb88c2b2e5594cb171a23c01a63552113bf2e2f839785eaffe54a98d8e3",
    ),
    "steered": (
        _steered,
        "dc18e964272295c5",
        "d644c5381f69a3b79099c4bc7297d4db5a98d021143692c8e9e5ba1755288ea6",
    ),
    "faulted": (
        _faulted,
        "0343466eb884f36e",
        "ab5530fed91403dda791b86b1f21189575b8acf0c6144170ee68c7fdeb94574b",
    ),
}


def trace_digest(config: SimConfig, tmp_path: Path) -> str:
    tracer = Tracer()
    stack = build_stack(config, tracer=tracer)
    Replayer(stack.ssd).replay(stack.requests())
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, tracer.events)
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("name", sorted(FENCE))
def test_default_policies_keep_pre_policy_config_hash(name: str) -> None:
    factory, config_hash, _ = FENCE[name]
    assert factory().content_hash() == config_hash


@pytest.mark.parametrize("name", sorted(FENCE))
def test_default_policies_replay_byte_identical_traces(
    name: str, tmp_path: Path
) -> None:
    factory, _, trace_sha = FENCE[name]
    assert trace_digest(factory(), tmp_path) == trace_sha


def test_explicit_static_specs_normalize_to_the_default_hash() -> None:
    # Spelling out the built-in static policies is the same config as
    # leaving every slot unset — the cache key must not fork on notation.
    explicit = _plain().with_(
        policies=PolicyConfig(
            assembly=PolicySpec("assembly.qstr"),
            allocation=PolicySpec("allocation.static"),
            gc_victim=PolicySpec("gc.min_valid"),
            wear=PolicySpec("wear.coldest"),
        )
    )
    assert explicit.policies.is_default
    assert explicit.content_hash() == FENCE["plain"][1]


def test_legacy_repair_field_and_policy_slot_replay_identically(
    tmp_path: Path,
) -> None:
    # FtlConfig.repair_policy="random" (deprecated) and
    # policies.repair="repair.random" must drive the same draws: the repair
    # policy consumes the FTL's legacy ("ftl", "repair") stream either way.
    base = _faulted()
    legacy = base.with_path("ftl.repair_policy", "random")
    with pytest.deprecated_call():
        legacy_digest = trace_digest(legacy, tmp_path / "a")
    modern = base.with_path("policies.repair", "repair.random")
    modern_digest = trace_digest(modern, tmp_path / "b")
    assert legacy_digest == modern_digest


def test_non_default_policies_fork_the_config_hash() -> None:
    config = _plain().with_path("policies.allocation", "allocation.bandit")
    assert not config.policies.is_default
    assert config.content_hash() != FENCE["plain"][1]
    # and the round trip through dict form preserves the fork
    assert SimConfig.from_dict(config.to_dict()) == config
