"""Shared fixtures.

Most tests run on SMALL_GEOMETRY (2 planes x 32 blocks x 8 layers x 4
strings) so the whole suite stays fast; a handful of structure tests use the
paper geometry with tiny pools.  Expensive artifacts are session-scoped —
tests must treat them as read-only and build their own chips when they
mutate state.
"""

from __future__ import annotations

import pytest

from repro.assembly import build_lane_pools
from repro.nand import (
    PAPER_GEOMETRY,
    SMALL_GEOMETRY,
    FlashChip,
    NandGeometry,
    VariationModel,
    VariationParams,
)

TEST_SEED = 1234


@pytest.fixture(scope="session")
def small_model() -> VariationModel:
    return VariationModel(SMALL_GEOMETRY, VariationParams(), seed=TEST_SEED)


@pytest.fixture(scope="session")
def paper_model() -> VariationModel:
    return VariationModel(PAPER_GEOMETRY, VariationParams(), seed=TEST_SEED)


def make_chips(model: VariationModel, count: int = 4):
    """Fresh stateful chips over (stateless) cached profiles."""
    return [
        FlashChip(model.chip_profile(chip_id), model.geometry)
        for chip_id in range(count)
    ]


@pytest.fixture()
def small_chips(small_model):
    return make_chips(small_model, 4)


@pytest.fixture(scope="session")
def small_pools(small_model):
    """Measured pools over 24 blocks per lane (read-only for tests)."""
    chips = make_chips(small_model, 4)
    return build_lane_pools(chips, range(24))


@pytest.fixture(scope="session")
def paper_pools(paper_model):
    """Small paper-geometry pools (read-only); used by ordering tests."""
    chips = make_chips(paper_model, 4)
    return build_lane_pools(chips, range(48))
