"""Wear-leveling tests: the leveler unit and its FTL integration."""

import numpy as np
import pytest

from repro.ftl import Ftl, FtlConfig, WearLeveler, WearLevelingConfig
from repro.ftl.wear_leveling import WearReport
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams


def make_chips(count=2, seed=17):
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=seed
    )
    return [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(count)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WearLevelingConfig(pe_gap_threshold=0)
        with pytest.raises(ValueError):
            WearLevelingConfig(check_interval_erases=0)


class TestWearLeveler:
    def make(self, chips, blocks=4, **kwargs):
        usable = [(lane, 0, b) for lane in range(len(chips)) for b in range(blocks)]
        return WearLeveler(
            dict(enumerate(chips)), usable, WearLevelingConfig(**kwargs)
        )

    def test_requires_usable(self):
        with pytest.raises(ValueError):
            WearLeveler({}, [], WearLevelingConfig())

    def test_note_erase_interval(self):
        leveler = self.make(make_chips(), check_interval_erases=3)
        assert not leveler.note_erase()
        assert not leveler.note_erase()
        assert leveler.note_erase()
        assert not leveler.note_erase()  # counter reset

    def test_report_and_gap(self):
        chips = make_chips()
        chips[0].stress_block(0, 0, 50)
        leveler = self.make(chips, pe_gap_threshold=10)
        report = leveler.report()
        assert isinstance(report, WearReport)
        assert report.max_pe == 50
        assert report.min_pe == 0
        assert report.gap == 50
        assert leveler.gap_exceeded()

    def test_gap_not_exceeded_when_even(self):
        leveler = self.make(make_chips(), pe_gap_threshold=10)
        assert not leveler.gap_exceeded()

    def test_coldest_superblock_selection(self):
        chips = make_chips()
        chips[0].stress_block(0, 0, 100)
        chips[1].stress_block(0, 0, 100)
        leveler = self.make(chips)
        hot_sb = (1, [(0, 0, 0), (1, 0, 0)])
        cold_sb = (2, [(0, 0, 1), (1, 0, 1)])
        assert leveler.coldest_superblock([hot_sb, cold_sb]) == 2
        assert leveler.rotations_triggered == 1

    def test_no_candidates(self):
        leveler = self.make(make_chips())
        assert leveler.coldest_superblock([]) is None

    def test_skips_rotation_when_coldest_is_hot(self):
        # if every sealed SB is hotter than the average, rotating gains nothing
        chips = make_chips()
        chips[0].stress_block(0, 0, 100)
        chips[1].stress_block(0, 0, 100)
        leveler = self.make(chips)
        hot_only = [(1, [(0, 0, 0), (1, 0, 0)])]
        assert leveler.coldest_superblock(hot_only) is None


class TestFtlIntegration:
    def build(self, wl: bool, seed=23):
        chips = make_chips(3, seed=seed)
        config = FtlConfig(
            usable_blocks_per_plane=12,
            overprovision_ratio=0.35,
            gc_low_watermark=2,
            gc_high_watermark=3,
            wear_leveling=(
                WearLevelingConfig(pe_gap_threshold=6, check_interval_erases=4)
                if wl
                else None
            ),
        )
        ftl = Ftl(chips, config)
        ftl.format()
        return ftl

    def run_hot_cold(self, ftl, rounds=6):
        rng = np.random.default_rng(0)
        hot = max(1, ftl.logical_pages // 10)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        for _ in range(ftl.logical_pages * rounds):
            if rng.random() < 0.95:
                ftl.write(int(rng.integers(hot)))
            else:
                ftl.write(int(rng.integers(hot, ftl.logical_pages)))
        ftl.flush()

    def test_leveler_reduces_wear_gap(self):
        plain = self.build(wl=False)
        self.run_hot_cold(plain)
        leveled = self.build(wl=True)
        self.run_hot_cold(leveled)

        def gap(ftl):
            pes = [
                ftl.chips[lane].pe_cycles(0, b)
                for lane in ftl.lanes
                for b in range(ftl.config.usable_blocks_per_plane)
            ]
            return max(pes) - min(pes)

        assert leveled.wear_leveler is not None
        assert leveled.wear_leveler.rotations_triggered > 0
        assert gap(leveled) < gap(plain)

    def test_integrity_preserved_under_rotation(self):
        ftl = self.build(wl=True)
        self.run_hot_cold(ftl, rounds=4)
        rng = np.random.default_rng(1)
        for lpn in rng.choice(ftl.logical_pages, size=80, replace=False):
            result = ftl.read(int(lpn))  # IntegrityError on corruption
            assert result.located

    def test_disabled_by_default(self):
        ftl = self.build(wl=False)
        assert ftl.wear_leveler is None
