"""SSD timing layer tests."""

import pytest

from repro.ftl import Ftl, FtlConfig
from repro.nand import SMALL_GEOMETRY, FlashChip, VariationModel, VariationParams
from repro.ssd import Ssd, TimingConfig, default_lane_channel_map
from repro.ssd.timing import ResourceClock
from repro.workloads import OpKind, Request


def build_ssd(seed=41, lanes=3):
    model = VariationModel(
        SMALL_GEOMETRY, VariationParams(factory_bad_ratio=0.0), seed=seed
    )
    chips = [FlashChip(model.chip_profile(c), SMALL_GEOMETRY) for c in range(lanes)]
    ftl = Ftl(
        chips,
        FtlConfig(
            usable_blocks_per_plane=10,
            overprovision_ratio=0.3,
            gc_low_watermark=2,
            gc_high_watermark=3,
        ),
    )
    ftl.format()
    return Ssd(ftl, TimingConfig(channels=2))


class TestTimingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimingConfig(channel_mbps=0)
        with pytest.raises(ValueError):
            TimingConfig(command_overhead_us=-1)
        with pytest.raises(ValueError):
            TimingConfig(channels=0)

    def test_transfer_time(self):
        timing = TimingConfig(channel_mbps=100)
        assert timing.transfer_us(100 * 1_000_000) == pytest.approx(1_000_000)
        with pytest.raises(ValueError):
            timing.transfer_us(-1)

    def test_page_transfer(self):
        timing = TimingConfig(channel_mbps=600)
        assert timing.page_transfer_us(SMALL_GEOMETRY) > 0


class TestResourceClock:
    def test_serializes(self):
        clock = ResourceClock("ch0")
        first = clock.acquire(0.0, 10.0)
        second = clock.acquire(0.0, 5.0)
        assert first == 10.0
        assert second == 15.0  # queued behind the first

    def test_idle_gap(self):
        clock = ResourceClock("ch0")
        clock.acquire(0.0, 10.0)
        done = clock.acquire(100.0, 5.0)
        assert done == 105.0

    def test_utilization(self):
        clock = ResourceClock("ch0")
        clock.acquire(0.0, 50.0)
        assert clock.utilization(100.0) == pytest.approx(0.5)
        assert clock.utilization(0.0) == 0.0

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            ResourceClock("x").acquire(0.0, -1.0)


class TestLaneChannelMap:
    def test_round_robin(self):
        assert default_lane_channel_map([0, 1, 2, 3], 2) == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_missing_lane_rejected(self):
        ssd = build_ssd()
        with pytest.raises(ValueError):
            Ssd(ssd.ftl, TimingConfig(), lane_channel_map={0: 0})


class TestService:
    def test_write_latency_positive(self):
        ssd = build_ssd()
        total = ssd.ftl.buffer.superwl_pages * 2
        completed = [
            ssd.submit(Request(time_us=i * 10.0, op=OpKind.WRITE, lpn=i))
            for i in range(total)
        ]
        assert all(c.latency_us >= 0 for c in completed)
        # at least one submit triggered a flush and so saw flash time
        assert max(c.latency_us for c in completed) > 100.0

    def test_buffered_write_is_cheap(self):
        ssd = build_ssd()
        first = ssd.submit(Request(time_us=0.0, op=OpKind.WRITE, lpn=0))
        # one page into an empty buffer: just overhead + transfer
        assert first.latency_us < 100.0

    def test_read_after_write(self):
        ssd = build_ssd()
        total = ssd.ftl.buffer.superwl_pages
        for i in range(total):
            ssd.submit(Request(time_us=float(i), op=OpKind.WRITE, lpn=i))
        read = ssd.submit(Request(time_us=1e6, op=OpKind.READ, lpn=0))
        assert read.latency_us > 0

    def test_trim(self):
        ssd = build_ssd()
        ssd.submit(Request(time_us=0.0, op=OpKind.WRITE, lpn=0))
        done = ssd.submit(Request(time_us=10.0, op=OpKind.TRIM, lpn=0))
        assert done.latency_us == pytest.approx(ssd.timing.command_overhead_us)
        assert not ssd.ftl.read(0).located

    def test_metrics_segregate_ops(self):
        ssd = build_ssd()
        total = ssd.ftl.buffer.superwl_pages
        for i in range(total):
            ssd.submit(Request(time_us=float(i), op=OpKind.WRITE, lpn=i))
        ssd.submit(Request(time_us=1e6, op=OpKind.READ, lpn=0))
        assert ssd.metrics.write_latency_us.count == total
        assert ssd.metrics.read_latency_us.count == 1
        assert ssd.metrics.requests == total + 1

    def test_run_trace(self):
        ssd = build_ssd()
        requests = [
            Request(time_us=i * 100.0, op=OpKind.WRITE, lpn=i % 5) for i in range(20)
        ]
        completed = ssd.run(requests)
        assert len(completed) == 20

    def test_utilization_report(self):
        ssd = build_ssd()
        for i in range(ssd.ftl.buffer.superwl_pages * 2):
            ssd.submit(Request(time_us=float(i), op=OpKind.WRITE, lpn=i))
        report = ssd.utilization()
        assert set(report) == {"channel0", "channel1", "die0", "die1", "die2"}
        assert all(0.0 <= v <= 1.0 for v in report.values())
