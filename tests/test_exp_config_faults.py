"""SimConfig <-> FaultPlan plumbing: normalization, round-trips, hash pins."""

import json
import pickle

import pytest

from repro.exp import SimConfig
from repro.faults import KIND_PROGRAM_FAIL, FaultEvent, FaultPlan
from repro.utils.rng import derive_seed

PLAN = FaultPlan(
    program_fail_prob=0.01,
    erase_fail_prob=0.002,
    events=[FaultEvent(kind=KIND_PROGRAM_FAIL, chip=0, at_op=5)],
)


class TestNullNormalization:
    def test_default_is_none(self):
        assert SimConfig.testbed().faults is None
        assert SimConfig.device().faults is None

    def test_null_plan_normalizes_to_none(self):
        # "no plan" and "an empty plan" must be the same config: equal,
        # equal hashes, equal serializations.
        explicit = SimConfig.testbed(faults=FaultPlan.none())
        implicit = SimConfig.testbed()
        assert explicit.faults is None
        assert explicit == implicit
        assert explicit.content_hash() == implicit.content_hash()

    def test_real_plan_survives(self):
        config = SimConfig.testbed(faults=PLAN)
        assert config.faults == PLAN
        assert config.with_(faults=None).faults is None


class TestSerialization:
    def test_faults_key_omitted_when_none(self):
        assert "faults" not in SimConfig.testbed().to_dict()

    def test_round_trip_with_plan(self):
        config = SimConfig.testbed(faults=PLAN)
        data = config.to_dict()
        assert data["faults"]["program_fail_prob"] == pytest.approx(0.01)
        rebuilt = SimConfig.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == config
        assert rebuilt.faults.events == PLAN.events

    def test_round_trip_without_plan(self):
        config = SimConfig.device(seed=5)
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_pickle_with_plan(self):
        config = SimConfig.testbed(faults=PLAN)
        assert pickle.loads(pickle.dumps(config)) == config


class TestContentHash:
    def test_faults_change_the_hash(self):
        clean = SimConfig.testbed()
        faulted = clean.with_(faults=PLAN)
        assert clean.content_hash() != faulted.content_hash()
        # and different plans hash differently
        other = clean.with_(faults=FaultPlan(program_fail_prob=0.02))
        assert faulted.content_hash() != other.content_hash()

    def test_pre_fault_hashes_are_preserved(self):
        # Pinned from a sweep manifest produced before the faults field
        # existed (`sweep --task replay --preset device --blocks 24
        # --chips 4 --seed 7 --over seed=7,8`).  Fault-free configs must
        # keep hashing exactly as they always did, or every cached sweep
        # result in the wild is silently invalidated.
        base = SimConfig.device(seed=7, chips=4, blocks=24)
        pinned = {7: "9ec5ef166eb73de6", 8: "5a3af85acbbd4fea"}
        for value, expected in pinned.items():
            cell = base.with_(seed=derive_seed(base.seed, "seed", value))
            assert cell.content_hash() == expected
