"""Baseline comparison edge cases: bands, boundaries, missing/NaN metrics."""

import math

import pytest

from repro.perf import SCHEMA_VERSION, compare_docs, render_comparison
from repro.perf.compare import (
    IMPROVED,
    INVALID,
    MISSING,
    NEW,
    OK,
    REGRESSED,
)
from repro.perf.schema import metric


def doc(metrics, suite="quick", schema_version=SCHEMA_VERSION):
    return {
        "schema_version": schema_version,
        "suite": suite,
        "metrics": metrics,
    }


def one(value, direction="higher", tolerance_pct=10.0):
    return doc({"m": metric(value, "u", direction, tolerance_pct)})


class TestDirections:
    def test_higher_regresses_on_drop(self):
        outcome = compare_docs(one(80.0), one(100.0))
        assert outcome.metrics[0].status == REGRESSED
        assert not outcome.passed

    def test_higher_improves_on_gain(self):
        outcome = compare_docs(one(130.0), one(100.0))
        assert outcome.metrics[0].status == IMPROVED
        assert outcome.passed

    def test_lower_regresses_on_growth(self):
        outcome = compare_docs(
            one(1.3, direction="lower"), one(1.0, direction="lower")
        )
        assert outcome.metrics[0].status == REGRESSED

    def test_band_uses_absolute_drift_in_points(self):
        # share 0.50 -> 0.58 is 8 points of drift; band of 10 passes,
        # band of 5 fails — in both drift directions.
        for current in (0.58, 0.42):
            ok = compare_docs(
                one(current, direction="band", tolerance_pct=10.0),
                one(0.50, direction="band", tolerance_pct=10.0),
            )
            assert ok.metrics[0].status == OK
            bad = compare_docs(
                one(current, direction="band", tolerance_pct=5.0),
                one(0.50, direction="band", tolerance_pct=5.0),
            )
            assert bad.metrics[0].status == REGRESSED

    def test_zero_baseline_only_matches_zero(self):
        same = compare_docs(one(0.0), one(0.0))
        assert same.metrics[0].status == OK
        moved = compare_docs(one(0.5), one(0.0))
        assert moved.metrics[0].status == REGRESSED
        assert math.isinf(moved.metrics[0].worse_pct)


class TestToleranceBoundary:
    def test_exact_boundary_is_within_tolerance(self):
        # 10% drop against a 10% band: worse == allowed, not a regression.
        outcome = compare_docs(one(90.0), one(100.0))
        assert outcome.metrics[0].status == OK
        assert outcome.passed

    def test_just_past_boundary_regresses(self):
        outcome = compare_docs(one(89.9), one(100.0))
        assert outcome.metrics[0].status == REGRESSED

    def test_scale_relaxes_the_band(self):
        strict = compare_docs(one(80.0), one(100.0))
        assert not strict.passed
        relaxed = compare_docs(one(80.0), one(100.0), scale=2.5)
        assert relaxed.passed
        assert relaxed.metrics[0].allowed_pct == pytest.approx(25.0)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            compare_docs(one(1.0), one(1.0), scale=0.0)


class TestSilenceMustFail:
    def test_missing_metric_fails(self):
        current = doc({})
        outcome = compare_docs(current, one(100.0))
        assert outcome.metrics[0].status == MISSING
        assert not outcome.passed

    def test_nan_on_either_side_fails(self):
        for current, baseline in (
            (one(float("nan")), one(100.0)),
            (one(100.0), one(float("nan"))),
        ):
            outcome = compare_docs(current, baseline)
            assert outcome.metrics[0].status == INVALID
            assert not outcome.passed

    def test_new_metric_reported_but_never_fails(self):
        current = doc(
            {
                "m": metric(100.0, "u", "higher", 10.0),
                "fresh": metric(1.0, "u", "higher", 10.0),
            }
        )
        outcome = compare_docs(current, one(100.0))
        statuses = {m.name: m.status for m in outcome.metrics}
        assert statuses["fresh"] == NEW
        assert outcome.passed


class TestDocumentGuards:
    def test_stale_schema_fails_before_metric_math(self):
        outcome = compare_docs(one(0.0), one(100.0, tolerance_pct=0.0) | {
            "schema_version": SCHEMA_VERSION + 1
        })
        assert outcome.stale_schema
        assert not outcome.passed
        assert outcome.metrics == []

    def test_suite_mismatch_is_an_error(self):
        outcome = compare_docs(one(100.0), doc(one(100.0)["metrics"], suite="full"))
        assert outcome.errors
        assert not outcome.passed


class TestRendering:
    def test_render_names_metrics_and_verdict(self):
        text = render_comparison(compare_docs(one(80.0), one(100.0)))
        assert "m" in text
        assert "REGRESSED" in text.upper()
        passing = render_comparison(compare_docs(one(100.0), one(100.0)))
        assert "OK" in passing.upper()
