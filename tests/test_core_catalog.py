"""BlockCatalog tests."""

import pytest

from repro.core.catalog import BlockCatalog, CatalogError
from repro.core.records import BlockRecord
from repro.utils.bitvec import BitVector


def record(lane=0, plane=0, block=0, pgm=1000.0):
    return BlockRecord(lane, plane, block, pgm, BitVector([0, 1, 0, 1]))


class TestCatalog:
    def test_sorted_by_latency(self):
        catalog = BlockCatalog(0)
        catalog.add(record(block=1, pgm=300))
        catalog.add(record(block=2, pgm=100))
        catalog.add(record(block=3, pgm=200))
        assert [r.block for r in catalog] == [2, 3, 1]
        assert catalog.fastest().block == 2
        assert catalog.slowest().block == 1

    def test_head_tail_candidates(self):
        catalog = BlockCatalog(0)
        for b in range(6):
            catalog.add(record(block=b, pgm=float(b)))
        assert [r.block for r in catalog.head_candidates(3)] == [0, 1, 2]
        assert [r.block for r in catalog.tail_candidates(3)] == [3, 4, 5]
        assert len(catalog.head_candidates(99)) == 6

    def test_lane_guard(self):
        catalog = BlockCatalog(0)
        with pytest.raises(CatalogError):
            catalog.add(record(lane=1))

    def test_duplicate_guard(self):
        catalog = BlockCatalog(0)
        catalog.add(record(block=5))
        with pytest.raises(CatalogError):
            catalog.add(record(block=5, pgm=999))

    def test_remove(self):
        catalog = BlockCatalog(0)
        r = record(block=5)
        catalog.add(r)
        assert r in catalog
        catalog.remove(r)
        assert r not in catalog
        assert len(catalog) == 0
        with pytest.raises(CatalogError):
            catalog.remove(r)

    def test_empty_extremes(self):
        catalog = BlockCatalog(0)
        assert catalog.fastest() is None
        assert catalog.slowest() is None

    def test_metadata_bytes(self):
        catalog = BlockCatalog(0)
        catalog.add(record(block=0))
        catalog.add(record(block=1))
        assert catalog.metadata_bytes() == 2 * record().metadata_bytes()

    def test_readd_after_remove(self):
        catalog = BlockCatalog(0)
        r = record(block=7, pgm=100)
        catalog.add(r)
        catalog.remove(r)
        updated = record(block=7, pgm=50)
        catalog.add(updated)
        assert catalog.fastest().pgm_total_us == 50
