"""repro.policy — one seedable protocol for every FTL tuning knob.

Specs (:class:`PolicySpec` / :class:`PolicyConfig`) are frozen value
objects living in :class:`~repro.exp.config.SimConfig`; the registry maps
spec names to :class:`Policy` classes; :func:`resolve_policies` builds the
live instances each FTL consults.  Importing this package registers the
built-in static and learned policies.
"""

from repro.policy.base import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    AssemblyContext,
    AssemblyPolicy,
    GcCandidate,
    GcVictimContext,
    GcVictimPolicy,
    Policy,
    RepairContext,
    RepairPolicy,
    WearCandidate,
    WearContext,
    WearPolicy,
)
from repro.policy.registry import (
    POLICIES,
    RegisteredPolicy,
    get_policy,
    make_policy,
    policy_names,
    register_policy,
)
from repro.policy.resolve import ResolvedPolicies, resolve_policies
from repro.policy.spec import (
    DEFAULT_SPECS,
    POLICY_POINTS,
    PolicyConfig,
    PolicySpec,
)

# importing these modules populates the registry with the built-ins
from repro.policy.learned import BanditAllocationPolicy, LatencyPredictorPolicy
from repro.policy.static import (
    ColdestWearPolicy,
    MinValidGcPolicy,
    QstrAssemblyPolicy,
    QstrRepairPolicy,
    RandomRepairPolicy,
    StaticAllocationPolicy,
    choose_similar,
    speed_candidates,
)

__all__ = [
    "POLICY_POINTS",
    "DEFAULT_SPECS",
    "PolicySpec",
    "PolicyConfig",
    "Policy",
    "AssemblyPolicy",
    "AllocationPolicy",
    "GcVictimPolicy",
    "WearPolicy",
    "RepairPolicy",
    "AssemblyContext",
    "AllocationContext",
    "AllocationDecision",
    "GcCandidate",
    "GcVictimContext",
    "WearCandidate",
    "WearContext",
    "RepairContext",
    "POLICIES",
    "RegisteredPolicy",
    "register_policy",
    "get_policy",
    "policy_names",
    "make_policy",
    "ResolvedPolicies",
    "resolve_policies",
    "QstrAssemblyPolicy",
    "StaticAllocationPolicy",
    "MinValidGcPolicy",
    "ColdestWearPolicy",
    "QstrRepairPolicy",
    "RandomRepairPolicy",
    "LatencyPredictorPolicy",
    "BanditAllocationPolicy",
    "choose_similar",
    "speed_candidates",
]
