"""Frozen policy specs: the serializable half of the policy protocol.

A :class:`PolicySpec` names a registered policy (``"assembly.qstr"``,
``"allocation.bandit"``, ...) plus its tuning parameters, and lives inside
:class:`~repro.exp.config.SimConfig` as ``config.policies.<point>``.  Like
:class:`~repro.faults.plan.FaultPlan` it is a frozen, picklable, JSON-round-
trippable value object — the *spec* crosses process-pool boundaries and
participates in content hashing, while the live policy instance (which may
hold an RNG and online state) is constructed fresh inside each worker by
:func:`repro.policy.resolve.resolve_policies`.

Hash compatibility: a :class:`PolicyConfig` whose every slot is unset (or
explicitly set to that slot's default spec, which is normalized back to
unset) serializes to nothing at all — pre-existing configs keep their exact
content hashes, so the sweep cache stays warm across this redesign.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

#: The five decision points the FTL routes through the policy layer, in the
#: order they appear on ``SimConfig.policies``.
POLICY_POINTS: Tuple[str, ...] = (
    "assembly",
    "allocation",
    "gc_victim",
    "wear",
    "repair",
)

#: Registered-name prefix per decision point (``gc_victim`` policies are
#: named ``gc.<name>`` to keep specs compact on the command line).
POINT_PREFIXES: Dict[str, str] = {
    "assembly": "assembly",
    "allocation": "allocation",
    "gc_victim": "gc",
    "wear": "wear",
    "repair": "repair",
}

_SCALAR_TYPES = (str, int, float, bool)


def _parse_param_value(text: str) -> Union[int, float, str]:
    """CLI-style scalar coercion: int, then float, then string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class PolicySpec:
    """One named policy plus its parameters, as a hashable value object.

    ``params`` is stored as a key-sorted tuple of ``(key, value)`` pairs so
    equal specs compare, pickle and hash identically however they were
    built; any Mapping or iterable of pairs passed in is normalized.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("policy name must be a non-empty string")
        if "." not in self.name:
            raise ValueError(
                f"policy name {self.name!r} must be '<point>.<name>' "
                f"(e.g. 'repair.qstr')"
            )
        params = self.params
        if isinstance(params, Mapping):
            pairs: Iterable[Tuple[str, Any]] = params.items()
        else:
            pairs = tuple(tuple(pair) for pair in params)  # type: ignore[misc]
        normalized = []
        for key, value in pairs:
            if not isinstance(key, str) or not key:
                raise ValueError(f"policy param key {key!r} must be a string")
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"policy param {key}={value!r} must be a JSON scalar"
                )
            normalized.append((key, value))
        normalized.sort(key=lambda pair: pair[0])
        if len({key for key, _ in normalized}) != len(normalized):
            raise ValueError(f"duplicate policy params in {self.name!r}")
        object.__setattr__(self, "params", tuple(normalized))

    # -- accessors ---------------------------------------------------------

    @property
    def short_name(self) -> str:
        """The name without its point prefix (``"repair.qstr"`` -> ``"qstr"``)."""
        return self.name.split(".", 1)[1]

    @property
    def prefix(self) -> str:
        """The point prefix (``"repair.qstr"`` -> ``"repair"``)."""
        return self.name.split(".", 1)[0]

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": self.param_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(f"unknown PolicySpec fields: {sorted(unknown)}")
        return cls(name=data["name"], params=data.get("params", ()))

    @classmethod
    def from_text(cls, text: str) -> "PolicySpec":
        """Parse ``"name"`` or ``"name:k=v,k=v"`` (the CLI/sweep-axis form).

        Values coerce int -> float -> str, matching ``--over`` axis parsing.
        """
        name, _, param_text = text.partition(":")
        params: Dict[str, Any] = {}
        if param_text:
            for item in param_text.split(","):
                key, sep, raw = item.partition("=")
                if not sep or not key:
                    raise ValueError(
                        f"bad policy param {item!r} in {text!r} (want k=v)"
                    )
                params[key] = _parse_param_value(raw)
        return cls(name=name, params=params)

    def text(self) -> str:
        """Inverse of :meth:`from_text`."""
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}:{rendered}"


#: What each decision point resolves to when its spec slot is unset.  The
#: ``repair`` slot is special: unset defers to the legacy
#: ``FtlConfig.repair_policy`` string (see ``repro.policy.resolve``), so its
#: default here is only the final fallback.
DEFAULT_SPECS: Dict[str, PolicySpec] = {
    "assembly": PolicySpec("assembly.qstr"),
    "allocation": PolicySpec("allocation.static"),
    "gc_victim": PolicySpec("gc.min_valid"),
    "wear": PolicySpec("wear.coldest"),
    "repair": PolicySpec("repair.qstr"),
}


def _coerce_spec(
    point: str, value: Union[None, str, Mapping[str, Any], PolicySpec]
) -> Optional[PolicySpec]:
    if value is None:
        return None
    if isinstance(value, str):
        value = PolicySpec.from_text(value)
    elif isinstance(value, Mapping):
        value = PolicySpec.from_dict(value)
    if not isinstance(value, PolicySpec):
        raise ValueError(f"policies.{point} must be a PolicySpec, got {value!r}")
    expected = POINT_PREFIXES[point]
    if value.prefix != expected:
        raise ValueError(
            f"policies.{point} must name a {expected!r}-prefixed policy, "
            f"got {value.name!r}"
        )
    return value


@dataclass(frozen=True)
class PolicyConfig:
    """The five policy slots of a :class:`~repro.exp.config.SimConfig`.

    Each slot accepts a :class:`PolicySpec`, a spec dict, or the compact
    ``"name:k=v,..."`` text form (which is what sweep axes and the CLI
    ``--policy`` flag feed through ``with_path``).  A slot explicitly set to
    its default spec is normalized back to ``None`` so config equality,
    serialization and content hashes cannot distinguish the two — except
    ``repair``, whose unset state defers to the legacy
    ``FtlConfig.repair_policy`` field and therefore stays explicit.
    """

    assembly: Optional[PolicySpec] = None
    allocation: Optional[PolicySpec] = None
    gc_victim: Optional[PolicySpec] = None
    wear: Optional[PolicySpec] = None
    repair: Optional[PolicySpec] = None

    def __post_init__(self) -> None:
        for point in POLICY_POINTS:
            spec = _coerce_spec(point, getattr(self, point))
            if point != "repair" and spec == DEFAULT_SPECS[point]:
                spec = None
            object.__setattr__(self, point, spec)

    @property
    def is_default(self) -> bool:
        """True when every slot is unset (pure pre-policy behavior)."""
        return all(getattr(self, point) is None for point in POLICY_POINTS)

    def spec_for(self, point: str) -> Optional[PolicySpec]:
        if point not in POLICY_POINTS:
            raise ValueError(f"unknown policy point {point!r}; pick from {POLICY_POINTS}")
        spec = getattr(self, point)
        return spec  # type: ignore[no-any-return]

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Only the set slots, as spec dicts (empty dict when default)."""
        return {
            f.name: spec.to_dict()
            for f in fields(self)
            for spec in [getattr(self, f.name)]
            if spec is not None
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyConfig":
        unknown = set(data) - set(POLICY_POINTS)
        if unknown:
            raise ValueError(f"unknown PolicyConfig fields: {sorted(unknown)}")
        return cls(**dict(data))
