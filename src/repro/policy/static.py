"""The static (non-learning) policies: the repo's historical behavior.

Each class here is a line-for-line transplant of a decision the FTL used to
hard-code, so resolving an unset :class:`~repro.policy.spec.PolicyConfig`
slot reproduces pre-policy traces byte for byte (pinned in
``tests/test_policy_identity.py``).  Tie-breaking order is part of the
contract: e.g. the assembly choice keeps *first*-best-wins over candidates
in catalog order, because ``BlockCatalog`` preserves insertion order among
equal-latency records.

The similarity helpers (:func:`speed_candidates`, :func:`choose_similar`)
moved here from ``repro.ftl.repair`` so both layers share one definition;
``repro.ftl.repair`` re-exports them for backward compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.assembler import SpeedClass
from repro.core.placement import WriteSource
from repro.core.records import BlockRecord
from repro.policy.base import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    AssemblyContext,
    AssemblyPolicy,
    GcVictimContext,
    GcVictimPolicy,
    RepairContext,
    RepairPolicy,
    WearContext,
    WearPolicy,
)
from repro.policy.registry import register_policy


def speed_candidates(
    records: Sequence[BlockRecord], speed_class: SpeedClass, depth: int
) -> Sequence[BlockRecord]:
    """The ``depth`` records whose total program latency matches the class."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    ordered = sorted(records, key=lambda r: (r.pgm_total_us, r.key()))
    if speed_class is SpeedClass.FAST:
        return ordered[:depth]
    return ordered[-depth:]


def choose_similar(
    candidates: Sequence[BlockRecord], survivors: Sequence[BlockRecord]
) -> BlockRecord:
    """The candidate with the lowest total eigen distance to the survivors.

    Ties break on total program latency then physical address, so the
    choice is deterministic regardless of candidate ordering.
    """
    if not candidates:
        raise ValueError("no candidates to choose from")

    def score(record: BlockRecord) -> Tuple[int, float, Tuple[int, int, int]]:
        distance = sum(record.distance_to(peer) for peer in survivors)
        return (distance, record.pgm_total_us, record.key())

    return min(candidates, key=score)


@register_policy(
    "assembly.qstr",
    description="QSTR-MED member choice: minimum eigen distance to the reference",
)
class QstrAssemblyPolicy(AssemblyPolicy):
    """The paper's pair check: popcount(XOR) against the reference block.

    First-best-wins over candidates in catalog order, matching the original
    inline loop in :class:`repro.core.assembler.OnDemandAssembler`.
    """

    def choose(self, context: AssemblyContext) -> BlockRecord:
        best_record: Optional[BlockRecord] = None
        best_distance: Optional[int] = None
        for candidate in context.candidates:
            distance = context.reference.distance_to(candidate)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_record = candidate
        if best_record is None:
            raise ValueError("assembly.qstr got no candidates")
        return best_record


@register_policy(
    "allocation.static",
    description="Placement-policy routing: host->fast, GC->slow, steering passthrough",
)
class StaticAllocationPolicy(AllocationPolicy):
    """The historical stream choice, verbatim from ``Ftl._stream_for``."""

    def place(self, context: AllocationContext) -> AllocationDecision:
        if context.base_class is SpeedClass.SLOW:
            return AllocationDecision(SpeedClass.SLOW)
        if (
            context.steering_enabled
            and context.intent.source is WriteSource.HOST
            and context.predictor_ready
        ):
            return AllocationDecision(SpeedClass.FAST, express=context.prefers_fast)
        return AllocationDecision(SpeedClass.FAST)


@register_policy(
    "gc.min_valid",
    description="Greedy GC victim: fewest valid pages, superblock id tiebreak",
)
class MinValidGcPolicy(GcVictimPolicy):
    """The classic greedy victim choice from ``Ftl._pick_victim``."""

    def pick(self, context: GcVictimContext) -> Optional[int]:
        if not context.candidates:
            return None
        return min(
            context.candidates, key=lambda c: (c.valid_pages, c.sb_id)
        ).sb_id


@register_policy(
    "wear.coldest",
    description="Rotate the sealed superblock with the lowest mean member P/E",
)
class ColdestWearPolicy(WearPolicy):
    """The threshold scheme's victim choice from ``WearLeveler``.

    First-best-wins on strictly lower mean P/E (table order breaks ties),
    and a candidate hotter than the overall mean is not worth rotating.
    """

    def pick(self, context: WearContext) -> Optional[int]:
        best = None
        for candidate in context.candidates:
            if best is None or candidate.mean_pe < best.mean_pe:
                best = candidate
        if best is None or best.mean_pe > context.overall_mean_pe:
            return None
        return best.sb_id


@register_policy(
    "repair.qstr",
    description="PV-aware spare drafting: speed-matched, eigen-similar to survivors",
)
class QstrRepairPolicy(RepairPolicy):
    """The PV-aware spare choice (``repair_policy=\"qstr\"``)."""

    def draft(self, context: RepairContext) -> BlockRecord:
        return choose_similar(context.candidates, context.survivors)


@register_policy(
    "repair.random",
    description="Conventional-firmware spare drafting: any free block",
)
class RandomRepairPolicy(RepairPolicy):
    """The baseline spare choice (``repair_policy=\"random\"``).

    Draws from the context's repair stream — the FTL's historical
    ``derive_seed(seed, "ftl", "repair")`` generator — so legacy runs stay
    byte-identical.
    """

    def draft(self, context: RepairContext) -> BlockRecord:
        return context.pool[int(context.rng.integers(len(context.pool)))]
