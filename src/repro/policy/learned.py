"""The learned policy instances: online predictor + contextual bandit.

Both adapt at runtime from the same measured program latencies QSTR-MED's
gathering unit already reports, following the adaptive-parameter line of
related work (profile latency variation online instead of trusting a
one-shot map; re-profile as the device ages):

* :class:`LatencyPredictorPolicy` (``assembly.predictor``) starts from the
  eigen-similarity choice and, once enough per-block measurements
  accumulate, switches to matching *predicted* word-line latency against
  the reference — a refinement of the rank assemblers' static ordering.
* :class:`BanditAllocationPolicy` (``allocation.bandit``) is an
  epsilon-greedy contextual bandit steering host writes fast vs slow per
  write-shape bucket, with seed-derived exploration and super-word-line
  completion latency as (negative) reward.

Determinism: the bandit's only randomness comes from its own
``derive_seed(seed, "policy", <name>)`` stream; the predictor draws
nothing.  All state is plain dict/deque/float attributes, so both pickle
across the sweep's process pool.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.assembler import SpeedClass
from repro.core.placement import WriteSource
from repro.core.records import BlockRecord
from repro.policy.base import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    AssemblyContext,
    AssemblyPolicy,
)
from repro.policy.registry import register_policy
from repro.policy.spec import PolicySpec


@register_policy(
    "assembly.predictor",
    description="Online latency predictor refining eigen similarity per block",
)
class LatencyPredictorPolicy(AssemblyPolicy):
    """Match members on *predicted* word-line latency, learned online.

    Until ``warmup`` word-line observations accumulate the choice is
    exactly ``assembly.qstr`` (eigen similarity — the only signal a fresh
    device has).  After warmup, each candidate is scored by the gap between
    its estimated mean word-line latency and the reference's, with eigen
    distance then physical address as tiebreaks.  Estimates start from the
    gathered per-block mean (``pgm_total_us`` over the word-line count) and
    are refined by an exponential moving average (``alpha``) of measured
    program latencies.
    """

    def __init__(self, spec: PolicySpec, seed: int = 0) -> None:
        super().__init__(spec, seed)
        self.alpha = float(spec.get("alpha", 0.25))
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        self.warmup = int(spec.get("warmup", 64))
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        self._estimates: Dict[Tuple[int, int, int], float] = {}
        self.observations = 0

    def observe_program(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> None:
        key = (lane, plane, block)
        previous = self._estimates.get(key)
        if previous is None:
            self._estimates[key] = latency_us
        else:
            self._estimates[key] = (
                (1.0 - self.alpha) * previous + self.alpha * latency_us
            )
        self.observations += 1

    def estimate(self, record: BlockRecord) -> float:
        """Predicted mean word-line program latency of a block."""
        learned = self._estimates.get(record.key())
        if learned is not None:
            return learned
        return record.pgm_total_us / max(1, len(record.eigen))

    def choose(self, context: AssemblyContext) -> BlockRecord:
        if self.observations < self.warmup:
            # cold start: fall back to the paper's eigen pair check
            best: Optional[BlockRecord] = None
            best_distance: Optional[int] = None
            for candidate in context.candidates:
                distance = context.reference.distance_to(candidate)
                if best_distance is None or distance < best_distance:
                    best_distance = distance
                    best = candidate
            if best is None:
                raise ValueError("assembly.predictor got no candidates")
            return best
        reference_estimate = self.estimate(context.reference)

        def score(record: BlockRecord) -> Tuple[float, int, Tuple[int, int, int]]:
            return (
                abs(self.estimate(record) - reference_estimate),
                context.reference.distance_to(record),
                record.key(),
            )

        return min(context.candidates, key=score)


#: the two steering arms and the stream each one lands in
_ARMS: Tuple[str, ...] = ("fast", "slow")


@register_policy(
    "allocation.bandit",
    description="Epsilon-greedy contextual bandit steering host writes fast/slow",
)
class BanditAllocationPolicy(AllocationPolicy):
    """Contextual epsilon-greedy fast/slow steering for host writes.

    Context buckets follow the placement policy's write-shape verdict
    (small-random vs large/sequential); per ``(bucket, arm)`` the policy
    keeps a running mean of super-word-line completion latency and exploits
    the lower-latency arm, exploring with probability ``epsilon`` from its
    own seed-derived stream.  Non-host writes keep their placement class
    untouched, so GC relocation behavior is never perturbed.

    Reward attribution: each host decision enqueues its ``(bucket, arm)``;
    when the FTL reports a flushed super word-line, the completion latency
    credits the oldest pending decisions of that stream, one per host page.
    """

    def __init__(self, spec: PolicySpec, seed: int = 0) -> None:
        super().__init__(spec, seed)
        self.epsilon = float(spec.get("epsilon", 0.1))
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {self.epsilon}")
        self._rng = self.policy_rng()
        self._count: Dict[Tuple[str, str], int] = {}
        self._mean_us: Dict[Tuple[str, str], float] = {}
        self._pending: Dict[str, Deque[Tuple[str, str]]] = {
            arm: deque() for arm in _ARMS
        }
        self.explorations = 0
        self.decisions = 0

    def _exploit(self, bucket: str) -> str:
        # try each arm once before trusting any mean; then lowest mean wins,
        # with the fast arm as the deterministic tiebreak/prior.
        for arm in _ARMS:
            if (bucket, arm) not in self._count:
                return arm
        return min(_ARMS, key=lambda arm: (self._mean_us[(bucket, arm)], arm))

    def place(self, context: AllocationContext) -> AllocationDecision:
        if (
            context.intent.source is not WriteSource.HOST
            or context.base_class is SpeedClass.SLOW
        ):
            return AllocationDecision(context.base_class)
        bucket = "small" if context.prefers_fast else "large"
        self.decisions += 1
        if float(self._rng.random()) < self.epsilon:
            self.explorations += 1
            arm = _ARMS[int(self._rng.integers(len(_ARMS)))]
        else:
            arm = self._exploit(bucket)
        self._pending[arm].append((bucket, arm))
        speed = SpeedClass.FAST if arm == "fast" else SpeedClass.SLOW
        return AllocationDecision(speed)

    def observe_flush(
        self, stream: str, completion_us: float, host_pages: int
    ) -> None:
        queue = self._pending.get("slow" if stream == "slow" else "fast")
        if queue is None:
            return
        for _ in range(min(host_pages, len(queue))):
            key = queue.popleft()
            count = self._count.get(key, 0) + 1
            self._count[key] = count
            mean = self._mean_us.get(key, 0.0)
            self._mean_us[key] = mean + (completion_us - mean) / count
