"""The policy protocol: decision contexts and per-point base classes.

Every tuning knob the FTL used to hard-code is now a call into one of five
policy objects, each receiving a frozen *decision context* carrying exactly
the facts the legacy code consulted:

* :class:`AssemblyPolicy` — which candidate joins a superblock under
  assembly (the reference-anchored member choice of QSTR-MED);
* :class:`AllocationPolicy` — which write stream a host/GC write takes
  (fast vs slow, and express vs bulk under superpage steering);
* :class:`GcVictimPolicy` — which sealed superblock GC reclaims;
* :class:`WearPolicy` — which sealed superblock a wear check rotates;
* :class:`RepairPolicy` — which spare block repairs a failed member.

Determinism contract: a policy that draws randomness must do so from its
own ``"policy"``-labeled stream (:meth:`Policy.policy_rng`, enforced by
lint rule RNG005), never from shared state — so two runs of the same config
and seed make identical decisions in any process.  Policies are constructed
inside each sweep worker from their picklable :class:`~repro.policy.spec.
PolicySpec`; instances themselves must also pickle (they may be embedded in
diagnostics), which every attribute used here satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.assembler import SpeedClass
from repro.core.placement import WriteIntent
from repro.core.records import BlockRecord
from repro.policy.spec import PolicySpec
from repro.utils.rng import derive_seed


# ---------------------------------------------------------------------------
# decision contexts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssemblyContext:
    """One lane's member choice during reference-anchored assembly.

    ``candidates`` is the lane's ``candidate_depth`` head (FAST) or tail
    (SLOW) slice of its latency-sorted catalog, in catalog order.
    """

    speed_class: SpeedClass
    reference: BlockRecord
    candidates: Tuple[BlockRecord, ...]
    lane: int


@dataclass(frozen=True)
class AllocationContext:
    """One write's routing decision.

    ``base_class``/``prefers_fast`` are the placement policy's verdicts for
    this intent, precomputed by the FTL so policies need not re-derive them.
    """

    intent: WriteIntent
    base_class: SpeedClass
    prefers_fast: bool
    steering_enabled: bool
    predictor_ready: bool


@dataclass(frozen=True)
class AllocationDecision:
    """Where an allocation policy routes a write.

    ``express`` only matters for FAST decisions under superpage steering:
    True -> the express substream, False -> bulk, None -> the plain
    unsteered fast stream.
    """

    speed_class: SpeedClass
    express: Optional[bool] = None


@dataclass(frozen=True)
class GcCandidate:
    """One sealed superblock eligible for garbage collection."""

    sb_id: int
    valid_pages: int
    capacity_pages: int


@dataclass(frozen=True)
class GcVictimContext:
    """All reclaimable sealed superblocks, in table order."""

    candidates: Tuple[GcCandidate, ...]


@dataclass(frozen=True)
class WearCandidate:
    """One sealed superblock with its members' mean P/E count."""

    sb_id: int
    mean_pe: float


@dataclass(frozen=True)
class WearContext:
    """Sealed superblocks a due wear check may rotate."""

    candidates: Tuple[WearCandidate, ...]
    overall_mean_pe: float


@dataclass(frozen=True)
class RepairContext:
    """Spare drafting after a member block failed.

    ``pool`` is the lane's whole free pool in catalog (insertion) order —
    the index space the legacy ``random`` policy draws from; ``candidates``
    is the speed-matched depth-cut slice the legacy ``qstr`` policy
    searches.  Both are precomputed by the allocator so policies never
    depend on catalog internals.  ``rng`` is the FTL's historical
    ``derive_seed(seed, "ftl", "repair")`` stream, passed through so legacy
    repair behavior stays byte-identical; new policies preferring their own
    stream should use :meth:`Policy.policy_rng` instead.
    """

    lane: int
    speed_class: SpeedClass
    survivors: Tuple[BlockRecord, ...]
    pool: Tuple[BlockRecord, ...]
    candidates: Tuple[BlockRecord, ...]
    rng: np.random.Generator


# ---------------------------------------------------------------------------
# policy base classes
# ---------------------------------------------------------------------------


class Policy:
    """Base of every pluggable decision policy.

    Holds the frozen spec it was built from plus the root seed; stateful
    subclasses keep their online state on the instance (plain picklable
    attributes only).
    """

    #: which decision point this policy serves; set by each point base.
    point: ClassVar[str] = ""

    def __init__(self, spec: PolicySpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def short_name(self) -> str:
        return self.spec.short_name

    def policy_rng(self) -> np.random.Generator:
        """This policy's own deterministic stream, labeled ``"policy"``.

        Every random draw a policy makes must come from a stream created
        here (lint rule RNG005 enforces the label), keyed by the policy's
        registered name so distinct policies never share a stream.
        """
        return np.random.default_rng(derive_seed(self.seed, "policy", self.spec.name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec.text()!r}, seed={self.seed})"


class AssemblyPolicy(Policy):
    """Chooses each non-reference member during superblock assembly."""

    point: ClassVar[str] = "assembly"

    def choose(self, context: AssemblyContext) -> BlockRecord:
        raise NotImplementedError

    def choose_member(
        self,
        speed_class: SpeedClass,
        reference: BlockRecord,
        candidates: Tuple[BlockRecord, ...],
    ) -> BlockRecord:
        """Adapter for :class:`repro.core.assembler.OnDemandAssembler`.

        The core layer cannot import policy types, so it calls this
        positional form (its ``MemberChooser`` protocol); the context
        object is built here.
        """
        return self.choose(
            AssemblyContext(
                speed_class=speed_class,
                reference=reference,
                candidates=candidates,
                lane=candidates[0].lane if candidates else -1,
            )
        )

    def observe_program(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> None:
        """Measured program latency feedback (no-op unless learning)."""


class AllocationPolicy(Policy):
    """Routes writes to a stream (fast/slow, express/bulk)."""

    point: ClassVar[str] = "allocation"

    def place(self, context: AllocationContext) -> AllocationDecision:
        raise NotImplementedError

    def observe_flush(
        self, stream: str, completion_us: float, host_pages: int
    ) -> None:
        """Super-word-line completion feedback (no-op unless learning)."""


class GcVictimPolicy(Policy):
    """Picks the sealed superblock garbage collection reclaims."""

    point: ClassVar[str] = "gc_victim"

    def pick(self, context: GcVictimContext) -> Optional[int]:
        raise NotImplementedError


class WearPolicy(Policy):
    """Picks the sealed superblock a due wear check rotates (or None)."""

    point: ClassVar[str] = "wear"

    def pick(self, context: WearContext) -> Optional[int]:
        raise NotImplementedError


class RepairPolicy(Policy):
    """Drafts the spare block that repairs a damaged superblock."""

    point: ClassVar[str] = "repair"

    def draft(self, context: RepairContext) -> BlockRecord:
        raise NotImplementedError


#: Decision-point name -> required base class, for registry validation.
POINT_BASES = {
    "assembly": AssemblyPolicy,
    "allocation": AllocationPolicy,
    "gc_victim": GcVictimPolicy,
    "wear": WearPolicy,
    "repair": RepairPolicy,
}
