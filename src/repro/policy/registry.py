"""Name-based policy registry, mirroring ``repro.exp.tasks``.

Policies register under ``"<prefix>.<name>"`` (``"assembly.qstr"``,
``"repair.random"``, ...); the prefix binds the policy to its decision
point, and :func:`get_policy` resolves spec names back to classes at stack
construction time — so unknown names fail loudly when a config is *used*,
not when it is built (specs must stay constructible before the policy
modules import).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type, TypeVar

from repro.policy.base import POINT_BASES, Policy
from repro.policy.spec import POINT_PREFIXES, PolicySpec

P = TypeVar("P", bound=Type[Policy])


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry."""

    name: str
    cls: Type[Policy]
    point: str
    description: str


#: registered name -> entry; populated by the :func:`register_policy`
#: decorators in ``repro.policy.static`` / ``repro.policy.learned`` (and by
#: downstream packages registering their own).
POLICIES: Dict[str, RegisteredPolicy] = {}

_PREFIX_TO_POINT = {prefix: point for point, prefix in POINT_PREFIXES.items()}


def register_policy(name: str, *, description: str = "") -> Callable[[P], P]:
    """Class decorator: register a :class:`Policy` subclass under ``name``.

    The name's prefix must match a decision point and the class must extend
    that point's base class; duplicate names are rejected so two imports
    cannot silently shadow each other.
    """
    prefix = name.split(".", 1)[0] if "." in name else name
    point = _PREFIX_TO_POINT.get(prefix)
    if point is None:
        raise ValueError(
            f"policy name {name!r} must start with one of "
            f"{sorted(_PREFIX_TO_POINT)} followed by '.'"
        )

    def decorator(cls: P) -> P:
        base = POINT_BASES[point]
        if not (isinstance(cls, type) and issubclass(cls, base)):
            raise TypeError(
                f"{name!r} must be registered on a {base.__name__} subclass"
            )
        existing = POLICIES.get(name)
        if existing is not None and existing.cls is not cls:
            raise ValueError(f"policy {name!r} is already registered")
        POLICIES[name] = RegisteredPolicy(
            name=name,
            cls=cls,
            point=point,
            description=description or (cls.__doc__ or "").strip().split("\n")[0],
        )
        return cls

    return decorator


def _ensure_builtins() -> None:
    """Import the built-in policy modules so their decorators have run.

    Lets callers resolve ``"repair.qstr"`` etc. without having imported
    ``repro.policy`` as a package first (e.g. via ``repro.ftl`` alone).
    """
    from repro.policy import learned, static  # noqa: F401


def get_policy(name: str) -> Type[Policy]:
    """The registered class for ``name``; raises on unknown names."""
    entry = POLICIES.get(name)
    if entry is None:
        _ensure_builtins()
        entry = POLICIES.get(name)
    if entry is None:
        raise ValueError(
            f"unknown policy {name!r}; registered: {sorted(POLICIES)}"
        )
    return entry.cls


def policy_names(point: Optional[str] = None) -> List[str]:
    """All registered names, optionally restricted to one decision point."""
    if point is not None and point not in POINT_PREFIXES:
        raise ValueError(
            f"unknown policy point {point!r}; pick from {sorted(POINT_PREFIXES)}"
        )
    _ensure_builtins()
    return sorted(
        name
        for name, entry in POLICIES.items()
        if point is None or entry.point == point
    )


def make_policy(spec: PolicySpec, seed: int = 0) -> Policy:
    """Instantiate the registered policy a spec names."""
    return get_policy(spec.name)(spec, seed)
