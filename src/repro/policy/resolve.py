"""Spec -> instance resolution, including the legacy repair shim.

Only frozen :class:`~repro.policy.spec.PolicySpec` values cross process
boundaries; each sweep worker calls :func:`resolve_policies` when it builds
its stack, so live policy state (RNGs, online estimates) is always born
inside the process that uses it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.policy.base import (
    AllocationPolicy,
    AssemblyPolicy,
    GcVictimPolicy,
    Policy,
    RepairPolicy,
    WearPolicy,
)
from repro.policy.registry import make_policy
from repro.policy.spec import DEFAULT_SPECS, PolicyConfig, PolicySpec


@dataclass
class ResolvedPolicies:
    """The five live policy instances one FTL consults."""

    assembly: AssemblyPolicy
    allocation: AllocationPolicy
    gc_victim: GcVictimPolicy
    wear: WearPolicy
    repair: RepairPolicy


def _resolve_one(point: str, spec: Optional[PolicySpec], seed: int) -> Policy:
    if spec is None:
        spec = DEFAULT_SPECS[point]
    instance = make_policy(spec, seed)
    if instance.point != point:
        raise ValueError(
            f"policy {spec.name!r} serves point {instance.point!r}, "
            f"not {point!r}"
        )
    return instance


def resolve_policies(
    policies: Optional[PolicyConfig] = None,
    *,
    seed: int = 0,
    legacy_repair: Optional[str] = None,
) -> ResolvedPolicies:
    """Build the live policy set for one FTL.

    ``legacy_repair`` is the deprecated ``FtlConfig.repair_policy`` string;
    it only applies while ``policies.repair`` is unset, and any non-default
    value raises a :class:`DeprecationWarning` pointing at the replacement.
    """
    if policies is None:
        policies = PolicyConfig()
    repair_spec = policies.repair
    if repair_spec is None and legacy_repair is not None:
        if legacy_repair != "qstr":
            warnings.warn(
                f"FtlConfig.repair_policy={legacy_repair!r} is deprecated; "
                f"set SimConfig.policies.repair to "
                f"'repair.{legacy_repair}' instead",
                DeprecationWarning,
                stacklevel=2,
            )
        repair_spec = PolicySpec(f"repair.{legacy_repair}")
    resolved = ResolvedPolicies(
        assembly=_resolve_one("assembly", policies.assembly, seed),  # type: ignore[arg-type]
        allocation=_resolve_one("allocation", policies.allocation, seed),  # type: ignore[arg-type]
        gc_victim=_resolve_one("gc_victim", policies.gc_victim, seed),  # type: ignore[arg-type]
        wear=_resolve_one("wear", policies.wear, seed),  # type: ignore[arg-type]
        repair=_resolve_one("repair", repair_spec, seed),  # type: ignore[arg-type]
    )
    return resolved
