"""Repair-policy experiment: post-repair extra latency, ``qstr`` vs ``random``.

The paper's assembly result says eigen-similarity (QSTR-MED) picks
superblock members whose program latencies track each other, shrinking
the MP command's extra latency (max − min across lanes).  This driver
extends that result to *repair time*: when an injected program failure
retires a member mid-life, the drafted spare either comes from the same
similarity search (``qstr``) or is an arbitrary free block (``random``).
Every super word-line programmed on an already-repaired superblock then
lands in ``FtlMetrics.post_repair_extra_us`` — the direct measure of how
well the spare blends into the survivors.

:func:`compare_repair_policies` runs one identical faulted workload under
both policies and reports the paired means; on the testbed config the
``qstr`` mean is strictly lower (asserted in the tier-1 suite and plotted
by EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exp.build import build_stack
from repro.exp.config import SimConfig
from repro.faults.plan import FaultPlan
from repro.ftl.config import REPAIR_POLICIES
from repro.workloads.replay import Replayer


@dataclass(frozen=True)
class RepairPolicyResult:
    """Post-repair behavior of one policy on the shared faulted workload."""

    policy: str
    program_failures: int
    sb_repairs: int
    post_repair_swls: int
    post_repair_extra_mean_us: float
    post_repair_extra_p99_us: float
    repair_copy_mean_us: float
    unlocated_pages: int


@dataclass(frozen=True)
class RepairComparison:
    """The paired ``qstr``-vs-``random`` result (one config, both policies)."""

    config_hash: str
    results: Tuple[RepairPolicyResult, ...]

    def by_policy(self) -> Dict[str, RepairPolicyResult]:
        return {result.policy: result for result in self.results}

    @property
    def qstr_advantage_us(self) -> float:
        """``random`` minus ``qstr`` mean post-repair extra latency (µs).

        Positive means similarity-matched spares blend in better — the
        paper-extending claim this experiment exists to measure.
        """
        by = self.by_policy()
        return (
            by["random"].post_repair_extra_mean_us
            - by["qstr"].post_repair_extra_mean_us
        )


#: faulted device config the comparison runs on by default: large enough
#: for double-digit repairs, small enough for the tier-1 suite.  The
#: overprovisioning is pinned well above the derived default — block
#: retirement eats free blocks, and the experiment needs every lane to
#: survive the full fault schedule under both policies.
def default_fault_config(seed: int = 7, requests: int = 1400) -> SimConfig:
    from repro.ftl.config import FtlConfig

    return SimConfig.device(
        seed=seed,
        chips=4,
        blocks=40,
        requests=requests,
        ftl=FtlConfig(
            usable_blocks_per_plane=32,
            overprovision_ratio=0.45,
            gc_low_watermark=2,
            gc_high_watermark=4,
        ),
        faults=FaultPlan(program_fail_prob=0.004),
    )


def run_repair_policy(config: SimConfig, policy: str) -> RepairPolicyResult:
    """One full faulted replay under ``policy``; read back the fault metrics."""
    if policy not in REPAIR_POLICIES:
        raise ValueError(f"policy must be one of {REPAIR_POLICIES}")
    stack = build_stack(config.with_path("policies.repair", f"repair.{policy}"))
    requests = stack.requests()
    Replayer(stack.ssd).replay(requests)
    metrics = stack.ftl.metrics
    # Data-loss audit over the LPNs the workload actually wrote (a capped
    # fill never touches the rest of the logical space).
    from repro.workloads.model import OpKind

    written = set()
    for request in requests:
        if request.op is OpKind.WRITE:
            written.update(request.lpns())
    unlocated = sum(
        1 for lpn in written if stack.ftl.mapper.lookup(lpn) is None
    )
    return RepairPolicyResult(
        policy=policy,
        program_failures=metrics.program_failures,
        sb_repairs=metrics.sb_repairs,
        post_repair_swls=metrics.post_repair_extra_us.count,
        post_repair_extra_mean_us=metrics.post_repair_extra_us.mean
        if metrics.post_repair_extra_us.count
        else 0.0,
        post_repair_extra_p99_us=metrics.post_repair_extra_us.quantile(0.99)
        if metrics.post_repair_extra_us.count
        else 0.0,
        repair_copy_mean_us=metrics.repair_copy_us.mean
        if metrics.repair_copy_us.count
        else 0.0,
        unlocated_pages=unlocated,
    )


def compare_repair_policies(config: Optional[SimConfig] = None) -> RepairComparison:
    """Run the identical faulted workload under every repair policy.

    The two runs share one config (hence one injected fault schedule —
    injection draws depend only on the config seed and per-chip op
    counts, not on the repair policy), so the comparison is paired: same
    failures, different spares.
    """
    if config is None:
        config = default_fault_config()
    results = tuple(
        run_repair_policy(config, policy) for policy in sorted(REPAIR_POLICIES)
    )
    return RepairComparison(config_hash=config.content_hash(), results=results)


def render_repair_comparison(comparison: RepairComparison) -> str:
    """Plain-text table of the paired comparison (EXPERIMENTS.md format)."""
    lines = [
        f"repair-policy comparison (config {comparison.config_hash})",
        f"{'policy':8s} {'repairs':>8s} {'post-repair SWLs':>17s} "
        f"{'extra mean us':>14s} {'extra p99 us':>13s} {'copy mean us':>13s}",
    ]
    for result in comparison.results:
        lines.append(
            f"{result.policy:8s} {result.sb_repairs:8d} "
            f"{result.post_repair_swls:17d} "
            f"{result.post_repair_extra_mean_us:14.2f} "
            f"{result.post_repair_extra_p99_us:13.2f} "
            f"{result.repair_copy_mean_us:13.1f}"
        )
    lines.append(f"qstr advantage: {comparison.qstr_advantage_us:+.2f} us mean extra")
    return "\n".join(lines)
