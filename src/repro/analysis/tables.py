"""ASCII table rendering for the reproduction reports.

The benches print tables shaped exactly like the paper's Tables I/II/V so a
reader can hold the two side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import MethodRow
from repro.assembly.evaluate import MethodResult

# The paper's reported numbers, for side-by-side printing.
PAPER_TABLE1 = {
    "SEQUENTIAL": (1367.57, 10.45),
    "ERS-LTN": (1118.35, 8.55),
    "PGM-LTN": (1356.38, 10.37),
    "OPTIMAL(8)": (2550.73, 19.49),
    "LWL-RANK(8)": (1845.64, 14.11),
    "PWL-RANK(8)": (2036.86, 15.57),
    "STR-RANK(8)": (2390.05, 18.27),
    "STR-MED(4)": (2189.94, 16.74),
}

PAPER_TABLE2 = {
    "STR-RANK(8)": (2390.05, 18.27),
    "STR-RANK(6)": (2361.06, 18.05),
    "STR-RANK(4)": (2279.14, 17.42),
    "STR-RANK(2)": (1965.78, 15.02),
}

PAPER_TABLE5 = {
    "RANDOM": (13084.17, 41.71),
    "SEQUENTIAL": (11716.60, 40.12),
    "OPTIMAL(8)": (10533.44, 22.65),
    "QSTR-MED(4)": (10911.53, 25.10),
    "STR-MED(4)": (10894.23, 24.97),
}


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Simple fixed-width table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table1(rows: Dict[str, MethodRow]) -> str:
    """Table I: PGM latency reduction and improvement %, vs the paper."""
    body: List[List[str]] = []
    for name, row in rows.items():
        paper = PAPER_TABLE1.get(name)
        body.append(
            [
                name,
                f"{row.reduction_us:,.2f}",
                f"{row.improvement_pct:.2f}%",
                f"{paper[0]:,.2f}" if paper else "-",
                f"{paper[1]:.2f}%" if paper else "-",
            ]
        )
    return render_table(
        ["Method", "PGM LTN down (us)", "Imp. %", "paper (us)", "paper %"], body
    )


def render_table2(rows: Dict[str, MethodRow]) -> str:
    body: List[List[str]] = []
    for name, row in rows.items():
        paper = PAPER_TABLE2.get(name)
        body.append(
            [
                name,
                f"{row.reduction_us:,.2f}",
                f"{row.improvement_pct:.2f}%",
                f"{paper[1]:.2f}%" if paper else "-",
            ]
        )
    return render_table(["Method", "PGM LTN down (us)", "Imp. %", "paper %"], body)


def render_table5(baseline: MethodResult, rows: Dict[str, MethodRow]) -> str:
    """Table V: absolute extra program and erase latency per method."""
    body: List[List[str]] = [
        [
            "RANDOM",
            f"{baseline.mean_extra_program_us:,.2f}",
            f"{baseline.mean_extra_erase_us:,.2f}",
            f"{PAPER_TABLE5['RANDOM'][0]:,.2f}",
            f"{PAPER_TABLE5['RANDOM'][1]:,.2f}",
        ]
    ]
    for name, row in rows.items():
        paper = PAPER_TABLE5.get(name)
        body.append(
            [
                name,
                f"{row.result.mean_extra_program_us:,.2f}",
                f"{row.result.mean_extra_erase_us:,.2f}",
                f"{paper[0]:,.2f}" if paper else "-",
                f"{paper[1]:,.2f}" if paper else "-",
            ]
        )
    return render_table(
        ["Method", "Extra PGM (us)", "Extra ERS (us)", "paper PGM", "paper ERS"], body
    )
