"""Figure series and terminal rendering.

Each ``figNN_*`` helper in :mod:`repro.analysis.experiments` produces raw
series; this module turns them into the rows/points the paper's figures plot
and renders quick ASCII views so benches show the *shape* without a plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.stats import Histogram

SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Coarse one-line chart of a series."""
    if not len(values):
        return ""
    array = np.asarray(values, dtype=float)
    if len(array) > width:
        # bucket-average down to `width` points
        edges = np.linspace(0, len(array), width + 1).astype(int)
        array = np.array(
            [array[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    low, high = float(array.min()), float(array.max())
    if high == low:
        return SPARK_CHARS[len(SPARK_CHARS) // 2] * len(array)
    scaled = (array - low) / (high - low) * (len(SPARK_CHARS) - 1)
    return "".join(SPARK_CHARS[int(round(v))] for v in scaled)


def render_series_block(
    title: str, series: Dict[str, Sequence[float]], width: int = 60
) -> str:
    """A labelled stack of sparklines with min/mean/max annotations."""
    lines = [title]
    label_width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            lines.append(f"  {name.ljust(label_width)}  (empty)")
            continue
        lines.append(
            f"  {name.ljust(label_width)}  {sparkline(array, width)}  "
            f"[min {array.min():,.1f}  mean {array.mean():,.1f}  max {array.max():,.1f}]"
        )
    return "\n".join(lines)


def histogram_rows(histogram: Histogram) -> List[Tuple[float, int]]:
    """The (bin center, count) rows a Figure-13-style plot uses."""
    return histogram.series()


def render_histogram(title: str, histogram: Histogram, width: int = 50) -> str:
    """Horizontal-bar ASCII histogram."""
    lines = [title]
    peak = max(histogram.counts) if any(histogram.counts) else 1
    for center, count in histogram.series():
        bar = "#" * int(round(count / peak * width))
        lines.append(f"  {center:>12,.1f} | {bar} {count}")
    return "\n".join(lines)


def cumulative_mean(values: Sequence[float]) -> np.ndarray:
    """Running mean — the smoothed trend line Figure 14 effectively shows."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return array
    return np.cumsum(array) / (np.arange(array.size) + 1)


def improvement_series(
    baseline: Sequence[float], method: Sequence[float]
) -> np.ndarray:
    """Per-superblock improvement % of a method over the baseline."""
    base = np.asarray(baseline, dtype=float)
    other = np.asarray(method, dtype=float)
    if base.shape != other.shape:
        raise ValueError("series must align")
    with np.errstate(divide="ignore", invalid="ignore"):
        result = (base - other) / base * 100.0
    return np.nan_to_num(result, nan=0.0, posinf=0.0, neginf=0.0)
