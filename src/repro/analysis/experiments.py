"""Experiment drivers for every table and figure of the paper.

Each function builds exactly the data one table/figure reports, using the
same synthetic testbed (four chips, 400-block pools per chip by default —
the per-P/E-cycle superblock budget of Section IV-A).  The benchmark
harness and the examples call these; EXPERIMENTS.md records the outputs
next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.assembly import (
    Assembler,
    LanePool,
    MethodResult,
    OptimalAssembler,
    RandomAssembler,
    StrMedianAssembler,
    build_lane_pools,
    evaluate_assembler,
)
from repro.characterization.prober import Prober
from repro.core import QstrMedAssembler
from repro.exp import MethodEvaluator, MethodRow, SimConfig, build_stack, make_assembler
from repro.nand import PAPER_GEOMETRY, FlashChip, NandGeometry, VariationParams
from repro.utils.stats import Histogram

DEFAULT_SEED = 2024
DEFAULT_CHIPS = 4
DEFAULT_POOL_BLOCKS = 400


@dataclass(frozen=True)
class TestbedConfig:
    """Scale of one experiment run (defaults mirror the paper's setup).

    Thin argparse-era shim kept for backward compatibility; new code should
    use :class:`repro.exp.SimConfig` directly.
    """

    geometry: NandGeometry = PAPER_GEOMETRY
    params: VariationParams = field(default_factory=VariationParams)
    seed: int = DEFAULT_SEED
    chips: int = DEFAULT_CHIPS
    pool_blocks: int = DEFAULT_POOL_BLOCKS

    def to_sim_config(self) -> SimConfig:
        return SimConfig(
            seed=self.seed,
            chips=self.chips,
            pool_blocks=self.pool_blocks,
            geometry=self.geometry,
            variation=self.params,
        )


def build_testbed(config: TestbedConfig = TestbedConfig()) -> List[FlashChip]:
    """The chips one experiment runs on (via the one construction path)."""
    return build_stack(config.to_sim_config()).chips


def standard_pools(
    chips: Sequence[FlashChip],
    pool_blocks: int = DEFAULT_POOL_BLOCKS,
    target_pe: Optional[int] = None,
) -> List[LanePool]:
    """Probe the standard block range on every chip."""
    return build_lane_pools(chips, range(pool_blocks), target_pe=target_pe)


# ---------------------------------------------------------------------------
# Tables I, II, V
# ---------------------------------------------------------------------------


TABLE1_METHODS = (
    "SEQUENTIAL",
    "ERS-LTN",
    "PGM-LTN",
    "OPTIMAL(8)",
    "LWL-RANK(8)",
    "PWL-RANK(8)",
    "STR-RANK(8)",
    "STR-MED(4)",
)


def _assembler_for(name: str, seed: int = 1) -> Assembler:
    """Back-compat alias for :func:`repro.exp.make_assembler`."""
    return make_assembler(name, seed=seed)


def run_methods(
    pools: Sequence[LanePool], names: Sequence[str], seed: int = 1
) -> Tuple[MethodResult, Dict[str, MethodRow]]:
    """Evaluate methods against the random baseline on identical pools."""
    evaluator = MethodEvaluator(pools, seed=seed)
    return evaluator.result("RANDOM"), evaluator.rows(names)


def table1_eight_directions(pools: Sequence[LanePool]) -> Tuple[MethodResult, Dict[str, MethodRow]]:
    """Table I: the eight directions' program-latency reduction."""
    return run_methods(pools, TABLE1_METHODS)


def table2_window_sweep(
    pools: Sequence[LanePool], windows: Sequence[int] = (8, 6, 4, 2)
) -> Tuple[MethodResult, Dict[str, MethodRow]]:
    """Table II: STR-RANK under different window sizes."""
    names = [f"STR-RANK({w})" for w in windows]
    return run_methods(pools, names)


TABLE5_METHODS = ("SEQUENTIAL", "OPTIMAL(8)", "QSTR-MED(4)", "STR-MED(4)")


def table5_extra_latency(pools: Sequence[LanePool]) -> Tuple[MethodResult, Dict[str, MethodRow]]:
    """Table V: extra program/erase latency of the headline methods."""
    return run_methods(pools, TABLE5_METHODS)


# ---------------------------------------------------------------------------
# Figure 5 — characterization series
# ---------------------------------------------------------------------------


@dataclass
class CharacterizationSeries:
    """The raw series Figure 5 plots."""

    # (chip_id, plane) -> [(block, tBERS)]
    erase_by_chip_plane: Dict[Tuple[int, int], List[Tuple[int, float]]]
    # (chip_id, block) -> per-LWL tPROG curve
    program_curves: Dict[Tuple[int, int], np.ndarray]


def fig5_characterization(
    chips: Sequence[FlashChip],
    erase_blocks: int = 400,
    curve_blocks: Sequence[int] = (0, 1, 2, 3),
) -> CharacterizationSeries:
    """Collect Figure 5's data: tBERS per block (top), tPROG per WL (bottom)."""
    erase_series: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}
    program_curves: Dict[Tuple[int, int], np.ndarray] = {}
    for chip in chips:
        prober = Prober(chip)
        for plane in range(chip.geometry.planes_per_chip):
            series: List[Tuple[int, float]] = []
            for block in range(erase_blocks):
                if chip.is_bad(plane, block):
                    continue
                measurement = prober.probe_block(plane, block)
                series.append((block, measurement.erase_latency_us))
                if plane == 0 and block in curve_blocks:
                    program_curves[(chip.chip_id, block)] = measurement.lwl_latencies()
            erase_series[(chip.chip_id, plane)] = series
    return CharacterizationSeries(
        erase_by_chip_plane=erase_series, program_curves=program_curves
    )


# ---------------------------------------------------------------------------
# Figure 6 — extra latency of random superblocks
# ---------------------------------------------------------------------------


@dataclass
class RandomExtraSeries:
    """Per-superblock extra latencies under random assembly (Figure 6)."""

    extra_program_us: List[float]
    extra_erase_us: List[float]

    @property
    def mean_program(self) -> float:
        return float(np.mean(self.extra_program_us))

    @property
    def mean_erase(self) -> float:
        return float(np.mean(self.extra_erase_us))


def fig6_random_extra(pools: Sequence[LanePool], seed: int = 1) -> RandomExtraSeries:
    result = evaluate_assembler(RandomAssembler(seed=seed), pools)
    return RandomExtraSeries(
        extra_program_us=result.extra_program_us,
        extra_erase_us=result.extra_erase_us,
    )


# ---------------------------------------------------------------------------
# Figure 13 — extra-latency distributions
# ---------------------------------------------------------------------------


def fig13_distributions(
    rows: Dict[str, MethodRow],
    baseline: MethodResult,
    bins: int = 30,
) -> Dict[str, Histogram]:
    """Histogram of per-superblock extra program latency per method."""
    all_values: List[float] = list(baseline.extra_program_us)
    for row in rows.values():
        all_values.extend(row.result.extra_program_us)
    low = min(all_values)
    high = max(all_values) * 1.0001
    histograms: Dict[str, Histogram] = {}
    baseline_hist = Histogram(low=low, high=high, bins=bins)
    baseline_hist.extend(baseline.extra_program_us)
    histograms["RANDOM"] = baseline_hist
    for name, row in rows.items():
        hist = Histogram(low=low, high=high, bins=bins)
        hist.extend(row.result.extra_program_us)
        histograms[name] = hist
    return histograms


# ---------------------------------------------------------------------------
# Figure 14 — per-superblock improvement, STR-MED vs QSTR-MED
# ---------------------------------------------------------------------------


@dataclass
class PerSuperblockSeries:
    """Per-superblock extra program latency for two practical schemes."""

    str_med: List[float]
    qstr_med: List[float]
    random: List[float]


def fig14_per_superblock(pools: Sequence[LanePool], seed: int = 1) -> PerSuperblockSeries:
    random_result = evaluate_assembler(RandomAssembler(seed=seed), pools)
    str_result = evaluate_assembler(StrMedianAssembler(4), pools)
    qstr_result = evaluate_assembler(QstrMedAssembler(4), pools)
    return PerSuperblockSeries(
        str_med=str_result.extra_program_us,
        qstr_med=qstr_result.extra_program_us,
        random=random_result.extra_program_us,
    )


# ---------------------------------------------------------------------------
# Figure 15 — P/E cycle sensitivity
# ---------------------------------------------------------------------------


@dataclass
class PeSweepPoint:
    """Method outcomes at one P/E epoch."""

    pe: int
    random: MethodResult
    qstr_med: MethodResult
    str_med: MethodResult
    optimal: Optional[MethodResult] = None


def fig15_pe_sweep(
    chips: Sequence[FlashChip],
    pe_points: Sequence[int] = tuple(range(0, 3001, 200)),
    pool_blocks: int = DEFAULT_POOL_BLOCKS,
    include_optimal: bool = False,
    seed: int = 1,
) -> List[PeSweepPoint]:
    """Re-probe and re-assemble at increasing wear (Figure 15 / Fig 6 inset).

    The same physical blocks are stress-cycled to each epoch and re-measured,
    exactly like the paper's chamber runs.
    """
    points: List[PeSweepPoint] = []
    for pe in sorted(pe_points):
        pools = build_lane_pools(chips, range(pool_blocks), target_pe=pe)
        random_result = evaluate_assembler(RandomAssembler(seed=seed), pools)
        qstr_result = evaluate_assembler(QstrMedAssembler(4), pools)
        str_result = evaluate_assembler(StrMedianAssembler(4), pools)
        optimal_result = (
            evaluate_assembler(OptimalAssembler(8), pools) if include_optimal else None
        )
        points.append(
            PeSweepPoint(
                pe=pe,
                random=random_result,
                qstr_med=qstr_result,
                str_med=str_result,
                optimal=optimal_result,
            )
        )
    return points
