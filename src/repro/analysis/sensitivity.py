"""Sensitivity of the reproduction to the synthetic-chip assumptions.

The variation model's magnitudes are calibrated to the paper's numbers, so
a fair question is whether QSTR-MED's advantage is an artifact of that
calibration.  This driver re-runs the headline comparison while scaling one
model ingredient at a time (noise, string-pattern strength, chip profile,
measurement quantization) and over fresh wafer seeds, reporting how the
improvement moves.  The claim that must survive: QSTR-MED beats random by a
meaningful margin whenever *any* block-level similarity exists — the exact
percentage, not the effect, is what calibration pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.assembly import RandomAssembler, build_lane_pools, evaluate_assembler
from repro.core import QstrMedAssembler
from repro.nand import FlashChip, NandGeometry, PAPER_GEOMETRY, VariationModel, VariationParams


@dataclass(frozen=True)
class SensitivityPoint:
    """One model variant's outcome."""

    label: str
    random_extra_pgm_us: float
    qstr_extra_pgm_us: float
    qstr_improvement_pct: float
    qstr_erase_improvement_pct: float


#: knob name -> how to apply a scale factor to the params
KNOBS: Dict[str, Callable[[VariationParams, float], VariationParams]] = {
    "wl_noise": lambda p, f: replace(p, sigma_wl_noise_us=p.sigma_wl_noise_us * f),
    "string_pattern": lambda p, f: replace(p, sigma_string_us=p.sigma_string_us * f),
    "chip_profile": lambda p, f: replace(
        p, sigma_chip_profile_us=p.sigma_chip_profile_us * f
    ),
    "quantization": lambda p, f: replace(p, prog_quant_us=p.prog_quant_us * f),
    "block_offsets": lambda p, f: replace(
        p,
        sigma_block_drift_us=p.sigma_block_drift_us * f,
        sigma_block_resid_us=p.sigma_block_resid_us * f,
    ),
}


def evaluate_variant(
    label: str,
    params: VariationParams,
    *,
    geometry: NandGeometry = PAPER_GEOMETRY,
    seed: int = 2024,
    chips: int = 4,
    pool_blocks: int = 150,
) -> SensitivityPoint:
    """Run the random-vs-QSTR-MED comparison under one model variant."""
    model = VariationModel(geometry, params, seed=seed)
    testbed = [FlashChip(model.chip_profile(c), geometry) for c in range(chips)]
    pools = build_lane_pools(testbed, range(pool_blocks))
    baseline = evaluate_assembler(RandomAssembler(seed=1), pools)
    qstr = evaluate_assembler(QstrMedAssembler(4), pools)
    return SensitivityPoint(
        label=label,
        random_extra_pgm_us=baseline.mean_extra_program_us,
        qstr_extra_pgm_us=qstr.mean_extra_program_us,
        qstr_improvement_pct=qstr.program_improvement_vs(baseline),
        qstr_erase_improvement_pct=qstr.erase_improvement_vs(baseline),
    )


def knob_sweep(
    knob: str,
    factors: Sequence[float] = (0.5, 1.0, 2.0),
    **kwargs,
) -> List[SensitivityPoint]:
    """Scale one model ingredient and re-run the comparison at each factor."""
    if knob not in KNOBS:
        raise ValueError(f"unknown knob {knob!r}; pick from {sorted(KNOBS)}")
    apply = KNOBS[knob]
    return [
        evaluate_variant(f"{knob} x{factor:g}", apply(VariationParams(), factor), **kwargs)
        for factor in factors
    ]


def seed_sweep(seeds: Sequence[int], **kwargs) -> List[SensitivityPoint]:
    """Fresh wafers: same magnitudes, different realizations."""
    return [
        evaluate_variant(f"seed {seed}", VariationParams(), seed=seed, **kwargs)
        for seed in seeds
    ]
