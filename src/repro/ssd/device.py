"""The SSD device: host request service on top of the FTL.

A request-at-a-time timing simulator: host requests arrive with timestamps,
pages move over per-channel buses (serialized per channel), flash operations
take the latencies the chips report, and MP-style superpage programs
complete at their slowest lane — so the extra latency the paper studies
shows up directly in host-visible service times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.placement import WriteIntent, WriteSource
from repro.ftl.ftl import FlushReport, Ftl
from repro.obs.histograms import LatencyStat
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NullTracer
from repro.ssd.timing import ResourceClock, TimingConfig, default_lane_channel_map
from repro.workloads.model import OpKind, Request


@dataclass(frozen=True)
class CompletedRequest:
    """Service record of one host request."""

    request: Request
    start_us: float
    finish_us: float

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.request.time_us

    @property
    def service_us(self) -> float:
        return self.finish_us - self.start_us


@dataclass
class SsdMetrics:
    """Host-visible latency statistics by operation kind (with tails)."""

    read_latency_us: LatencyStat = field(default_factory=LatencyStat)
    write_latency_us: LatencyStat = field(default_factory=LatencyStat)
    requests: int = 0
    last_finish_us: float = 0.0

    def record(self, completed: CompletedRequest) -> None:
        self.requests += 1
        self.last_finish_us = max(self.last_finish_us, completed.finish_us)
        if completed.request.op is OpKind.READ:
            self.read_latency_us.add(completed.latency_us)
        elif completed.request.op is OpKind.WRITE:
            self.write_latency_us.add(completed.latency_us)


class Ssd:
    """Host interface: submit timestamped requests, get completion times."""

    def __init__(
        self,
        ftl: Ftl,
        timing: TimingConfig = TimingConfig(),
        lane_channel_map: Optional[Dict[int, int]] = None,
        tracer: Optional[NullTracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.ftl = ftl
        self.timing = timing
        # One observability context per stack: unless overridden, the device
        # shares the FTL's tracer/registry so spans from both layers land in
        # one trace.
        self.tracer = ftl.tracer if tracer is None else tracer
        self.registry = ftl.registry if registry is None else registry
        if lane_channel_map is None:
            lane_channel_map = default_lane_channel_map(ftl.lanes, timing.channels)
        missing = set(ftl.lanes) - set(lane_channel_map)
        if missing:
            raise ValueError(f"lanes without a channel: {sorted(missing)}")
        self.lane_channel = lane_channel_map

        def clock(name: str) -> ResourceClock:
            timeline = (
                self.registry.timeline(name) if self.registry is not None else None
            )
            return ResourceClock(name, timeline)

        self.channels: Dict[int, ResourceClock] = {
            ch: clock(f"channel{ch}") for ch in sorted(set(lane_channel_map.values()))
        }
        self.dies: Dict[int, ResourceClock] = {
            lane: clock(f"die{lane}") for lane in ftl.lanes
        }
        self.metrics = SsdMetrics()
        self._page_transfer_us = timing.page_transfer_us(ftl.geometry)
        # Live fault injectors need the simulated clock for their
        # time-triggered events; empty (the common case) costs nothing.
        self._injectors = [
            chip.injector for chip in ftl.chips.values() if chip.injector.enabled
        ]

    # -- request service ------------------------------------------------------

    def submit(self, request: Request) -> CompletedRequest:
        """Service one request."""
        now = request.time_us
        self.tracer.advance(now)
        for injector in self._injectors:
            injector.advance(now)
        if request.op is OpKind.WRITE:
            finish = self._service_write(request, now)
        elif request.op is OpKind.READ:
            finish = self._service_read(request, now)
        elif request.op is OpKind.TRIM:
            finish = now + self.timing.command_overhead_us
            for lpn in request.lpns():
                self.ftl.trim(lpn)
        else:
            raise ValueError(f"unsupported op {request.op}")
        completed = CompletedRequest(request=request, start_us=now, finish_us=finish)
        self.metrics.record(completed)
        if self.tracer.enabled:
            self.tracer.complete(
                f"host_{request.op.name.lower()}",
                "ssd.request",
                now,
                finish - now,
                track="host",
                lpn=request.lpn,
                pages=request.pages,
            )
        return completed

    def run(self, requests: Sequence[Request]) -> List[CompletedRequest]:
        """Service a whole trace in order."""
        return [self.submit(request) for request in requests]

    def _service_write(self, request: Request, now: float) -> float:
        finish = now + self.timing.command_overhead_us
        # The request's shape feeds the FTL's superpage steering: multi-page
        # requests count as sequential batch traffic, single/small ones as
        # the random writes Section V-D wants on fast superpages.
        intent = WriteIntent(
            source=WriteSource.HOST,
            pages=request.pages,
            sequential=request.pages >= 8,
        )
        for lpn in request.lpns():
            # Host data crosses some channel into the DRAM buffer; charge the
            # least-loaded channel (controllers stripe DMA).
            channel = min(self.channels.values(), key=lambda c: c.busy_until_us)
            transfer_done = channel.acquire(now, self._page_transfer_us)
            finish = max(finish, transfer_done)
            if self.tracer.enabled:
                self.tracer.complete(
                    "bus_transfer",
                    "ssd.bus",
                    transfer_done - self._page_transfer_us,
                    self._page_transfer_us,
                    track=channel.name,
                    lpn=lpn,
                )
            reports = self.ftl.write(lpn, WriteSource.HOST, intent=intent)
            for report in reports:
                finish = max(finish, self._apply_flush(report, now))
        return finish

    def _apply_flush(self, report: FlushReport, now: float) -> float:
        """Occupy dies/channels for one superpage program; return completion."""
        sb = self.ftl.table.get(report.superblock_id)
        completion = now
        transfer_us = self._page_transfer_us * self.ftl.geometry.bits_per_cell
        for lane_index, record in enumerate(sb.members):
            channel = self.channels[self.lane_channel[record.lane]]
            transfer_done = channel.acquire(now, transfer_us)
            die = self.dies[record.lane]
            # The program occupies the die after its data arrived; the MP
            # command completes when the slowest die finishes.  A lane that
            # had to repair its member first (retire + copy-back onto a
            # spare) holds its die for that extra time too.
            lane_repair_us = (
                report.repair_us[lane_index]
                if lane_index < len(report.repair_us)
                else 0.0
            )
            die_done = die.acquire(transfer_done, report.completion_us + lane_repair_us)
            completion = max(completion, die_done)
            if self.tracer.enabled:
                self.tracer.complete(
                    "data_in",
                    "ssd.bus",
                    transfer_done - transfer_us,
                    transfer_us,
                    track=channel.name,
                    superblock=report.superblock_id,
                    chip=record.lane,
                )
                # The die is held until the MP command's completion; the
                # member's own program time is attached for attribution.
                self.tracer.complete(
                    "chip_program",
                    "ssd.die",
                    transfer_done,
                    report.completion_us,
                    track=die.name,
                    superblock=report.superblock_id,
                    lwl=report.lwl,
                    chip=record.lane,
                    block=record.block,
                    own_latency_us=(
                        round(report.lane_latencies_us[lane_index], 3)
                        if lane_index < len(report.lane_latencies_us)
                        else None
                    ),
                )
        return completion

    def _service_read(self, request: Request, now: float) -> float:
        finish = now + self.timing.command_overhead_us
        for lpn in request.lpns():
            result = self.ftl.read(lpn)
            if not result.located:
                continue
            if result.buffer_hit:
                continue
            location = self.ftl.mapper.lookup(lpn)
            assert location is not None
            sb = self.ftl.table.get(location.superblock_id)
            slot = sb.slot_location(location.slot)
            record = sb.members[slot.lane_index]
            die = self.dies[record.lane]
            sense_done = die.acquire(now, result.latency_us)
            channel = self.channels[self.lane_channel[record.lane]]
            transfer_done = channel.acquire(sense_done, self._page_transfer_us)
            finish = max(finish, transfer_done)
            if self.tracer.enabled:
                self.tracer.complete(
                    "chip_read",
                    "ssd.die",
                    sense_done - result.latency_us,
                    result.latency_us,
                    track=die.name,
                    lpn=lpn,
                    chip=record.lane,
                    block=record.block,
                )
                self.tracer.complete(
                    "bus_transfer",
                    "ssd.bus",
                    transfer_done - self._page_transfer_us,
                    self._page_transfer_us,
                    track=channel.name,
                    lpn=lpn,
                )
        return finish

    # -- reporting ----------------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        elapsed = self.metrics.last_finish_us
        report = {
            clock.name: clock.utilization(elapsed)
            for clock in list(self.channels.values()) + list(self.dies.values())
        }
        return report
