"""SSD-level timing model.

Captures the pieces of service time the FTL does not know about: command
overheads and channel (bus) transfer time.  Flash array time comes from the
chips themselves via the FTL.  The model follows Section II's architecture —
each channel has its own bus, chips on one channel share it, transfers
serialize on the bus while programs/reads proceed in parallel on the dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.nand.geometry import NandGeometry
from repro.obs.registry import UtilizationTimeline


@dataclass(frozen=True)
class TimingConfig:
    """Bus and controller timing knobs."""

    channel_mbps: float = 600.0
    command_overhead_us: float = 3.0
    channels: int = 2

    def __post_init__(self) -> None:
        if self.channel_mbps <= 0:
            raise ValueError("channel_mbps must be positive")
        if self.command_overhead_us < 0:
            raise ValueError("command_overhead_us must be >= 0")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")

    def transfer_us(self, nbytes: int) -> float:
        """Bus time to move ``nbytes`` over one channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / (self.channel_mbps * 1e6) * 1e6  # bytes/MBps -> µs

    def page_transfer_us(self, geometry: NandGeometry) -> float:
        """Bus time of one full page (user + spare)."""
        return self.transfer_us(geometry.page_bytes)


def default_lane_channel_map(lanes: Sequence[int], channels: int) -> Dict[int, int]:
    """Round-robin lanes over channels (lane i -> channel i mod channels)."""
    return {lane: index % channels for index, lane in enumerate(lanes)}


class ResourceClock:
    """Busy-until bookkeeping for one shared resource (a channel, a die).

    When an observability :class:`UtilizationTimeline` is attached, every
    acquisition's ``(start, duration)`` segment is recorded there — a pure
    log of decisions already made, so attaching one never changes timing.
    """

    def __init__(
        self, name: str, timeline: Optional[UtilizationTimeline] = None
    ) -> None:
        self.name = name
        self.busy_until_us = 0.0
        self.busy_time_us = 0.0
        self.timeline = timeline

    def acquire(self, now_us: float, duration_us: float) -> float:
        """Occupy the resource for ``duration_us`` starting no earlier than now.

        Returns the completion time.
        """
        if duration_us < 0:
            raise ValueError("duration must be >= 0")
        start = max(now_us, self.busy_until_us)
        self.busy_until_us = start + duration_us
        self.busy_time_us += duration_us
        if self.timeline is not None:
            self.timeline.record(start, duration_us)
        return self.busy_until_us

    def utilization(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / elapsed_us)
