"""SSD device layer: channel/die timing on top of the FTL."""

from repro.ssd.device import CompletedRequest, Ssd, SsdMetrics
from repro.ssd.timing import ResourceClock, TimingConfig, default_lane_channel_map

__all__ = [
    "Ssd",
    "SsdMetrics",
    "CompletedRequest",
    "TimingConfig",
    "ResourceClock",
    "default_lane_channel_map",
]
