"""The fleet serving engine: a deterministic, sim-time event loop.

:class:`FleetSim` shards tenants across N pre-built :class:`~repro.ssd.device.Ssd`
devices and drives the merged tenant arrival sequence through a single
event heap keyed ``(time_us, seq)`` — the monotonically increasing ``seq``
pins a total order even between simultaneous events, so two runs of the
same config pop, dispatch and account in exactly the same order.

The robustness machinery, all in simulated time:

* **bounded queues / admission control** — a device with ``queue_depth``
  requests in flight rejects new work; rejected requests back off
  (seed-jittered exponential, via ``derive_seed``) and retry;
* **deadlines + retry** — an attempt whose service exceeds ``deadline_us``
  counts a miss and redispatches (bounded by ``max_retries``); the ack is
  the earliest completion any attempt achieved;
* **hedged reads** — once a device has ``hedge_min_samples`` observed read
  services, a read exceeding that device's ``hedge_quantile`` fires a
  second read at a replica; the ack takes the faster of the two;
* **circuit breaker** — per device, fed by injected-fault deltas from
  ``repro.faults`` counters and by hard device errors; an open breaker
  steers traffic to replicas until its cooldown probes half-open;
* **graceful degradation** — a device that throws a fatal error
  (out-of-space / repair-exhausted after a plane outage) or accumulates
  ``eject_hard_faults`` hard media faults is permanently ejected and its
  tenants re-shard onto the survivors; in-flight completions stand, so no
  acknowledged request is ever lost.

Every latency lands in ``repro.obs`` histograms inside the shared
:class:`~repro.obs.registry.MetricsRegistry` (fleet-wide, per-op,
per-tenant and per-device), which is where the report's p50/p99/p99.9/
p99.99 and per-tenant QoS come from — no ad-hoc statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.config import FleetConfig
from repro.fleet.tenants import TenantRequest, fleet_workload, tenant_profile
from repro.ftl.ftl import IntegrityError, OutOfSpaceError, RepairExhaustedError
from repro.nand.errors import FlashError
from repro.obs.histograms import LatencyStat
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.ssd.device import Ssd
from repro.utils.rng import derive_seed
from repro.workloads.model import OpKind, Request

#: Device errors the fleet treats as an immediately fatal device condition.
FATAL_ERRORS = (OutOfSpaceError, RepairExhaustedError)

#: Device errors the fleet absorbs as a failed attempt (retried elsewhere).
DEVICE_ERRORS = (OutOfSpaceError, RepairExhaustedError, IntegrityError, FlashError)


class _RequestState:
    """Mutable serving state of one logical fleet request."""

    __slots__ = (
        "tenant",
        "index",
        "op",
        "lpn",
        "pages",
        "arrival_us",
        "attempts",
        "deadline_retries",
        "best_completion_us",
        "hedged",
        "acked",
        "failed",
    )

    def __init__(self, tr: TenantRequest, lpn: int) -> None:
        self.tenant = tr.tenant
        self.index = tr.index
        self.op = tr.request.op
        self.lpn = lpn
        self.pages = tr.request.pages
        self.arrival_us = tr.request.time_us
        self.attempts = 0
        self.deadline_retries = 0
        self.best_completion_us: Optional[float] = None
        self.hedged = False
        self.acked = False
        self.failed = False


class _DeviceState:
    """One fleet member: the device plus its serving-side bookkeeping."""

    __slots__ = (
        "index",
        "ssd",
        "breaker",
        "ejected",
        "hard_faults",
        "submissions",
        "read_service",
        "_inflight",
        "_seen_faults",
    )

    def __init__(
        self, index: int, ssd: Ssd, breaker: CircuitBreaker, read_service: LatencyStat
    ) -> None:
        self.index = index
        self.ssd = ssd
        self.breaker = breaker
        self.ejected = False
        self.hard_faults = 0
        self.submissions = 0
        #: observed read service times (a registry LatencyStat) — the hedge
        #: threshold is this histogram's configured quantile.
        self.read_service = read_service
        self._inflight: List[float] = []
        self._seen_faults = (0, 0, 0, 0)

    @property
    def name(self) -> str:
        return f"dev{self.index}"

    def inflight(self, now_us: float) -> int:
        while self._inflight and self._inflight[0] <= now_us:
            heapq.heappop(self._inflight)
        return len(self._inflight)

    def note_inflight(self, finish_us: float) -> None:
        heapq.heappush(self._inflight, finish_us)

    def fault_totals(self) -> Tuple[int, int, int, int]:
        prog = erase = storm = outage = 0
        for chip in self.ssd.ftl.chips.values():
            injector = chip.injector
            if not injector.enabled:
                continue
            prog += injector.injected_program_fails
            erase += injector.injected_erase_fails
            storm += injector.injected_read_storms
            outage += injector.injected_plane_outages
        return (prog, erase, storm, outage)

    def fault_deltas(self) -> Tuple[int, int, int, int]:
        totals = self.fault_totals()
        deltas = tuple(t - s for t, s in zip(totals, self._seen_faults))
        self._seen_faults = totals
        return deltas  # type: ignore[return-value]


@dataclass
class FleetReport:
    """Everything one fleet run produced, sourced from the shared registry."""

    fleet: FleetConfig
    seed: int
    requests: int
    elapsed_us: float
    registry: MetricsRegistry
    tenants: List[Dict[str, Any]]
    devices: List[Dict[str, Any]]

    def _tail(self, stat: LatencyStat) -> Dict[str, float]:
        if stat.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "p999": 0.0, "p9999": 0.0, "max": 0.0}
        return {
            "count": stat.count,
            "mean": round(stat.mean, 3),
            "p50": round(stat.quantile(0.50), 3),
            "p99": round(stat.quantile(0.99), 3),
            "p999": round(stat.quantile(0.999), 3),
            "p9999": round(stat.quantile(0.9999), 3),
            "max": round(stat.maximum, 3),
        }

    def counter(self, name: str) -> int:
        return self.registry.counter(f"fleet.{name}").value

    def latency(self, which: str = "latency_us") -> Dict[str, float]:
        return self._tail(self.registry.histogram(f"fleet.{which}"))

    def summary(self) -> Dict[str, Any]:
        """The canonical JSON document (``repro fleet --summary``)."""
        counters = {
            name: self.counter(name)
            for name in (
                "acked",
                "failed",
                "reads",
                "writes",
                "hedges",
                "hedge_wins",
                "retries",
                "rejections",
                "forced_dispatches",
                "deadline_misses",
                "breaker_opens",
                "ejections",
                "media_faults",
                "device_errors",
            )
        }
        return {
            "fleet": self.fleet.to_dict(),
            "seed": self.seed,
            "requests": self.requests,
            "elapsed_us": round(self.elapsed_us, 3),
            "counters": counters,
            "latency": self.latency("latency_us"),
            "read_latency": self.latency("read_latency_us"),
            "write_latency": self.latency("write_latency_us"),
            "tenants": self.tenants,
            "devices": self.devices,
        }


class FleetSim:
    """Shard tenants over pre-built devices and serve their merged stream.

    The devices are built elsewhere (``repro.exp.build.build_fleet`` derives
    one per-device :class:`SimConfig` each, seeded
    ``derive_seed(seed, "fleet", "device", i)``); the engine only *serves*.
    ``pages_per_tenant`` is the tenant slice width — every device maps
    tenant ``t`` to LPNs ``[t * width, (t + 1) * width)``, so re-sharding a
    tenant to another device never renumbers its pages.
    """

    def __init__(
        self,
        fleet: FleetConfig,
        devices: Sequence[Ssd],
        *,
        seed: int,
        pages_per_tenant: int,
        tracer: Optional[NullTracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if len(devices) != fleet.devices:
            raise ValueError(
                f"fleet config wants {fleet.devices} devices, got {len(devices)}"
            )
        if pages_per_tenant < 1:
            raise ValueError("pages_per_tenant must be >= 1")
        needed = fleet.tenants * pages_per_tenant
        for index, ssd in enumerate(devices):
            if ssd.ftl.logical_pages < needed:
                raise ValueError(
                    f"device {index} has {ssd.ftl.logical_pages} logical pages; "
                    f"{fleet.tenants} tenants x {pages_per_tenant} need {needed}"
                )
        self.fleet = fleet
        self.seed = seed
        self.pages_per_tenant = pages_per_tenant
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = MetricsRegistry() if registry is None else registry
        self.devices = [
            _DeviceState(
                index,
                ssd,
                CircuitBreaker(
                    fleet.breaker_threshold,
                    fleet.breaker_window_us,
                    fleet.breaker_cooldown_us,
                ),
                self.registry.histogram(f"fleet.dev{index}.read_service_us"),
            )
            for index, ssd in enumerate(devices)
        ]
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._tenant_writes: Dict[Tuple[int, int], int] = {}
        self._max_attempts = fleet.max_retries + fleet.devices + 2
        self._elapsed_us = 0.0
        self._requests = 0

    # -- small helpers -----------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(f"fleet.{name}").inc(amount)

    def _tenant_count(self, tenant: int, name: str) -> None:
        self.registry.counter(f"fleet.tenant{tenant:03d}.{name}").inc()

    _DISPATCH = 0
    _HEDGE = 1

    def _push(self, time_us: float, kind: int, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_us, self._seq, kind, payload))

    def _healthy(self) -> List[_DeviceState]:
        return [dev for dev in self.devices if not dev.ejected]

    def _candidates(self, tenant: int) -> List[_DeviceState]:
        """The tenant's current replica set (primary first)."""
        healthy = self._healthy()
        if not healthy:
            return []
        width = min(self.fleet.replicas, len(healthy))
        return [healthy[(tenant + k) % len(healthy)] for k in range(width)]

    def _usable(self, dev: _DeviceState, now_us: float) -> bool:
        return (
            not dev.ejected
            and dev.breaker.allow(now_us)
            and dev.inflight(now_us) < self.fleet.queue_depth
        )

    def _backoff_us(self, req: _RequestState, attempt: int) -> float:
        """Seed-stable jittered exponential backoff (sim-time µs)."""
        jitter = (
            derive_seed(self.seed, "fleet", "retry", req.tenant, req.index, attempt)
            % 1024
        )
        exponent = min(attempt - 1, 6)
        return self.fleet.backoff_us * (2.0 ** exponent) * (1.0 + jitter / 4096.0)

    def _hedge_threshold(self, dev: _DeviceState) -> Optional[float]:
        if dev.read_service.count < self.fleet.hedge_min_samples:
            return None
        return dev.read_service.quantile(self.fleet.hedge_quantile)

    # -- device outcome accounting -----------------------------------------

    def _feed_breaker(self, dev: _DeviceState, now_us: float, failed: bool) -> None:
        opens_before = dev.breaker.opens
        if failed:
            dev.breaker.record_failure(now_us)
        else:
            dev.breaker.record_success(now_us)
        if dev.breaker.opens > opens_before:
            self._count("breaker_opens")
            if self.tracer.enabled:
                self.tracer.instant(
                    "breaker_open",
                    "fleet.breaker",
                    ts_us=now_us,
                    track="fleet",
                    device=dev.index,
                    hard_faults=dev.hard_faults,
                )

    def _note_outcome(self, dev: _DeviceState, now_us: float) -> None:
        """Fold the device's injected-fault deltas into breaker/eject state."""
        d_prog, d_erase, d_storm, d_outage = dev.fault_deltas()
        observed = d_prog + d_erase + d_storm + d_outage
        if observed:
            self._count("media_faults", observed)
        hard = d_erase + d_outage
        self._feed_breaker(dev, now_us, failed=bool(observed))
        if hard:
            dev.hard_faults += hard
            if dev.hard_faults >= self.fleet.eject_hard_faults:
                self._eject(dev, now_us, reason="hard_faults")

    def _on_device_error(
        self, dev: _DeviceState, now_us: float, error: Exception
    ) -> None:
        self._count("device_errors")
        dev.fault_deltas()  # absorb the injector counters behind the error
        dev.hard_faults += 1
        self._feed_breaker(dev, now_us, failed=True)
        if self.tracer.enabled:
            self.tracer.instant(
                "device_error",
                "fleet.fault",
                ts_us=now_us,
                track="fleet",
                device=dev.index,
                error=type(error).__name__,
            )
        if isinstance(error, FATAL_ERRORS) or (
            dev.hard_faults >= self.fleet.eject_hard_faults
        ):
            self._eject(dev, now_us, reason=type(error).__name__)

    def _eject(self, dev: _DeviceState, now_us: float, reason: str) -> None:
        if dev.ejected:
            return
        dev.ejected = True
        self._count("ejections")
        if self.tracer.enabled:
            self.tracer.instant(
                "device_ejected",
                "fleet.fault",
                ts_us=now_us,
                track="fleet",
                device=dev.index,
                reason=reason,
                hard_faults=dev.hard_faults,
            )
            self.tracer.instant(
                "fleet_resharded",
                "fleet.shard",
                ts_us=now_us,
                track="fleet",
                healthy=[d.index for d in self._healthy()],
            )

    # -- submission --------------------------------------------------------

    def _submit(
        self, dev: _DeviceState, req: _RequestState, now_us: float
    ) -> Optional[float]:
        """One attempt on one device; ``None`` means the device errored."""
        dev.breaker.begin_probe()
        request = Request(time_us=now_us, op=req.op, lpn=req.lpn, pages=req.pages)
        try:
            completed = dev.ssd.submit(request)
        except DEVICE_ERRORS as error:
            self._on_device_error(dev, now_us, error)
            return None
        dev.submissions += 1
        self._note_outcome(dev, now_us)
        dev.note_inflight(completed.finish_us)
        return completed.finish_us

    # -- the event loop ----------------------------------------------------

    def run(self, workload: Optional[Sequence[TenantRequest]] = None) -> FleetReport:
        """Serve ``workload`` (default: the config's generated streams)."""
        if workload is None:
            workload = fleet_workload(self.fleet, self.seed, self.pages_per_tenant)
        states: List[_RequestState] = []
        for tr in workload:
            lpn = tr.tenant * self.pages_per_tenant + tr.request.lpn
            state = _RequestState(tr, lpn)
            states.append(state)
            self._push(tr.request.time_us, self._DISPATCH, state)
        self._requests = len(states)
        self._count("requests", len(states))
        while self._heap:
            now_us, _, kind, payload = heapq.heappop(self._heap)
            self.tracer.advance(now_us)
            if kind == self._DISPATCH:
                self._dispatch(payload, now_us)
            else:
                self._resolve_hedge(payload, now_us)
        unresolved = [s for s in states if not s.acked and not s.failed]
        assert not unresolved, f"{len(unresolved)} requests left unresolved"
        return self._report()

    def _dispatch(self, req: _RequestState, now_us: float) -> None:
        req.attempts += 1
        candidates = self._candidates(req.tenant)
        if not candidates:
            self._fail(req, now_us)
            return
        if req.op is OpKind.WRITE:
            self._dispatch_write(req, now_us, candidates)
        else:
            self._dispatch_read(req, now_us, candidates)

    def _dispatch_write(
        self, req: _RequestState, now_us: float, candidates: List[_DeviceState]
    ) -> None:
        usable = [dev for dev in candidates if self._usable(dev, now_us)]
        if not usable:
            self._reject(req, now_us)
            return
        completions: List[float] = []
        for dev in usable:
            completion = self._submit(dev, req, now_us)
            if completion is not None:
                completions.append(completion)
                key = (req.tenant, dev.index)
                self._tenant_writes[key] = self._tenant_writes.get(key, 0) + 1
        if not completions:
            self._retry_after_fault(req, now_us)
            return
        # Replicated write: the ack waits for every replica that took it.
        self._after_attempt(req, now_us, max(completions))

    def _dispatch_read(
        self, req: _RequestState, now_us: float, candidates: List[_DeviceState]
    ) -> None:
        with_data = [
            dev
            for dev in candidates
            if self._tenant_writes.get((req.tenant, dev.index), 0) > 0
        ]
        order = with_data or candidates
        usable = [dev for dev in order if self._usable(dev, now_us)]
        if not usable:
            self._reject(req, now_us)
            return
        # Rotate the primary by attempt so a retry lands on a different
        # replica than the one that just missed its deadline.
        primary = usable[(req.attempts - 1) % len(usable)]
        completion = self._submit(primary, req, now_us)
        if completion is None:
            self._retry_after_fault(req, now_us)
            return
        service = completion - now_us
        primary.read_service.add(service)
        threshold = self._hedge_threshold(primary)
        can_hedge = (
            self.fleet.replicas > 1
            and threshold is not None
            and service > threshold
        )
        if can_hedge:
            req.hedged = True
            self._count("hedges")
            if self.tracer.enabled:
                self.tracer.instant(
                    "hedge_fired",
                    "fleet.hedge",
                    ts_us=now_us + (threshold or 0.0),
                    track="fleet",
                    tenant=req.tenant,
                    primary=primary.index,
                    primary_service_us=round(service, 3),
                )
            payload = (req, now_us, completion, primary.index)
            self._push(now_us + (threshold or 0.0), self._HEDGE, payload)
        else:
            self._after_attempt(req, now_us, completion)

    def _resolve_hedge(
        self,
        payload: Tuple[_RequestState, float, float, int],
        now_us: float,
    ) -> None:
        req, dispatched_us, primary_completion, primary_index = payload
        candidates = [
            dev
            for dev in self._candidates(req.tenant)
            if dev.index != primary_index
            and self._tenant_writes.get((req.tenant, dev.index), 0) > 0
            and self._usable(dev, now_us)
        ]
        if not candidates:
            self._after_attempt(req, dispatched_us, primary_completion)
            return
        hedge_completion = self._submit(candidates[0], req, now_us)
        if hedge_completion is not None and hedge_completion < primary_completion:
            self._count("hedge_wins")
            self._after_attempt(req, dispatched_us, hedge_completion)
        else:
            self._after_attempt(req, dispatched_us, primary_completion)

    def _after_attempt(
        self, req: _RequestState, dispatched_us: float, completion_us: float
    ) -> None:
        if (
            req.best_completion_us is None
            or completion_us < req.best_completion_us
        ):
            req.best_completion_us = completion_us
        service = completion_us - dispatched_us
        if service > self.fleet.deadline_us:
            self._count("deadline_misses")
            self._tenant_count(req.tenant, "deadline_misses")
            if req.deadline_retries < self.fleet.max_retries:
                req.deadline_retries += 1
                self._count("retries")
                retry_at = (
                    dispatched_us
                    + self.fleet.deadline_us
                    + self._backoff_us(req, req.attempts)
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fleet_retry",
                        "fleet.retry",
                        ts_us=retry_at,
                        track="fleet",
                        tenant=req.tenant,
                        index=req.index,
                        attempt=req.attempts,
                        service_us=round(service, 3),
                    )
                self._push(retry_at, self._DISPATCH, req)
                return
        self._ack(req, req.best_completion_us)

    def _reject(self, req: _RequestState, now_us: float) -> None:
        """Admission control said no everywhere: back off, then force."""
        self._count("rejections")
        if req.attempts < self._max_attempts:
            retry_at = now_us + self._backoff_us(req, req.attempts)
            if self.tracer.enabled:
                self.tracer.instant(
                    "fleet_reject",
                    "fleet.queue",
                    ts_us=now_us,
                    track="fleet",
                    tenant=req.tenant,
                    index=req.index,
                    attempt=req.attempts,
                )
            self._push(retry_at, self._DISPATCH, req)
            return
        healthy = self._healthy()
        if not healthy:
            self._fail(req, now_us)
            return
        # Out of patience: never drop an admitted request — force it onto
        # the least-loaded survivor past the queue bound.
        self._count("forced_dispatches")
        dev = min(healthy, key=lambda d: (d.inflight(now_us), d.index))
        completion = self._submit(dev, req, now_us)
        if completion is None:
            self._retry_after_fault(req, now_us)
            return
        if req.op is OpKind.WRITE:
            key = (req.tenant, dev.index)
            self._tenant_writes[key] = self._tenant_writes.get(key, 0) + 1
        self._after_attempt(req, now_us, completion)

    def _retry_after_fault(self, req: _RequestState, now_us: float) -> None:
        if req.attempts >= self._max_attempts or not self._healthy():
            self._fail(req, now_us)
            return
        self._push(
            now_us + self._backoff_us(req, req.attempts), self._DISPATCH, req
        )

    def _ack(self, req: _RequestState, completion_us: Optional[float]) -> None:
        assert completion_us is not None
        req.acked = True
        latency = completion_us - req.arrival_us
        self._elapsed_us = max(self._elapsed_us, completion_us)
        self._count("acked")
        self._tenant_count(req.tenant, "acked")
        self.registry.histogram("fleet.latency_us").add(latency)
        self.registry.histogram(
            f"fleet.tenant{req.tenant:03d}.latency_us"
        ).add(latency)
        if req.op is OpKind.READ:
            self._count("reads")
            self.registry.histogram("fleet.read_latency_us").add(latency)
        else:
            self._count("writes")
            self.registry.histogram("fleet.write_latency_us").add(latency)
        if self.tracer.enabled:
            self.tracer.complete(
                "fleet_request",
                "fleet.request",
                req.arrival_us,
                latency,
                track="fleet",
                tenant=req.tenant,
                index=req.index,
                op=req.op.name,
                attempts=req.attempts,
                hedged=req.hedged,
            )

    def _fail(self, req: _RequestState, now_us: float) -> None:
        """Negative-ack: the request is resolved, never silently dropped."""
        req.failed = True
        self._elapsed_us = max(self._elapsed_us, now_us)
        self._count("failed")
        self._tenant_count(req.tenant, "failed")
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet_request_failed",
                "fleet.request",
                ts_us=now_us,
                track="fleet",
                tenant=req.tenant,
                index=req.index,
                attempts=req.attempts,
            )

    # -- reporting ---------------------------------------------------------

    def _report(self) -> FleetReport:
        tenants: List[Dict[str, Any]] = []
        for tenant in range(self.fleet.tenants):
            prefix = f"fleet.tenant{tenant:03d}"
            stat = self.registry.histogram(f"{prefix}.latency_us")
            row: Dict[str, Any] = {
                "tenant": tenant,
                "profile": tenant_profile(self.fleet, tenant),
                "acked": self.registry.counter(f"{prefix}.acked").value,
                "failed": self.registry.counter(f"{prefix}.failed").value,
                "deadline_misses": self.registry.counter(
                    f"{prefix}.deadline_misses"
                ).value,
            }
            if stat.count:
                row["latency"] = {
                    "mean": round(stat.mean, 3),
                    "p50": round(stat.quantile(0.50), 3),
                    "p99": round(stat.quantile(0.99), 3),
                    "p999": round(stat.quantile(0.999), 3),
                }
            tenants.append(row)
        devices: List[Dict[str, Any]] = []
        for dev in self.devices:
            devices.append(
                {
                    "device": dev.index,
                    "submissions": dev.submissions,
                    "ejected": dev.ejected,
                    "hard_faults": dev.hard_faults,
                    "breaker_state": dev.breaker.state,
                    "breaker_opens": dev.breaker.opens,
                }
            )
        return FleetReport(
            fleet=self.fleet,
            seed=self.seed,
            requests=self._requests,
            elapsed_us=self._elapsed_us,
            registry=self.registry,
            tenants=tenants,
            devices=devices,
        )
