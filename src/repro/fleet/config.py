"""Frozen fleet-serving configuration.

:class:`FleetConfig` names everything the sharded multi-SSD serving layer
depends on — population shape (devices, replicas, tenants, per-tenant
request volume), admission control (queue depth), tail-tolerance knobs
(deadline, retries, backoff, hedge quantile), the circuit-breaker window
and the ejection threshold — so a fleet run is a pure function of
``(SimConfig, FleetConfig, seed)``.  It hangs off ``SimConfig.fleet`` and
is omitted from serialization when unset, so pre-existing device configs
content-hash exactly as they did before this package existed.

The class lives below ``repro.exp`` in the layer DAG (``exp`` owns
``SimConfig`` and imports this module, never the reverse).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Tenant workload profiles the fleet knows how to generate (tenants cycle
#: through this set by tenant id; see :mod:`repro.fleet.tenants`).
TENANT_PROFILES: Tuple[str, ...] = ("zipf", "mixed", "hotcold", "smalllarge")


@dataclass(frozen=True)
class FleetConfig:
    """Everything the fleet serving layer depends on, in one value object."""

    #: simulated SSDs in the fleet (each built through ``build_stack``).
    devices: int = 4
    #: copies of each tenant's data (1 = no replication, no hedging).
    replicas: int = 2
    #: tenant population; tenant ``t`` shards to ``healthy[t % len(healthy)]``.
    tenants: int = 8
    #: requests generated per tenant stream.
    requests_per_tenant: int = 128
    #: mean inter-arrival per tenant stream (µs, exponential).
    interarrival_us: float = 2000.0
    #: workload profile cycle; tenant ``t`` uses ``profiles[t % len]``.
    profiles: Tuple[str, ...] = ("zipf", "mixed")
    #: read share of the ``mixed`` profile.
    read_fraction: float = 0.5
    #: per-device in-flight bound; beyond it admission control rejects.
    queue_depth: int = 32
    #: per-attempt service deadline (µs); a late completion triggers a retry.
    deadline_us: float = 50000.0
    #: deadline-driven retries per request (backpressure retries are extra).
    max_retries: int = 2
    #: base retry backoff (µs); exponential in the attempt, seed-jittered.
    backoff_us: float = 500.0
    #: hedge a read once its service exceeds this device-local quantile.
    hedge_quantile: float = 0.95
    #: observed read samples a device needs before its hedge threshold arms.
    hedge_min_samples: int = 32
    #: consecutive failures within the window that open a device's breaker.
    breaker_threshold: int = 3
    #: failure-counting window (µs) of the breaker.
    breaker_window_us: float = 200000.0
    #: how long an open breaker rejects before probing half-open (µs).
    breaker_cooldown_us: float = 100000.0
    #: hard media faults (erase-fail / plane outage / fatal error) before a
    #: device is permanently ejected and its tenants re-sharded.
    eject_hard_faults: int = 2
    #: device index the parent ``SimConfig.faults`` plan is installed on
    #: (the other devices always run fault-free).
    fault_device: int = 0

    def __post_init__(self) -> None:
        if self.devices < 2:
            raise ValueError("a fleet needs at least two devices")
        if not 1 <= self.replicas <= self.devices:
            raise ValueError("replicas must be in [1, devices]")
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.requests_per_tenant < 1:
            raise ValueError("requests_per_tenant must be >= 1")
        if self.interarrival_us <= 0:
            raise ValueError("interarrival_us must be positive")
        profiles = tuple(self.profiles)
        if not profiles:
            raise ValueError("need at least one tenant profile")
        unknown = [p for p in profiles if p not in TENANT_PROFILES]
        if unknown:
            raise ValueError(
                f"unknown tenant profile(s) {unknown}; pick from {TENANT_PROFILES}"
            )
        object.__setattr__(self, "profiles", profiles)
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_us < 0:
            raise ValueError("backoff_us must be >= 0")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_window_us <= 0:
            raise ValueError("breaker_window_us must be positive")
        if self.breaker_cooldown_us <= 0:
            raise ValueError("breaker_cooldown_us must be positive")
        if self.eject_hard_faults < 1:
            raise ValueError("eject_hard_faults must be >= 1")
        if not 0 <= self.fault_device < self.devices:
            raise ValueError("fault_device must name a device index")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict (the ``profiles`` tuple becomes a list in JSON)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetConfig":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown FleetConfig fields: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_spec(cls, spec: str) -> "FleetConfig":
        """Parse a CLI spec.

        ``@path.json`` loads a full config from a JSON file; otherwise the
        spec is comma-separated ``key=value`` pairs over the field names
        (``profiles`` takes a ``+``-separated list), e.g.
        ``devices=4,tenants=8,profiles=zipf+mixed``.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fleet spec")
        if spec.startswith("@"):
            with open(spec[1:], "r", encoding="utf-8") as fh:
                return cls.from_dict(json.load(fh))
        hints = {f.name: f.type for f in dataclasses.fields(cls)}
        kwargs: Dict[str, Any] = {}
        for part in spec.split(","):
            if "=" not in part:
                raise ValueError(f"bad fleet spec fragment {part!r} (want key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in hints:
                raise ValueError(
                    f"unknown fleet spec key {key!r} "
                    f"(want one of {', '.join(sorted(hints))})"
                )
            if key == "profiles":
                kwargs[key] = tuple(v for v in value.split("+") if v)
            elif "float" in str(hints[key]):
                kwargs[key] = float(value)
            else:
                kwargs[key] = int(value)
        return cls(**kwargs)
