"""repro.fleet: a deterministic sharded multi-SSD serving layer.

Tenant streams (``repro.workloads`` generators, seed-split per tenant) are
sharded across N simulated SSDs with the full robustness toolkit — bounded
queues, deadlines with seeded retry/backoff, hedged reads, per-device
circuit breakers, and graceful degradation under injected device faults —
all in simulated time, so a fleet run is byte-identical given its config
and seed.
"""

from repro.fleet.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.fleet.config import TENANT_PROFILES, FleetConfig
from repro.fleet.engine import FleetReport, FleetSim
from repro.fleet.tenants import (
    TenantRequest,
    fleet_workload,
    tenant_profile,
    tenant_stream,
)

__all__ = [
    "CircuitBreaker",
    "FleetConfig",
    "FleetReport",
    "FleetSim",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "TENANT_PROFILES",
    "TenantRequest",
    "fleet_workload",
    "tenant_profile",
    "tenant_stream",
]
