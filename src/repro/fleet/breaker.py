"""Per-device circuit breaker (closed → open → half-open), in sim time.

The classic serving-layer state machine, driven entirely by the simulated
clock the fleet event loop advances — no wall clock, no RNG, so breaker
transitions are a pure function of the observed success/failure sequence:

* **closed** — requests flow; ``breaker_threshold`` consecutive failures
  inside ``window_us`` trip it open;
* **open** — requests are steered away until ``cooldown_us`` has elapsed;
* **half-open** — one probe request is admitted; success closes the
  breaker, failure re-opens it (with a fresh cooldown).
"""

from __future__ import annotations

from typing import List

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-windowed breaker for one device."""

    __slots__ = (
        "threshold",
        "window_us",
        "cooldown_us",
        "state",
        "opened_at_us",
        "opens",
        "_failures_us",
        "_probe_inflight",
    )

    def __init__(
        self, threshold: int, window_us: float, cooldown_us: float
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window_us <= 0 or cooldown_us <= 0:
            raise ValueError("window_us and cooldown_us must be positive")
        self.threshold = threshold
        self.window_us = window_us
        self.cooldown_us = cooldown_us
        self.state = STATE_CLOSED
        self.opened_at_us = 0.0
        self.opens = 0
        self._failures_us: List[float] = []
        self._probe_inflight = False

    def _expire(self, now_us: float) -> None:
        cutoff = now_us - self.window_us
        self._failures_us = [t for t in self._failures_us if t >= cutoff]

    def allow(self, now_us: float) -> bool:
        """May a request be dispatched to this device at ``now_us``?

        In the open state the cooldown elapsing moves the breaker to
        half-open, where exactly one probe is admitted at a time.  The
        check itself never claims the probe slot — callers that actually
        dispatch must pair it with :meth:`begin_probe`, so merely *asking*
        (e.g. while ranking candidates) cannot wedge the device.
        """
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            if now_us - self.opened_at_us < self.cooldown_us:
                return False
            self.state = STATE_HALF_OPEN
            self._probe_inflight = False
        return not self._probe_inflight

    def begin_probe(self) -> None:
        """Claim the half-open probe slot (no-op in other states)."""
        if self.state == STATE_HALF_OPEN:
            self._probe_inflight = True

    def record_success(self, now_us: float) -> None:
        if self.state == STATE_HALF_OPEN:
            self.state = STATE_CLOSED
            self._probe_inflight = False
        self._failures_us.clear()

    def record_failure(self, now_us: float) -> None:
        if self.state == STATE_HALF_OPEN:
            self._open(now_us)
            return
        if self.state == STATE_OPEN:
            return
        self._expire(now_us)
        self._failures_us.append(now_us)
        if len(self._failures_us) >= self.threshold:
            self._open(now_us)

    def _open(self, now_us: float) -> None:
        self.state = STATE_OPEN
        self.opened_at_us = now_us
        self.opens += 1
        self._failures_us.clear()
        self._probe_inflight = False
