"""Per-tenant request streams, multiplexed into one fleet arrival sequence.

Each tenant owns a disjoint logical-page slice (``pages_per_tenant`` pages,
identically placed on every device so re-sharding never renumbers) and an
independent synthetic workload stream seeded via
``derive_seed(seed, "fleet", tenant)`` — adding a tenant, or reordering the
merge, never perturbs another tenant's draws.  The merged sequence is
sorted by ``(arrival time, tenant, per-tenant index)``, a total order two
runs of the same config always agree on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.fleet.config import FleetConfig
from repro.utils.rng import derive_seed
from repro.workloads.model import OpKind, Request, clamp_requests
from repro.workloads.synthetic import (
    ArrivalProcess,
    hot_cold_writes,
    mixed_read_write,
    small_large_mix,
    zipf_writes,
)


@dataclass(frozen=True)
class TenantRequest:
    """One fleet-level request: a tenant id plus its tenant-local request.

    ``request.lpn`` is *tenant-local* (``[0, pages_per_tenant)``); the
    engine adds the tenant's slice base when talking to a device.
    """

    tenant: int
    index: int
    request: Request

    @property
    def time_us(self) -> float:
        return self.request.time_us

    @property
    def op(self) -> OpKind:
        return self.request.op


def tenant_profile(fleet: FleetConfig, tenant: int) -> str:
    """The workload profile tenant ``tenant`` runs (cycled from the config)."""
    return fleet.profiles[tenant % len(fleet.profiles)]


def tenant_stream(
    fleet: FleetConfig, seed: int, tenant: int, pages_per_tenant: int
) -> List[Request]:
    """Tenant ``tenant``'s request list in tenant-local LPN space."""
    if pages_per_tenant < 1:
        raise ValueError("pages_per_tenant must be >= 1")
    tseed = derive_seed(seed, "fleet", tenant)
    arrivals = ArrivalProcess(mean_interarrival_us=fleet.interarrival_us)
    profile = tenant_profile(fleet, tenant)
    count = fleet.requests_per_tenant
    if profile == "zipf":
        requests = zipf_writes(
            pages_per_tenant, count, arrivals=arrivals, seed=tseed
        )
    elif profile == "mixed":
        requests = mixed_read_write(
            pages_per_tenant,
            count,
            read_fraction=fleet.read_fraction,
            arrivals=arrivals,
            seed=tseed,
        )
    elif profile == "hotcold":
        requests = hot_cold_writes(
            pages_per_tenant, count, arrivals=arrivals, seed=tseed
        )
    elif profile == "smalllarge":
        requests = small_large_mix(
            pages_per_tenant,
            count,
            large_pages=min(8, pages_per_tenant),
            arrivals=arrivals,
            seed=tseed,
        )
    else:  # pragma: no cover — FleetConfig validates the profile set
        raise ValueError(f"unknown tenant profile {profile!r}")
    return clamp_requests(requests, pages_per_tenant)


def fleet_workload(
    fleet: FleetConfig, seed: int, pages_per_tenant: int
) -> List[TenantRequest]:
    """All tenant streams merged into one deterministic arrival order."""
    merged: List[TenantRequest] = []
    for tenant in range(fleet.tenants):
        stream = tenant_stream(fleet, seed, tenant, pages_per_tenant)
        merged.extend(
            TenantRequest(tenant=tenant, index=index, request=request)
            for index, request in enumerate(stream)
        )
    merged.sort(key=lambda tr: (tr.request.time_us, tr.tenant, tr.index))
    return merged
