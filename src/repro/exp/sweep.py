"""Deterministic parallel sweep: grid expansion + cached execution.

A :class:`Sweep` is a task name, a base :class:`SimConfig`, fixed task
params, and an ordered list of axes.  ``sweep.over("seed", range(8))``
style chaining expands (lazily) into the full cross-product of cells;
:func:`run` executes them — serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor` — against the on-disk
result cache.

Determinism contract:

* every cell is a pure function of its ``(config, params)``; the runner
  never shares state between cells, so ``workers=1`` and ``workers=N``
  produce bit-identical per-cell results in the same cell order;
* a ``"seed"`` axis value ``v`` maps to the *derived* root seed
  ``derive_seed(base.seed, "seed", v)`` — replicate streams are stable
  whatever the worker count or completion order (use
  ``base.with_(seed=...)`` for a literal seed);
* any other axis naming a (dotted) :class:`SimConfig` field overrides that
  field; remaining axes become per-cell task params (e.g. ``"methods"``).
"""

from __future__ import annotations

import itertools
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.exp.cache import ResultCache, cell_key, code_salt, to_jsonable
from repro.exp.config import SimConfig
from repro.exp.tasks import TASKS, Task
from repro.obs.registry import MetricsRegistry
from repro.utils.rng import derive_seed

AxisValue = Any
Coordinate = Tuple[str, AxisValue]


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: an axis name and its ordered values."""

    name: str
    values: Tuple[AxisValue, ...]


@dataclass(frozen=True)
class Cell:
    """One fully resolved grid point."""

    index: int
    coords: Tuple[Coordinate, ...]
    config: SimConfig
    params: Dict[str, Any]

    @property
    def config_hash(self) -> str:
        return self.config.content_hash()

    def label(self) -> str:
        """Human-readable coordinates, e.g. ``seed=3 pe_cycles=1000``."""
        if not self.coords:
            return "(base)"
        return " ".join(f"{name}={value}" for name, value in self.coords)


class Sweep:
    """An immutable sweep description; ``over`` chains return new sweeps."""

    def __init__(
        self,
        task: str,
        base: Optional[SimConfig] = None,
        params: Optional[Mapping[str, Any]] = None,
        axes: Sequence[Axis] = (),
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r} (known: {sorted(TASKS)})")
        self.task = task
        self.base = base if base is not None else SimConfig()
        self.params: Dict[str, Any] = dict(params or {})
        self.axes: Tuple[Axis, ...] = tuple(axes)

    def over(self, name: str, values: Iterable[AxisValue]) -> "Sweep":
        """A new sweep with one more axis (earlier axes vary slowest)."""
        if any(axis.name == name for axis in self.axes):
            raise ValueError(f"axis {name!r} already swept")
        sequence = tuple(values)
        if not sequence:
            raise ValueError(f"axis {name!r} has no values")
        return Sweep(
            self.task, self.base, self.params, (*self.axes, Axis(name, sequence))
        )

    def __len__(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def _resolve(self, config: SimConfig, name: str, value: AxisValue) -> SimConfig:
        if name == "seed":
            return config.with_(seed=derive_seed(self.base.seed, "seed", value))
        if self.base.has_path(name):
            return config.with_path(name, value)
        raise KeyError(name)

    def cells(self) -> List[Cell]:
        """Expand the axis cross-product into ordered, resolved cells."""
        expanded: List[Cell] = []
        names = [axis.name for axis in self.axes]
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            config = self.base
            params = dict(self.params)
            for name, value in zip(names, combo):
                try:
                    config = self._resolve(config, name, value)
                except KeyError:
                    params[name] = value
            expanded.append(
                Cell(
                    index=index,
                    coords=tuple(zip(names, combo)),
                    config=config,
                    params=params,
                )
            )
        return expanded


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    cell: Cell
    result: Dict[str, Any]
    cached: bool
    key: str


@dataclass
class SweepResult:
    """All cell results of one sweep run, in grid order."""

    task: str
    salt: str
    cells: List[CellResult]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)

    def column(self, path: str) -> List[Any]:
        """Per-cell values at a dotted path into the result documents."""
        return [dig(cell.result, path) for cell in self.cells]

    def manifest(self) -> Dict[str, Any]:
        """The JSON manifest the CLI writes (and CI uploads)."""
        return {
            "task": self.task,
            "salt": self.salt,
            "cell_count": len(self.cells),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells": [
                {
                    "index": item.cell.index,
                    "coords": [[name, value] for name, value in item.cell.coords],
                    "config_hash": item.cell.config_hash,
                    "key": item.key,
                    "cached": item.cached,
                    "result": item.result,
                }
                for item in self.cells
            ],
        }


def dig(doc: Mapping[str, Any], path: str) -> Any:
    """Fetch a dotted path out of a nested result document."""
    node: Any = doc
    for part in path.split("."):
        node = node[part]
    return node


def _execute_cell(payload: Tuple[str, SimConfig, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry point: run one cell (top-level, hence picklable)."""
    task_name, config, params = payload
    task = TASKS[task_name]
    result = task.fn(config, params)
    jsonable: Dict[str, Any] = to_jsonable(result)
    return jsonable


def run(
    sweep: Sweep,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    registry: Optional[MetricsRegistry] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute every cell of ``sweep`` and return results in grid order.

    ``cache`` (optional) serves unchanged cells from disk and persists
    fresh ones; ``force`` recomputes even on hit.  ``workers > 1`` fans the
    missing cells out over a process pool — results are bit-identical to a
    serial run because cells share nothing.  Progress lands in ``registry``
    counters (``sweep.cells`` / ``sweep.cache_hits`` / ``sweep.cache_misses``
    / ``sweep.cells_done``) and, line by line, in ``echo``.
    """
    task: Task = TASKS[sweep.task]
    salt = code_salt(task.modules)
    cells = sweep.cells()
    if registry is not None:
        registry.counter("sweep.cells").inc(len(cells))
    results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[Tuple[Cell, str]] = []
    for cell in cells:
        key = cell_key(sweep.task, cell.config, cell.params, salt)
        hit = cache.get(key) if (cache is not None and not force) else None
        if hit is not None:
            results[cell.index] = CellResult(cell=cell, result=hit, cached=True, key=key)
            if registry is not None:
                registry.counter("sweep.cache_hits").inc()
                registry.counter("sweep.cells_done").inc()
            if echo is not None:
                echo(f"cell {cell.index + 1}/{len(cells)} [{cell.label()}] cached")
        else:
            pending.append((cell, key))
            if registry is not None:
                registry.counter("sweep.cache_misses").inc()

    def finish(cell: Cell, key: str, result: Dict[str, Any]) -> None:
        if cache is not None:
            cache.put(
                key,
                {
                    "task": sweep.task,
                    "salt": salt,
                    "config": cell.config.to_dict(),
                    "params": cell.params,
                    "result": result,
                },
            )
        results[cell.index] = CellResult(cell=cell, result=result, cached=False, key=key)
        if registry is not None:
            registry.counter("sweep.cells_done").inc()
        if echo is not None:
            echo(f"cell {cell.index + 1}/{len(cells)} [{cell.label()}] done")

    if pending:
        payloads = [
            (sweep.task, cell.config, cell.params) for cell, _ in pending
        ]
        if workers <= 1 or len(pending) == 1:
            for (cell, key), payload in zip(pending, payloads):
                finish(cell, key, _execute_cell(payload))
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = {
                    pool.submit(_execute_cell, payload): pending[i]
                    for i, payload in enumerate(payloads)
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        cell, key = futures[future]
                        finish(cell, key, future.result())
    complete = [item for item in results if item is not None]
    assert len(complete) == len(cells)
    return SweepResult(task=sweep.task, salt=salt, cells=complete)
