"""Deterministic parallel sweep: grid expansion + cached execution.

A :class:`Sweep` is a task name, a base :class:`SimConfig`, fixed task
params, and an ordered list of axes.  ``sweep.over("seed", range(8))``
style chaining expands (lazily) into the full cross-product of cells;
:func:`run` executes them — serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor` — against the on-disk
result cache.

Determinism contract:

* every cell is a pure function of its ``(config, params)``; the runner
  never shares state between cells, so ``workers=1`` and ``workers=N``
  produce bit-identical per-cell results in the same cell order;
* a ``"seed"`` axis value ``v`` maps to the *derived* root seed
  ``derive_seed(base.seed, "seed", v)`` — replicate streams are stable
  whatever the worker count or completion order (use
  ``base.with_(seed=...)`` for a literal seed);
* any other axis naming a (dotted) :class:`SimConfig` field overrides that
  field; remaining axes become per-cell task params (e.g. ``"methods"``).
"""

from __future__ import annotations

import itertools
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.exp.cache import ResultCache, cell_key, code_salt, to_jsonable
from repro.exp.config import SimConfig
from repro.exp.tasks import TASKS, Task
from repro.obs.registry import MetricsRegistry
from repro.perf.profiler import Stopwatch, perf_scope
from repro.utils.rng import derive_seed

AxisValue = Any
Coordinate = Tuple[str, AxisValue]


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: an axis name and its ordered values."""

    name: str
    values: Tuple[AxisValue, ...]


@dataclass(frozen=True)
class Cell:
    """One fully resolved grid point."""

    index: int
    coords: Tuple[Coordinate, ...]
    config: SimConfig
    params: Dict[str, Any]

    @property
    def config_hash(self) -> str:
        return self.config.content_hash()

    def label(self) -> str:
        """Human-readable coordinates, e.g. ``seed=3 pe_cycles=1000``."""
        if not self.coords:
            return "(base)"
        return " ".join(f"{name}={value}" for name, value in self.coords)


class Sweep:
    """An immutable sweep description; ``over`` chains return new sweeps."""

    def __init__(
        self,
        task: str,
        base: Optional[SimConfig] = None,
        params: Optional[Mapping[str, Any]] = None,
        axes: Sequence[Axis] = (),
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r} (known: {sorted(TASKS)})")
        self.task = task
        self.base = base if base is not None else SimConfig()
        self.params: Dict[str, Any] = dict(params or {})
        self.axes: Tuple[Axis, ...] = tuple(axes)

    def over(self, name: str, values: Iterable[AxisValue]) -> "Sweep":
        """A new sweep with one more axis (earlier axes vary slowest)."""
        if any(axis.name == name for axis in self.axes):
            raise ValueError(f"axis {name!r} already swept")
        sequence = tuple(values)
        if not sequence:
            raise ValueError(f"axis {name!r} has no values")
        return Sweep(
            self.task, self.base, self.params, (*self.axes, Axis(name, sequence))
        )

    def __len__(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def _resolve(self, config: SimConfig, name: str, value: AxisValue) -> SimConfig:
        if name == "seed":
            return config.with_(seed=derive_seed(self.base.seed, "seed", value))
        if self.base.has_path(name):
            return config.with_path(name, value)
        raise KeyError(name)

    def cells(self) -> List[Cell]:
        """Expand the axis cross-product into ordered, resolved cells."""
        expanded: List[Cell] = []
        names = [axis.name for axis in self.axes]
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            config = self.base
            params = dict(self.params)
            for name, value in zip(names, combo):
                try:
                    config = self._resolve(config, name, value)
                except KeyError:
                    params[name] = value
            expanded.append(
                Cell(
                    index=index,
                    coords=tuple(zip(names, combo)),
                    config=config,
                    params=params,
                )
            )
        return expanded


@dataclass
class CellResult:
    """One executed (or cache-served) cell.

    ``failed`` marks a structured failure row (the cell's task raised or
    timed out on every attempt); its ``result`` then carries the error
    shape from :func:`_failure_row` instead of task output.

    ``wall_s`` is host wall-clock telemetry (cache-lookup time for hits,
    task execution time summed over attempts for computed cells) measured
    through the sanctioned ``repro.perf`` fence; it describes the *run*,
    never the simulated device, and is excluded from cache keys and CI
    result comparisons.
    """

    cell: Cell
    result: Dict[str, Any]
    cached: bool
    key: str
    failed: bool = False
    wall_s: float = 0.0
    attempts: int = 1
    #: the cell ran in-process because the worker pool broke mid-sweep.
    fallback: bool = False
    #: seconds slept before each retry of this cell (seed-stable schedule),
    #: pool-side and serial attempts combined, in attempt order.
    backoffs_s: Tuple[float, ...] = ()

    @property
    def provenance(self) -> str:
        """Where the result came from.

        ``"cache"``, ``"computed"``, or ``"serial-fallback"`` — the last
        meaning computed in-process after a :class:`BrokenProcessPool`
        downgraded the rest of the sweep to serial execution.  Results are
        bit-identical either way (cells are pure functions of their
        payloads), but a fallback run must be distinguishable in the
        manifest or pool crashes hide in plain sight.
        """
        if self.cached:
            return "cache"
        return "serial-fallback" if self.fallback else "computed"


@dataclass(frozen=True)
class SweepProgress:
    """One progress snapshot handed to ``run(..., progress=...)`` callbacks."""

    total: int
    done: int
    cached: int
    failed: int
    elapsed_s: float
    #: estimated seconds to completion, or ``None`` until one computed
    #: cell has finished (cache hits are ~free and would skew the rate).
    eta_s: Optional[float]


@dataclass
class SweepResult:
    """All cell results of one sweep run, in grid order."""

    task: str
    salt: str
    cells: List[CellResult]
    #: total host wall-clock of the run (telemetry; see CellResult.wall_s).
    wall_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)

    @property
    def failures(self) -> int:
        return sum(1 for cell in self.cells if cell.failed)

    def column(self, path: str) -> List[Any]:
        """Per-cell values at a dotted path into the result documents."""
        return [dig(cell.result, path) for cell in self.cells]

    def manifest(self) -> Dict[str, Any]:
        """The JSON manifest the CLI writes (and CI uploads).

        The ``failures`` count (and per-cell ``failed`` markers) appear
        only when a cell actually failed, so clean-run manifests keep
        their historical key set plus the timing telemetry.  ``wall_s`` /
        ``attempts`` / ``provenance`` are recorded for *every* cell
        (previously only failure rows carried attempt counts); they are
        host-side telemetry, so manifest consumers comparing results must
        compare the ``result`` values, never whole rows.  A ``fallback``
        marker and the per-cell ``backoffs_s`` retry schedule likewise
        appear only on cells that ran after a pool break or were actually
        retried.
        """
        doc: Dict[str, Any] = {
            "task": self.task,
            "salt": self.salt,
            "cell_count": len(self.cells),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_s": round(self.wall_s, 6),
        }
        if self.failures:
            doc["failures"] = self.failures
        doc["cells"] = [
                {
                    "index": item.cell.index,
                    "coords": [[name, value] for name, value in item.cell.coords],
                    "config_hash": item.cell.config_hash,
                    "key": item.key,
                    "cached": item.cached,
                    "provenance": item.provenance,
                    "wall_s": round(item.wall_s, 6),
                    "attempts": item.attempts,
                    **({"fallback": True} if item.fallback else {}),
                    **(
                        {"backoffs_s": [round(b, 6) for b in item.backoffs_s]}
                        if item.backoffs_s
                        else {}
                    ),
                    **({"failed": True} if item.failed else {}),
                    "result": item.result,
                }
                for item in self.cells
            ]
        return doc


def dig(doc: Mapping[str, Any], path: str) -> Any:
    """Fetch a dotted path out of a nested result document."""
    node: Any = doc
    for part in path.split("."):
        node = node[part]
    return node


class CellTimeoutError(Exception):
    """A cell exceeded its per-cell wall-clock budget."""


_WORKER_ENTRYPOINT_ATTR = "__reprolint_worker_entrypoint__"


def worker_entrypoint(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark ``fn`` as a process-pool / sweep-cell entry point.

    Purely a marker: the function is returned unchanged, with an attribute
    the deep linter (``repro lint --deep``) keys on to seed its worker-cone
    analysis — everything reachable from a marked function must be free of
    module-level mutable writes, lazy singletons, and live RNG objects
    crossing the boundary (PROC001-003, RNG011).  Any function handed to a
    ``ProcessPoolExecutor`` should carry this marker (``@register_task``
    functions are picked up automatically).
    """
    setattr(fn, _WORKER_ENTRYPOINT_ATTR, True)
    return fn


@worker_entrypoint
def _execute_cell(payload: Tuple[Any, ...]) -> Dict[str, Any]:
    """Worker entry point: run one cell (top-level, hence picklable).

    The optional fourth payload element is a wall-clock timeout in
    seconds, enforced via ``SIGALRM`` where available (POSIX main thread —
    which is exactly where pool workers run task functions).  Elsewhere
    the timeout degrades to "no timeout" rather than failing the cell.
    """
    task_name, config, params = payload[:3]
    timeout = payload[3] if len(payload) > 3 else None
    task = TASKS[task_name]
    use_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _on_alarm(signum: int, frame: Any) -> None:
            raise CellTimeoutError(f"cell exceeded {float(timeout):.1f}s budget")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
        try:
            result = task.fn(config, params)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    else:
        result = task.fn(config, params)
    jsonable: Dict[str, Any] = to_jsonable(result)
    return jsonable


@worker_entrypoint
def _execute_cell_timed(payload: Tuple[Any, ...]) -> Tuple[float, Dict[str, Any]]:
    """:func:`_execute_cell` plus its wall-clock seconds, measured in-worker.

    Timing inside the worker process means the number is pure task
    execution — pool queueing and result pickling are excluded.  The
    duration is telemetry for the sweep manifest, never part of the
    cached result document.
    """
    watch = Stopwatch()
    result = _execute_cell(payload)
    return (watch.elapsed_s(), result)


def _failure_row(error: BaseException, attempts: int) -> Dict[str, Any]:
    """The structured result recorded for a cell that exhausted retries."""
    return {
        "failed": True,
        "error_type": type(error).__name__,
        "message": str(error),
        "attempts": attempts,
    }


def _retry_backoff_s(base_seed: int, cell_index: int, attempt: int) -> float:
    """Seed-stable backoff before retry ``attempt`` of one cell.

    Exponential in the attempt number with a deterministic per-cell
    jitter drawn from the ``derive_seed`` stream — every rerun of the
    same sweep waits the same amount, so retry schedules never introduce
    machine-local nondeterminism into logs or traces.
    """
    jitter = derive_seed(base_seed, "sweep", "retry", cell_index, attempt) % 1000
    return min(2.0, 0.05 * (2 ** (attempt - 1)) * (1.0 + jitter / 1000.0))


def run(
    sweep: Sweep,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    registry: Optional[MetricsRegistry] = None,
    echo: Optional[Callable[[str], None]] = None,
    cell_timeout: Optional[float] = None,
    retries: int = 0,
    progress: Optional[Callable[[SweepProgress], None]] = None,
) -> SweepResult:
    """Execute every cell of ``sweep`` and return results in grid order.

    ``cache`` (optional) serves unchanged cells from disk and persists
    fresh ones; ``force`` recomputes even on hit.  ``workers > 1`` fans the
    missing cells out over a process pool — results are bit-identical to a
    serial run because cells share nothing.  Progress lands in ``registry``
    counters (``sweep.cells`` / ``sweep.cache_hits`` / ``sweep.cache_misses``
    / ``sweep.cells_done``) and, line by line, in ``echo``.

    Robustness: ``cell_timeout`` bounds each cell's wall-clock seconds,
    and a raising (or timed-out) cell is retried up to ``retries`` times
    with seed-stable exponential backoff.  A cell that exhausts its
    attempts records a structured failure row (never cached, flagged in
    the manifest) instead of killing the sweep, and a broken process
    pool downgrades the remaining cells to serial execution.

    Telemetry: each returned cell carries its host wall-clock cost
    (cache-lookup time for hits, in-worker execution time for computed
    cells) and attempt count, and ``progress`` (if given) receives a
    :class:`SweepProgress` snapshot — done/cached/failed counts, elapsed
    seconds and an ETA — after every completed cell.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ValueError("cell_timeout must be positive")
    task: Task = TASKS[sweep.task]
    salt = code_salt(task.modules)
    cells = sweep.cells()
    sweep_watch = Stopwatch()
    if registry is not None:
        registry.counter("sweep.cells").inc(len(cells))
    results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[Tuple[Cell, str]] = []

    def emit_progress() -> None:
        if progress is None:
            return
        complete_now = [item for item in results if item is not None]
        done = len(complete_now)
        cached_n = sum(1 for item in complete_now if item.cached)
        failed_n = sum(1 for item in complete_now if item.failed)
        computed = done - cached_n
        remaining = len(cells) - done
        elapsed = sweep_watch.elapsed_s()
        eta: Optional[float]
        if remaining == 0:
            eta = 0.0
        elif computed > 0:
            # Cache hits are ~free, so rate the remaining (all-computed)
            # cells on the computed throughput observed so far.
            eta = elapsed / computed * remaining
        else:
            eta = None
        progress(
            SweepProgress(
                total=len(cells),
                done=done,
                cached=cached_n,
                failed=failed_n,
                elapsed_s=elapsed,
                eta_s=eta,
            )
        )

    for cell in cells:
        key = cell_key(sweep.task, cell.config, cell.params, salt)
        lookup = Stopwatch()
        hit = cache.get(key) if (cache is not None and not force) else None
        if hit is not None:
            results[cell.index] = CellResult(
                cell=cell,
                result=hit,
                cached=True,
                key=key,
                wall_s=lookup.elapsed_s(),
            )
            if registry is not None:
                registry.counter("sweep.cache_hits").inc()
                registry.counter("sweep.cells_done").inc()
            if echo is not None:
                echo(f"cell {cell.index + 1}/{len(cells)} [{cell.label()}] cached")
            emit_progress()
        else:
            pending.append((cell, key))
            if registry is not None:
                registry.counter("sweep.cache_misses").inc()

    def finish(
        cell: Cell,
        key: str,
        result: Dict[str, Any],
        *,
        failed: bool = False,
        wall_s: float = 0.0,
        attempts: int = 1,
        fallback: bool = False,
        backoffs: Tuple[float, ...] = (),
    ) -> None:
        # Failure rows are never persisted: a later run with the bug (or
        # flake) gone must recompute the cell, not replay the failure.
        if cache is not None and not failed:
            cache.put(
                key,
                {
                    "task": sweep.task,
                    "salt": salt,
                    "config": cell.config.to_dict(),
                    "params": cell.params,
                    "result": result,
                },
            )
        results[cell.index] = CellResult(
            cell=cell,
            result=result,
            cached=False,
            key=key,
            failed=failed,
            wall_s=wall_s,
            attempts=attempts,
            fallback=fallback,
            backoffs_s=backoffs,
        )
        if registry is not None:
            registry.counter("sweep.cells_done").inc()
            if failed:
                registry.counter("sweep.cell_failures").inc()
        if echo is not None:
            state = "FAILED" if failed else "done"
            echo(f"cell {cell.index + 1}/{len(cells)} [{cell.label()}] {state}")
        emit_progress()

    def payload_for(cell: Cell) -> Tuple[Any, ...]:
        return (sweep.task, cell.config, cell.params, cell_timeout)

    # Pool-side retry history, keyed by cell index: how many attempts each
    # pending cell has made and the backoff slept before each retry.  The
    # serial-fallback path continues these counts, so a cell that failed
    # twice in the pool and once more in-process reports attempts=3 with
    # its full backoff schedule.
    pool_attempts: Dict[int, int] = {}
    pool_backoffs: Dict[int, List[float]] = {}

    def run_serially(cell: Cell, key: str, *, fallback: bool = False) -> None:
        attempts = pool_attempts.get(cell.index, 1) - 1 if fallback else 0
        backoffs = list(pool_backoffs.get(cell.index, [])) if fallback else []
        spent_s = 0.0
        while True:
            attempts += 1
            attempt_watch = Stopwatch()
            try:
                with perf_scope("sweep.cell"):
                    result = _execute_cell(payload_for(cell))
            except Exception as error:  # noqa: BLE001 — converted to a row
                spent_s += attempt_watch.elapsed_s()
                if attempts <= retries:
                    if echo is not None:
                        echo(
                            f"cell {cell.index + 1}/{len(cells)} "
                            f"[{cell.label()}] {type(error).__name__}; "
                            f"retry {attempts}/{retries}"
                        )
                    delay = _retry_backoff_s(sweep.base.seed, cell.index, attempts)
                    backoffs.append(delay)
                    time.sleep(delay)
                    continue
                finish(
                    cell,
                    key,
                    _failure_row(error, attempts),
                    failed=True,
                    wall_s=spent_s,
                    attempts=attempts,
                    fallback=fallback,
                    backoffs=tuple(backoffs),
                )
                return
            spent_s += attempt_watch.elapsed_s()
            finish(
                cell,
                key,
                result,
                wall_s=spent_s,
                attempts=attempts,
                fallback=fallback,
                backoffs=tuple(backoffs),
            )
            return

    serial_cells: List[Tuple[Cell, str]] = []
    pool_broke = False
    if pending:
        if workers <= 1 or len(pending) == 1:
            serial_cells = list(pending)
        else:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending))
                ) as pool:
                    futures = {
                        pool.submit(_execute_cell_timed, payload_for(cell)): (cell, key)
                        for cell, key in pending
                    }
                    pool_attempts.update({cell.index: 1 for cell, _ in pending})
                    remaining = set(futures)
                    while remaining:
                        done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                        for future in done:
                            cell, key = futures.pop(future)
                            try:
                                cell_wall_s, result = future.result()
                            except BrokenProcessPool:
                                raise
                            except Exception as error:  # noqa: BLE001
                                made = pool_attempts[cell.index]
                                if made <= retries:
                                    pool_attempts[cell.index] = made + 1
                                    if echo is not None:
                                        echo(
                                            f"cell {cell.index + 1}/{len(cells)} "
                                            f"[{cell.label()}] "
                                            f"{type(error).__name__}; "
                                            f"retry {made}/{retries}"
                                        )
                                    delay = _retry_backoff_s(
                                        sweep.base.seed, cell.index, made
                                    )
                                    pool_backoffs.setdefault(
                                        cell.index, []
                                    ).append(delay)
                                    time.sleep(delay)
                                    retry = pool.submit(
                                        _execute_cell_timed, payload_for(cell)
                                    )
                                    futures[retry] = (cell, key)
                                    remaining.add(retry)
                                else:
                                    finish(
                                        cell,
                                        key,
                                        _failure_row(error, made),
                                        failed=True,
                                        attempts=made,
                                        backoffs=tuple(
                                            pool_backoffs.get(cell.index, [])
                                        ),
                                    )
                            else:
                                finish(
                                    cell,
                                    key,
                                    result,
                                    wall_s=cell_wall_s,
                                    attempts=pool_attempts[cell.index],
                                    backoffs=tuple(
                                        pool_backoffs.get(cell.index, [])
                                    ),
                                )
            except BrokenProcessPool:
                # A worker died hard (OOM-kill, segfault in a native lib).
                # Cells are pure functions of their payloads, so the safe
                # degradation is to finish the unfinished ones in-process —
                # marked ``serial-fallback`` in the manifest, continuing
                # each cell's pool-side attempt/backoff history.
                pool_broke = True
                serial_cells = [
                    item for item in pending if results[item[0].index] is None
                ]
                if echo is not None:
                    echo(
                        f"process pool broke; running {len(serial_cells)} "
                        "remaining cell(s) serially"
                    )
    for cell, key in serial_cells:
        run_serially(cell, key, fallback=pool_broke)
    complete = [item for item in results if item is not None]
    assert len(complete) == len(cells)
    return SweepResult(
        task=sweep.task,
        salt=salt,
        cells=complete,
        wall_s=sweep_watch.elapsed_s(),
    )
