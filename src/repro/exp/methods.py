"""Assembly-method registry and memoized evaluation.

One place maps the paper's method names — ``"STR-RANK(8)"``,
``"QSTR-MED(4)"``, … — to assembler constructors, replacing the drifted
per-module copies that used to live in ``analysis.experiments`` and
``benchmarks/conftest.py``.  Windowed methods accept any window size in the
name, so sweeps can scan ``STR-RANK(2..8)`` without touching a registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.assembly import (
    Assembler,
    ErsLatencyAssembler,
    LanePool,
    LwlRankAssembler,
    MethodResult,
    OptimalAssembler,
    PgmLatencyAssembler,
    PwlRankAssembler,
    RandomAssembler,
    SequentialAssembler,
    StrMedianAssembler,
    StrRankAssembler,
    evaluate_assembler,
)
from repro.core import QstrMedAssembler

#: methods with no window parameter; ``RANDOM`` takes the evaluation seed.
_PLAIN_METHODS: Dict[str, Callable[[int], Assembler]] = {
    "RANDOM": lambda seed: RandomAssembler(seed=seed),
    "SEQUENTIAL": lambda seed: SequentialAssembler(),
    "ERS-LTN": lambda seed: ErsLatencyAssembler(),
    "PGM-LTN": lambda seed: PgmLatencyAssembler(),
}

#: windowed methods, named ``BASE(window)``.
_WINDOWED_METHODS: Dict[str, Callable[[int], Assembler]] = {
    "OPTIMAL": OptimalAssembler,
    "LWL-RANK": LwlRankAssembler,
    "PWL-RANK": PwlRankAssembler,
    "STR-RANK": StrRankAssembler,
    "STR-MED": StrMedianAssembler,
    "QSTR-MED": QstrMedAssembler,
}

_WINDOWED_NAME = re.compile(r"^([A-Z-]+)\((\d+)\)$")


def method_names() -> List[str]:
    """Every recognized method spelling (windowed ones at the paper's sizes)."""
    names = sorted(_PLAIN_METHODS)
    names += [f"{base}(4)" for base in sorted(_WINDOWED_METHODS)]
    return names


def make_assembler(name: str, seed: int = 1) -> Assembler:
    """Build the assembler a method name denotes.

    ``seed`` only affects ``RANDOM`` (the paper's baseline keeps seed 1 so
    every method is compared on identical random draws).
    """
    plain = _PLAIN_METHODS.get(name)
    if plain is not None:
        return plain(seed)
    match = _WINDOWED_NAME.match(name)
    if match is not None:
        base, window = match.group(1), int(match.group(2))
        factory = _WINDOWED_METHODS.get(base)
        if factory is not None:
            return factory(window)
    known = ", ".join(sorted(_PLAIN_METHODS) + sorted(_WINDOWED_METHODS))
    raise ValueError(f"unknown method {name!r} (known: {known}, windowed as NAME(w))")


@dataclass
class MethodRow:
    """One table row: a method's outcome next to the shared baseline."""

    name: str
    result: MethodResult
    baseline: MethodResult

    @property
    def reduction_us(self) -> float:
        return self.result.program_reduction_vs(self.baseline)

    @property
    def improvement_pct(self) -> float:
        return self.result.program_improvement_vs(self.baseline)

    @property
    def erase_improvement_pct(self) -> float:
        return self.result.erase_improvement_vs(self.baseline)


class MethodEvaluator:
    """Lazy, memoized per-method evaluation over one set of pools.

    The random baseline (seed ``seed``) is evaluated once and shared by
    every row, matching the paper's methodology: all methods are judged
    against identical random superblocks.
    """

    def __init__(self, pools: Sequence[LanePool], seed: int = 1) -> None:
        self._pools = pools
        self._seed = seed
        self._cache: Dict[str, MethodResult] = {}

    def result(self, name: str) -> MethodResult:
        if name not in self._cache:
            self._cache[name] = evaluate_assembler(
                make_assembler(name, seed=self._seed), self._pools
            )
        return self._cache[name]

    def row(self, name: str) -> MethodRow:
        return MethodRow(
            name=name, result=self.result(name), baseline=self.result("RANDOM")
        )

    def rows(self, names: Iterable[str]) -> Dict[str, MethodRow]:
        return {name: self.row(name) for name in names}


def evaluate_methods(
    pools: Sequence[LanePool], names: Sequence[str], seed: int = 1
) -> Tuple[MethodResult, Dict[str, MethodRow]]:
    """Evaluate ``names`` against the shared random baseline on ``pools``."""
    evaluator = MethodEvaluator(pools, seed=seed)
    return evaluator.result("RANDOM"), evaluator.rows(names)
