"""The unified simulation configuration tree.

One frozen :class:`SimConfig` names everything a simulation run depends on —
geometry, variation model, FTL sizing, bus timing, workload shape and scale
knobs — so a run is a pure function of its config.  Configs are picklable
(they cross :class:`~concurrent.futures.ProcessPoolExecutor` boundaries),
JSON-round-trippable (``to_dict``/``from_dict``) and content-addressable
(:meth:`SimConfig.content_hash`), which is what the sweep result cache keys
on.

Two presets mirror the repo's historical construction paths:

* :meth:`SimConfig.testbed` — the assembly-study testbed (paper geometry,
  default variation) behind Tables I/II/V and Figures 6/12–15;
* :meth:`SimConfig.device` — the small-device FTL+SSD stack behind
  ``repro replay`` / ``repro run`` (single-plane slice, no factory-bad
  blocks, derived overprovisioning).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type, TypeVar, Union

from repro.faults.plan import FaultPlan
from repro.fleet.config import FleetConfig
from repro.ftl.config import FtlConfig
from repro.nand.geometry import PAPER_GEOMETRY, NandGeometry
from repro.nand.variation import VariationParams
from repro.policy.spec import PolicyConfig
from repro.ssd.timing import TimingConfig

T = TypeVar("T")

ALLOCATOR_KINDS: Tuple[str, ...] = ("qstr", "random", "sequential", "pgm_sorted")

WORKLOAD_KINDS: Tuple[str, ...] = ("fill_zipf", "trace")

BACKENDS: Tuple[str, ...] = ("scalar", "vector")


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the host workload a device run replays.

    ``fill_zipf`` is the CLI's historical synthetic workload: one sequential
    fill of the logical space followed by zipf-skewed overwrites of
    ``overwrite_fraction`` of it.  ``trace`` replays a CSV trace file
    (``trace_path``); note the cache key covers the *path*, not the file
    contents.
    """

    kind: str = "fill_zipf"
    interarrival_us: float = 8000.0
    overwrite_fraction: float = 0.7
    fill_seed: int = 1
    overwrite_seed: int = 2
    requests: Optional[int] = None
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"workload kind must be one of {WORKLOAD_KINDS}")
        if self.interarrival_us <= 0:
            raise ValueError("interarrival_us must be positive")
        if not 0.0 <= self.overwrite_fraction <= 10.0:
            raise ValueError("overwrite_fraction out of range")
        if self.kind == "trace" and not self.trace_path:
            raise ValueError("trace workload requires trace_path")
        if self.requests is not None and self.requests < 0:
            raise ValueError("requests cap must be >= 0")


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation cell depends on.

    ``pool_blocks`` scopes the probed block range of the assembly-study
    pools; ``pe_cycles`` (when set) wears every pooled block to that epoch
    before measuring, as in Figure 15.  ``ftl=None`` means "derive the FTL
    sizing from the geometry" exactly as the CLI always has (see
    :func:`repro.exp.build.derived_ftl_config`).
    """

    seed: int = 2024
    chips: int = 4
    pool_blocks: int = 400
    pe_cycles: Optional[int] = None
    allocator: str = "qstr"
    geometry: NandGeometry = PAPER_GEOMETRY
    variation: VariationParams = field(default_factory=VariationParams)
    ftl: Optional[FtlConfig] = None
    timing: TimingConfig = field(default_factory=TimingConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: fault-injection schedule; ``None`` (and the null plan, which is
    #: normalized to ``None``) means the fault-free fast path.
    faults: Optional[FaultPlan] = None
    #: pluggable decision policies; the all-unset default replicates the
    #: historical hard-coded behavior (see :mod:`repro.policy`).
    policies: PolicyConfig = field(default_factory=PolicyConfig)
    #: fleet serving layer on top of N devices built from this config;
    #: ``None`` (the default) means a plain single-device run.
    fleet: Optional[FleetConfig] = None
    #: execution backend: ``"scalar"`` (the reference) or ``"vector"``
    #: (numpy-batched hot paths, byte-identical results — DESIGN.md §13).
    #: Excluded from equality, serialization and content hashes: the backend
    #: changes how a result is computed, never what it is.
    backend: str = field(default="scalar", compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.chips < 2:
            raise ValueError("need at least two chips (lanes)")
        if self.pool_blocks < 1:
            raise ValueError("pool_blocks must be >= 1")
        if self.pe_cycles is not None and self.pe_cycles < 0:
            raise ValueError("pe_cycles must be >= 0")
        if self.allocator not in ALLOCATOR_KINDS:
            raise ValueError(f"allocator must be one of {ALLOCATOR_KINDS}")
        if self.faults is not None and self.faults.is_null:
            # Normalize so config equality, serialization and content
            # hashes cannot distinguish "no plan" from "an empty plan".
            object.__setattr__(self, "faults", None)
        if not isinstance(self.policies, PolicyConfig):
            # accept plain mappings (e.g. from with_(policies={...}))
            object.__setattr__(
                self, "policies", PolicyConfig.from_dict(self.policies)
            )

    # -- presets -----------------------------------------------------------

    @classmethod
    def testbed(
        cls,
        seed: int = 2024,
        chips: int = 4,
        pool_blocks: int = 400,
        **overrides: Any,
    ) -> "SimConfig":
        """The assembly-study testbed (paper geometry, default variation)."""
        return cls(seed=seed, chips=chips, pool_blocks=pool_blocks, **overrides)

    @classmethod
    def device(
        cls,
        seed: int = 2024,
        chips: int = 4,
        blocks: int = 48,
        allocator: str = "qstr",
        interarrival_us: float = 8000.0,
        requests: Optional[int] = None,
        trace_path: Optional[str] = None,
        **overrides: Any,
    ) -> "SimConfig":
        """The ``repro replay``/``repro run`` device stack configuration.

        Mirrors the historical CLI construction bit for bit: a single-plane
        slice of ``blocks`` blocks, 24 layers x 4 strings, TLC, no
        factory-bad blocks, FTL sizing derived from ``blocks``.
        """
        geometry = NandGeometry(
            planes_per_chip=1,
            blocks_per_plane=blocks,
            layers_per_block=24,
            strings_per_layer=4,
            bits_per_cell=3,
        )
        workload = WorkloadConfig(
            kind="trace" if trace_path else "fill_zipf",
            interarrival_us=interarrival_us,
            requests=requests,
            trace_path=trace_path,
        )
        return cls(
            seed=seed,
            chips=chips,
            pool_blocks=blocks,
            allocator=allocator,
            geometry=geometry,
            variation=VariationParams(factory_bad_ratio=0.0),
            workload=workload,
            **overrides,
        )

    # -- functional updates ------------------------------------------------

    def with_(self, **overrides: Any) -> "SimConfig":
        """A copy with top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    def with_path(self, path: str, value: Any) -> "SimConfig":
        """A copy with one (possibly dotted) field path replaced.

        ``with_path("variation.sigma_wl_noise_us", 3.0)`` rebuilds the
        nested frozen dataclasses along the way.
        """
        return _replace_path(self, path.split("."), value)

    def has_path(self, path: str) -> bool:
        """Whether ``path`` names a (possibly nested) config field."""
        obj: Any = type(self)
        for part in path.split("."):
            if not dataclasses.is_dataclass(obj):
                return False
            hints = _field_types(obj if isinstance(obj, type) else type(obj))
            if part not in hints:
                return False
            obj = _strip_optional(hints[part])
        return True

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-serializable dict (nested dataclasses become dicts).

        The ``faults`` key is omitted entirely when no plan is set, the
        ``policies`` key when every policy slot is unset, and the ``fleet``
        key when no fleet layer is configured, so pre-existing configs
        serialize — and content-hash — exactly as they did before fault
        injection / the policy layer / the fleet existed.
        """
        data = dataclasses.asdict(self)
        # the backend is an execution detail: two configs differing only in
        # backend are the same experiment and must hash identically
        data.pop("backend", None)
        if data.get("faults") is None:
            data.pop("faults", None)
        if data.get("fleet") is None:
            data.pop("fleet", None)
        if self.policies.is_default:
            data.pop("policies", None)
        else:
            data["policies"] = self.policies.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimConfig":
        """Inverse of :meth:`to_dict`: ``from_dict(to_dict(c)) == c``."""
        return _from_dict(cls, data)

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable content address of this config (hex SHA-256 prefix).

        Identical across processes, platforms and Python versions for equal
        configs — the cache key and the manifest both build on it.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# generic frozen-dataclass (de)serialization helpers
# ---------------------------------------------------------------------------


def _field_types(cls: type) -> Dict[str, Any]:
    """Resolved annotation types of a dataclass (handles PEP 563 strings)."""
    return typing.get_type_hints(cls)


def _strip_optional(tp: Any) -> Any:
    """``Optional[X] -> X``; anything else unchanged."""
    if typing.get_origin(tp) is Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return tp


def _coerce(tp: Any, value: Any) -> Any:
    """Rebuild ``value`` as type ``tp`` (recursing into dataclasses)."""
    if value is None:
        return None
    tp = _strip_optional(tp)
    if dataclasses.is_dataclass(tp) and isinstance(value, Mapping):
        return _from_dict(tp, value)
    if tp is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value


def _from_dict(cls: Type[T], data: Mapping[str, Any]) -> T:
    hints = _field_types(cls)
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):  # type: ignore[arg-type]
        if not f.init or f.name not in data:
            continue
        kwargs[f.name] = _coerce(hints[f.name], data[f.name])
    unknown = set(data) - {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**kwargs)


def _replace_path(obj: T, parts: Sequence[str], value: Any) -> T:
    name = parts[0]
    hints = _field_types(type(obj))
    if name not in hints:
        raise ValueError(f"{type(obj).__name__} has no field {name!r}")
    if len(parts) == 1:
        return dataclasses.replace(obj, **{name: _coerce(hints[name], value)})  # type: ignore[type-var]
    sub = getattr(obj, name)
    if sub is None:
        raise ValueError(f"cannot descend into unset field {name!r}")
    return dataclasses.replace(obj, **{name: _replace_path(sub, parts[1:], value)})  # type: ignore[type-var]
