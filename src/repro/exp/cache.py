"""On-disk result cache for sweep cells.

A cell's cache key is the SHA-256 of the canonical JSON of

``{"task": <task name>, "salt": <code salt>, "config": SimConfig.to_dict(),
   "params": <task params>}``

so identical cells hit the same entry from any process, and any change to
the config, the task parameters, or the task's declared source modules
(the *code-version salt*) invalidates exactly the cells it affects.  Salt
granularity is per task: a task declares the ``repro.*`` subpackages its
result depends on, and :func:`code_salt` hashes those modules' source bytes
— so editing an assembler re-runs assembly-evaluation cells but leaves,
say, pure replay cells cached.

Entries are one JSON file per cell, written atomically (temp file +
``os.replace``) so concurrent sweeps sharing a cache directory never read
torn entries.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exp.config import SimConfig

#: default cache root (relative to the working directory) when the
#: ``REPRO_SWEEP_CACHE`` environment variable is unset.
DEFAULT_CACHE_DIR = ".repro-cache/sweeps"


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE`` or :data:`DEFAULT_CACHE_DIR`."""
    return Path(os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_CACHE_DIR))


def to_jsonable(value: Any) -> Any:
    """Recursively reduce a result to plain JSON types.

    NumPy scalars become Python ``int``/``float`` (values preserved
    exactly), tuples become lists — so cached results round-trip through
    JSON bit-identically and serial/parallel runs return the same types.
    """
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return to_jsonable(value.item())
    raise TypeError(f"result value {value!r} is not JSON-serializable")


def canonical_json(doc: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(to_jsonable(doc), sort_keys=True, separators=(",", ":"))


def _module_files(module: str) -> List[Path]:
    """The source files a dotted module name covers (packages recurse)."""
    spec = importlib.util.find_spec(module)
    if spec is None:
        raise ValueError(f"cannot resolve module {module!r} for code salt")
    if spec.submodule_search_locations:
        files: List[Path] = []
        for location in spec.submodule_search_locations:
            files.extend(Path(location).rglob("*.py"))
        return sorted(files)
    if spec.origin is None:
        raise ValueError(f"module {module!r} has no source file")
    return [Path(spec.origin)]


def code_salt(modules: Sequence[str]) -> str:
    """Hash of the source bytes of ``modules`` (packages walk recursively).

    Editing any covered file changes the salt, invalidating every cache
    entry keyed under it.
    """
    digest = hashlib.sha256()
    for module in sorted(set(modules)):
        for path in _module_files(module):
            digest.update(str(path.name).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def cell_key(
    task: str, config: SimConfig, params: Mapping[str, Any], salt: str
) -> str:
    """The cache key of one cell (full-width hex SHA-256)."""
    doc = {
        "task": task,
        "salt": salt,
        "config": config.to_dict(),
        "params": dict(params),
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


class ResultCache:
    """One directory of content-addressed cell results."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        result = doc.get("result")
        return result if isinstance(result, dict) else None

    def put(self, key: str, entry: Mapping[str, Any]) -> None:
        """Atomically persist ``entry`` (must contain ``"result"``)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(to_jsonable(entry), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(tmp_name, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
