"""Registered sweep tasks: what one grid cell computes.

A task is a named, top-level (hence picklable across
``ProcessPoolExecutor`` workers) function ``fn(config, params) -> dict``
returning plain JSON types.  Each task declares the ``repro.*`` modules its
result depends on; the sweep runner hashes those sources into the cache key
(the *code-version salt*), so editing a covered module invalidates exactly
that task's cached cells.

Built-ins:

* ``methods`` — probe the configured pools and evaluate assembly methods
  against the shared random baseline (the Table I/II/V & Figure 12–15 cell);
* ``replay`` — run the configured host workload through the full FTL+SSD
  stack and report latency/WA metrics (the ``repro replay`` cell);
* ``fleet`` — serve the sharded multi-tenant fleet workload over N devices
  and report fleet/per-tenant tail QoS plus the trace sha256 (the
  ``repro fleet`` cell).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.assembly.evaluate import MethodResult
from repro.exp.build import build_fleet, build_stack
from repro.exp.config import SimConfig
from repro.exp.methods import MethodEvaluator
from repro.fleet.config import FleetConfig
from repro.obs.export import to_jsonl
from repro.obs.tracer import Tracer
from repro.workloads.replay import Replayer

TaskFn = Callable[[SimConfig, Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class Task:
    """One registered cell computation."""

    name: str
    fn: TaskFn
    modules: Tuple[str, ...]
    description: str


TASKS: Dict[str, Task] = {}


def register_task(
    name: str, *, modules: Tuple[str, ...], description: str = ""
) -> Callable[[TaskFn], TaskFn]:
    """Register ``fn`` as the sweep task ``name``.

    ``modules`` are the dotted ``repro.*`` (sub)packages whose source feeds
    the task's code-version salt; list every layer the result depends on.
    """

    def decorate(fn: TaskFn) -> TaskFn:
        if name in TASKS:
            raise ValueError(f"task {name!r} already registered")
        TASKS[name] = Task(name=name, fn=fn, modules=modules, description=description)
        return fn

    return decorate


def _result_doc(result: MethodResult) -> Dict[str, Any]:
    return {
        "mean_extra_program_us": result.mean_extra_program_us,
        "mean_extra_erase_us": result.mean_extra_erase_us,
        "superblocks": result.superblock_count,
        "combinations_checked": result.combinations_checked,
        "pair_checks": result.pair_checks,
    }


#: default method set of the ``methods`` task (the Table V headline rows).
DEFAULT_METHODS: Tuple[str, ...] = (
    "SEQUENTIAL",
    "OPTIMAL(8)",
    "QSTR-MED(4)",
    "STR-MED(4)",
)


@register_task(
    "methods",
    modules=(
        "repro.utils",
        "repro.faults",
        "repro.nand",
        "repro.characterization",
        "repro.assembly",
        "repro.core",
        "repro.policy",
        "repro.exp",
    ),
    description="evaluate assembly methods over probed pools vs the random baseline",
)
def methods_task(config: SimConfig, params: Dict[str, Any]) -> Dict[str, Any]:
    """One (config, method set) cell of the assembly study."""
    names: List[str] = list(params.get("methods") or DEFAULT_METHODS)
    stack = build_stack(config)
    evaluator = MethodEvaluator(stack.pools())
    baseline = evaluator.result("RANDOM")
    methods: Dict[str, Any] = {}
    for name in names:
        row = evaluator.row(name)
        methods[name] = {
            **_result_doc(row.result),
            "improvement_pct": row.improvement_pct,
            "erase_improvement_pct": row.erase_improvement_pct,
            "reduction_us": row.reduction_us,
        }
    return {
        "baseline": _result_doc(baseline),
        "methods": methods,
        "pe_cycles": config.pe_cycles,
    }


@register_task(
    "replay",
    modules=(
        "repro.utils",
        "repro.obs",
        "repro.faults",
        "repro.nand",
        "repro.characterization",
        "repro.assembly",
        "repro.core",
        "repro.policy",
        "repro.ftl",
        "repro.ssd",
        "repro.workloads",
        "repro.exp",
    ),
    description="replay the configured workload through the full FTL+SSD stack",
)
def replay_task(config: SimConfig, params: Dict[str, Any]) -> Dict[str, Any]:
    """One end-to-end device cell: host-visible latency plus FTL metrics."""
    stack = build_stack(config)
    requests = stack.requests()
    report = Replayer(stack.ssd).replay(requests)
    return {
        "allocator": config.allocator,
        "requests": len(requests),
        "latency": {op: dict(summary) for op, summary in report.summary().items()},
        "ftl": dict(stack.ftl.metrics.summary()),
    }


@register_task(
    "fleet",
    modules=(
        "repro.utils",
        "repro.obs",
        "repro.faults",
        "repro.nand",
        "repro.characterization",
        "repro.assembly",
        "repro.core",
        "repro.policy",
        "repro.ftl",
        "repro.ssd",
        "repro.workloads",
        "repro.fleet",
        "repro.exp",
    ),
    description="serve the sharded multi-tenant workload over a device fleet",
)
def fleet_task(config: SimConfig, params: Dict[str, Any]) -> Dict[str, Any]:
    """One fleet serving cell: tail QoS summary plus the trace fingerprint.

    Always runs traced: the sha256 of the canonical JSONL serving trace
    lands in the result (hence the sweep manifest), which is what the
    serial-vs-parallel byte-identity gate compares.
    """
    if config.fleet is None:
        config = config.with_(fleet=FleetConfig())
    tracer = Tracer()
    report = build_fleet(config, tracer=tracer).run()
    summary = report.summary()
    trace = to_jsonl(tracer.events)
    summary["trace_events"] = len(tracer.events)
    summary["trace_sha256"] = hashlib.sha256(trace.encode("utf-8")).hexdigest()
    return summary
