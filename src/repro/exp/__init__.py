"""repro.exp — unified configuration, construction and parallel sweeps.

The experiment substrate every paper-scale result runs on:

* :class:`SimConfig` — one frozen, picklable, JSON-round-trippable config
  tree (geometry, variation, FTL, timing, workload) with a canonical
  content hash;
* :func:`build_stack` — the single construction path from a config to a
  :class:`Stack` (chips / lane pools / formatted SSD, tracer and metrics
  registry injectable);
* :class:`Sweep` / :func:`run` — deterministic grid expansion and a
  process-pool executor with an on-disk result cache keyed by
  ``(config content hash, task params, code-version salt)``;
* the method registry (:func:`make_assembler`, :class:`MethodEvaluator`)
  shared by the analysis drivers, the benches and the sweep tasks.

Layering: ``exp`` sits above ``workloads`` (it builds full device stacks
and replays workloads through them) and below ``analysis`` (whose drivers
construct their testbeds through it).
"""

from repro.exp.build import (
    Stack,
    build_fleet,
    build_stack,
    derived_ftl_config,
    synthetic_requests,
)
from repro.exp.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    canonical_json,
    cell_key,
    code_salt,
    default_cache_dir,
    to_jsonable,
)
from repro.exp.config import (
    ALLOCATOR_KINDS,
    SimConfig,
    WorkloadConfig,
)
from repro.exp.methods import (
    MethodEvaluator,
    MethodRow,
    evaluate_methods,
    make_assembler,
    method_names,
)
from repro.exp.sweep import (
    Axis,
    Cell,
    CellResult,
    CellTimeoutError,
    Sweep,
    SweepProgress,
    SweepResult,
    dig,
    run,
    worker_entrypoint,
)
from repro.exp.tasks import DEFAULT_METHODS, TASKS, Task, register_task

__all__ = [
    # config
    "SimConfig",
    "WorkloadConfig",
    "ALLOCATOR_KINDS",
    # construction
    "Stack",
    "build_fleet",
    "build_stack",
    "derived_ftl_config",
    "synthetic_requests",
    # methods
    "MethodEvaluator",
    "MethodRow",
    "evaluate_methods",
    "make_assembler",
    "method_names",
    # sweep
    "Sweep",
    "Axis",
    "Cell",
    "CellResult",
    "CellTimeoutError",
    "SweepProgress",
    "SweepResult",
    "run",
    "dig",
    "worker_entrypoint",
    # tasks
    "TASKS",
    "Task",
    "register_task",
    "DEFAULT_METHODS",
    # cache
    "ResultCache",
    "cell_key",
    "code_salt",
    "canonical_json",
    "to_jsonable",
    "default_cache_dir",
    "DEFAULT_CACHE_DIR",
]
