"""``build_stack(SimConfig) -> Stack`` — the one construction path.

Historically the repo had two independent stack constructors: the CLI's
``_build_ssd`` (argparse-coupled) and ``analysis.experiments.build_testbed``
(assembly-study only).  Both now funnel through :func:`build_stack`, which
turns a :class:`~repro.exp.config.SimConfig` into a :class:`Stack` exposing
every level a caller might need — the probed chips, the assembly-study lane
pools, and the full FTL+SSD device — built lazily so a pools-only cell never
pays for an SSD format.

Determinism contract: everything a :class:`Stack` produces is a pure
function of its config (``repro.utils.rng.derive_seed`` discipline all the
way down), so two builds of the same config — in any process, in any order —
behave identically.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.assembly.base import LanePool
from repro.assembly.pools import build_lane_pools
from repro.exp.config import BACKENDS, SimConfig
from repro.faults.injector import make_injector
from repro.fleet.engine import FleetSim
from repro.ftl.config import FtlConfig
from repro.ftl.ftl import Ftl
from repro.nand.chip import FlashChip
from repro.nand.geometry import NandGeometry
from repro.nand.variation import VariationModel
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.perf.profiler import profiled
from repro.policy.resolve import resolve_policies
from repro.ssd.device import Ssd
from repro.utils.rng import derive_seed
from repro.workloads.model import Request


def derived_ftl_config(geometry: NandGeometry) -> FtlConfig:
    """FTL sizing derived from the managed block range (the CLI formula).

    Keeps real headroom between logical space and the GC watermarks, or a
    tightly-sized device grinds through GC for every host write.
    """
    usable = max(12, geometry.blocks_per_plane - 8)
    overprovision = max(0.28, min(0.6, 6.0 / usable + 0.15))
    return FtlConfig(
        usable_blocks_per_plane=usable,
        overprovision_ratio=overprovision,
        gc_low_watermark=2,
        gc_high_watermark=4,
    )


class Stack:
    """One simulation stack: chips, lane pools and the SSD, per config.

    ``chips`` is built eagerly (it is cheap and everything needs it); the
    probed :meth:`pools` and the formatted :attr:`ssd` are built on first
    use.  The tracer/registry passed at construction are threaded into the
    FTL/SSD so traced and untraced stacks share one code path.
    """

    def __init__(
        self,
        config: SimConfig,
        tracer: Optional[NullTracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = registry
        model = VariationModel(config.geometry, config.variation, seed=config.seed)
        # make_injector returns the shared null object for a null/absent
        # plan, so fault-free stacks are bit-identical to historical ones.
        self.chips: List[FlashChip] = [
            FlashChip(
                model.chip_profile(chip_id),
                config.geometry,
                injector=make_injector(config.faults, config.seed, chip_id),
            )
            for chip_id in range(config.chips)
        ]
        self._ssd: Optional[Ssd] = None

    def resolved_backend(self) -> str:
        """The effective execution backend for this stack.

        The ``REPRO_BACKEND`` environment variable upgrades the default
        scalar backend (so CI can run an unmodified command matrix on both
        backends); an explicit ``config.backend`` always wins.
        """
        if self.config.backend != "scalar":
            return self.config.backend
        env = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if not env:
            return self.config.backend
        if env not in BACKENDS:
            raise ValueError(f"REPRO_BACKEND must be one of {BACKENDS}, got {env!r}")
        return env

    def pools(self) -> List[LanePool]:
        """Probe the configured block range on every chip (one lane each).

        When ``config.pe_cycles`` is set, every block is first worn to that
        epoch — the Figure 15 re-probe-at-wear setup.
        """
        return build_lane_pools(
            self.chips,
            range(self.config.pool_blocks),
            target_pe=self.config.pe_cycles,
        )

    @property
    def ssd(self) -> Ssd:
        """The formatted device (built and formatted on first access)."""
        if self._ssd is None:
            config = self.config
            ftl_config = config.ftl if config.ftl is not None else derived_ftl_config(
                config.geometry
            )
            # The FTL seed feeds the allocator and repair RNG streams.  It
            # is only passed when fault injection is active: the historical
            # fault-free stack always used the default, and changing that
            # would perturb byte-identical replay outputs.
            ftl_seed = config.seed if config.faults is not None else 0
            # Learned policies draw from "policy"-labeled streams keyed on
            # the config seed; the static defaults draw nothing, so the
            # historical ftl_seed quirk above cannot leak through them.
            policy_seed = ftl_seed if config.policies.is_default else config.seed
            policies = resolve_policies(
                config.policies,
                seed=policy_seed,
                legacy_repair=ftl_config.repair_policy,
            )
            # The vector engine only accelerates stacks it can reproduce
            # bit-for-bit; anything fancier (faults, learned policies,
            # steering, parity) builds the scalar reference classes.  The
            # VectorFtl gates its own fast paths too — this check just
            # avoids constructing vector machinery that would immediately
            # fall back.
            use_vector = (
                self.resolved_backend() == "vector"
                and config.faults is None
                and config.policies.is_default
                and not ftl_config.superpage_steering
                and not ftl_config.parity_protection
            )
            if use_vector:
                from repro.kernels.engine import VectorFtl, VectorSsd

                ftl_cls, ssd_cls = VectorFtl, VectorSsd
            else:
                ftl_cls, ssd_cls = Ftl, Ssd
            ftl = ftl_cls(
                self.chips,
                ftl_config,
                allocator_kind=config.allocator,
                seed=ftl_seed,
                tracer=self.tracer,
                registry=self.registry,
                policies=policies,
            )
            ftl.format()
            self._ssd = ssd_cls(ftl, config.timing)
        return self._ssd

    @property
    def ftl(self) -> Ftl:
        return self.ssd.ftl

    def requests(self) -> List[Request]:
        """The configured host workload, sized to this stack's logical space."""
        workload = self.config.workload
        if workload.kind == "trace":
            from repro.workloads.trace import load_trace

            assert workload.trace_path is not None  # validated by the config
            requests = load_trace(workload.trace_path)
        elif (
            workload.requests is not None
            and self.resolved_backend() == "vector"
        ):
            from repro.kernels.workload import (
                fill_request_count,
                sequential_fill_prefix,
            )
            from repro.workloads.synthetic import ArrivalProcess

            logical_pages = self.ftl.logical_pages
            if workload.requests <= fill_request_count(logical_pages):
                # the cap lands inside the sequential fill, so the zipf tail
                # would be truncated away anyway: generate only the prefix
                # (byte-identical — see repro.kernels.workload)
                return sequential_fill_prefix(
                    logical_pages,
                    workload.requests,
                    arrivals=ArrivalProcess(
                        mean_interarrival_us=workload.interarrival_us
                    ),
                    seed=workload.fill_seed,
                )
            requests = synthetic_requests(
                logical_pages,
                interarrival_us=workload.interarrival_us,
                overwrite_fraction=workload.overwrite_fraction,
                fill_seed=workload.fill_seed,
                overwrite_seed=workload.overwrite_seed,
            )
        else:
            requests = synthetic_requests(
                self.ftl.logical_pages,
                interarrival_us=workload.interarrival_us,
                overwrite_fraction=workload.overwrite_fraction,
                fill_seed=workload.fill_seed,
                overwrite_seed=workload.overwrite_seed,
            )
        if workload.requests is not None:
            requests = requests[: workload.requests]
        return requests


def synthetic_requests(
    logical_pages: int,
    *,
    interarrival_us: float = 8000.0,
    overwrite_fraction: float = 0.7,
    fill_seed: int = 1,
    overwrite_seed: int = 2,
) -> List[Request]:
    """The default fill + zipf-overwrite workload of ``replay``/``run``."""
    from repro.workloads.synthetic import ArrivalProcess, sequential_fill, zipf_writes

    arrivals = ArrivalProcess(mean_interarrival_us=interarrival_us)
    requests = sequential_fill(logical_pages, arrivals=arrivals, seed=fill_seed)
    requests += zipf_writes(
        logical_pages,
        int(logical_pages * overwrite_fraction),
        arrivals=arrivals,
        seed=overwrite_seed,
    )
    return requests


@profiled("build.fleet")
def build_fleet(
    config: SimConfig,
    *,
    tracer: Optional[NullTracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> FleetSim:
    """Build the fleet serving layer ``config.fleet`` describes.

    Each member device is a full ``build_stack`` stack of this config with
    its own derived seed (``derive_seed(config.seed, "fleet", "device", i)``,
    so members have independent variation profiles — real fleets are
    heterogeneous) and no fleet layer of its own.  The config's fault plan
    is installed on ``fleet.fault_device`` only; every other member runs
    fault-free.  Member stacks get the null tracer — the byte-identical
    JSONL trace the fleet emits is the *serving-layer* event stream, and
    per-device spans would make it O(device traffic).
    """
    fleet = config.fleet
    if fleet is None:
        raise ValueError("config.fleet is not set")
    devices = []
    for index in range(fleet.devices):
        member = config.with_(
            seed=derive_seed(config.seed, "fleet", "device", index),
            fleet=None,
            faults=config.faults if index == fleet.fault_device else None,
        )
        devices.append(build_stack(member).ssd)
    pages_per_tenant = min(ssd.ftl.logical_pages for ssd in devices) // fleet.tenants
    if pages_per_tenant < 1:
        raise ValueError(
            f"{fleet.tenants} tenants do not fit in "
            f"{min(ssd.ftl.logical_pages for ssd in devices)} logical pages"
        )
    return FleetSim(
        fleet,
        devices,
        seed=config.seed,
        pages_per_tenant=pages_per_tenant,
        tracer=tracer,
        registry=registry,
    )


@profiled("build.stack")
def build_stack(
    config: SimConfig,
    *,
    tracer: Optional[NullTracer] = None,
    registry: Optional[MetricsRegistry] = None,
    verbose: bool = False,
) -> Stack:
    """Build the simulation stack for ``config``.

    ``tracer``/``registry`` are injected into the FTL/SSD when the device
    side of the stack is first touched; ``verbose`` narrates construction on
    stderr (the CLI's historical behavior).
    """
    if verbose:
        print(
            f"probing {config.chips} chips x {config.pool_blocks} blocks ...",
            file=sys.stderr,
        )
    return Stack(config, tracer=tracer, registry=registry)
