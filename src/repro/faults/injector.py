"""Per-chip fault injectors.

A :class:`FaultInjector` is consulted by :class:`repro.nand.chip.FlashChip`
on every program, erase and read.  It owns one per-chip operation counter
per fault kind, the pending scheduled events for that chip, and (only when
the plan has nonzero probabilities) ``derive_seed``-derived RNG streams —
one per fault kind, so adding erase faults never perturbs the program-fault
stream.

The default :data:`NULL_INJECTOR` answers every query with the benign
constant and performs no RNG draws and no bookkeeping, which keeps the
fault-free simulation byte-identical to one built before this package
existed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.faults.plan import (
    KIND_ERASE_FAIL,
    KIND_PLANE_OUTAGE,
    KIND_PROGRAM_FAIL,
    KIND_READ_STORM,
    FaultEvent,
    FaultPlan,
)
from repro.utils.rng import derive_seed


class NullInjector:
    """The disabled injector: every hook is a constant-time no-op."""

    __slots__ = ()

    enabled: bool = False

    def advance(self, now_us: float) -> None:
        """Move simulated time forward; no-op here."""

    def fail_program(self, plane: int, block: int) -> bool:
        return False

    def fail_erase(self, plane: int, block: int) -> bool:
        return False

    def read_rber_multiplier(self, plane: int, block: int) -> float:
        return 1.0

    def plane_dead(self, plane: int) -> bool:
        return False


class FaultInjector(NullInjector):
    """Deterministic per-chip fault source driven by a :class:`FaultPlan`."""

    __slots__ = (
        "plan",
        "chip_id",
        "_now_us",
        "_program_ops",
        "_erase_ops",
        "_read_ops",
        "_total_ops",
        "_pending",
        "_dead_planes",
        "_storm_remaining",
        "_storm_multiplier",
        "_program_rng",
        "_erase_rng",
        "injected_program_fails",
        "injected_erase_fails",
        "injected_read_storms",
        "injected_plane_outages",
    )

    enabled: bool = True

    def __init__(self, plan: FaultPlan, seed: int, chip_id: int) -> None:
        self.plan = plan
        self.chip_id = int(chip_id)
        self._now_us = 0.0
        self._program_ops = 0
        self._erase_ops = 0
        self._read_ops = 0
        self._total_ops = 0
        self._pending: List[FaultEvent] = list(plan.events_for_chip(self.chip_id))
        self._dead_planes: set = set()
        self._storm_remaining = 0
        self._storm_multiplier = 1.0
        # One independent stream per fault kind, only when it can ever draw.
        self._program_rng: Optional[np.random.Generator] = (
            np.random.default_rng(derive_seed(seed, "faults", self.chip_id, "program"))
            if plan.program_fail_prob > 0.0
            else None
        )
        self._erase_rng: Optional[np.random.Generator] = (
            np.random.default_rng(derive_seed(seed, "faults", self.chip_id, "erase"))
            if plan.erase_fail_prob > 0.0
            else None
        )
        self.injected_program_fails = 0
        self.injected_erase_fails = 0
        self.injected_read_storms = 0
        self.injected_plane_outages = 0

    # -- clock -------------------------------------------------------------

    def advance(self, now_us: float) -> None:
        if now_us > self._now_us:
            self._now_us = now_us

    # -- scheduled-event matching ------------------------------------------

    def _take_event(
        self, kind: str, op_index: int, plane: int, block: Optional[int]
    ) -> Optional[FaultEvent]:
        """Pop and return the first pending event matching this operation."""
        for i, event in enumerate(self._pending):
            if event.kind != kind:
                continue
            if event.at_op is not None and event.at_op != op_index:
                continue
            if event.at_time_us is not None and self._now_us < event.at_time_us:
                continue
            if event.plane is not None and event.plane != plane:
                continue
            if event.block is not None and block is not None and event.block != block:
                continue
            del self._pending[i]
            return event
        return None

    def _check_outages(self, plane: int) -> None:
        event = self._take_event(KIND_PLANE_OUTAGE, self._total_ops, plane, None)
        if event is not None:
            self._dead_planes.add(event.plane)
            self.injected_plane_outages += 1

    # -- chip hooks --------------------------------------------------------

    def fail_program(self, plane: int, block: int) -> bool:
        op = self._program_ops
        self._program_ops += 1
        self._total_ops += 1
        self._check_outages(plane)
        if self._take_event(KIND_PROGRAM_FAIL, op, plane, block) is not None:
            self.injected_program_fails += 1
            return True
        if self._program_rng is not None and bool(
            self._program_rng.random() < self.plan.program_fail_prob
        ):
            self.injected_program_fails += 1
            return True
        return False

    def fail_erase(self, plane: int, block: int) -> bool:
        op = self._erase_ops
        self._erase_ops += 1
        self._total_ops += 1
        self._check_outages(plane)
        if self._take_event(KIND_ERASE_FAIL, op, plane, block) is not None:
            self.injected_erase_fails += 1
            return True
        if self._erase_rng is not None and bool(
            self._erase_rng.random() < self.plan.erase_fail_prob
        ):
            self.injected_erase_fails += 1
            return True
        return False

    def read_rber_multiplier(self, plane: int, block: int) -> float:
        op = self._read_ops
        self._read_ops += 1
        self._total_ops += 1
        self._check_outages(plane)
        event = self._take_event(KIND_READ_STORM, op, plane, block)
        if event is not None:
            self._storm_remaining = event.duration_ops
            self._storm_multiplier = event.rber_multiplier
            self.injected_read_storms += 1
        if self._storm_remaining > 0:
            self._storm_remaining -= 1
            return self._storm_multiplier
        return 1.0

    def plane_dead(self, plane: int) -> bool:
        return plane in self._dead_planes


#: The process-wide disabled injector every chip defaults to.
NULL_INJECTOR = NullInjector()


def make_injector(plan: Optional[FaultPlan], seed: int, chip_id: int) -> NullInjector:
    """An injector for one chip — the shared null object for null plans."""
    if plan is None or plan.is_null:
        return NULL_INJECTOR
    return FaultInjector(plan, seed, chip_id)
