"""Deterministic fault injection for the simulated NAND stack.

The package sits *below* ``nand`` in the layer DAG: chips accept a
:class:`~repro.faults.injector.FaultInjector` and consult it on every
program/erase/read, while the default :data:`~repro.faults.injector.NULL_INJECTOR`
short-circuits every hook so the fault-free path stays byte-identical to a
build without this package.

Fault *plans* (:class:`~repro.faults.plan.FaultPlan`) are frozen, picklable
and JSON-round-trippable so they can live inside ``exp.SimConfig``, be
content-hashed, and swept like any other parameter.  All probabilistic
draws come from ``derive_seed`` streams — two runs with the same seed
inject the same faults at the same operations.
"""

from repro.faults.plan import (
    KIND_ERASE_FAIL,
    KIND_PLANE_OUTAGE,
    KIND_PROGRAM_FAIL,
    KIND_READ_STORM,
    FaultEvent,
    FaultPlan,
)
from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    make_injector,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "make_injector",
    "KIND_PROGRAM_FAIL",
    "KIND_ERASE_FAIL",
    "KIND_READ_STORM",
    "KIND_PLANE_OUTAGE",
]
