"""Fault plans: frozen, picklable schedules of injected NAND faults.

A :class:`FaultPlan` combines *probabilistic* faults (per-operation failure
probabilities, drawn from ``derive_seed`` streams inside the injector) with
*scheduled* :class:`FaultEvent` entries that fire at a fixed operation count
or simulated time on a specific chip (optionally narrowed to one plane or
block).  Plans are value objects: they serialize to canonical dicts, hash
into ``SimConfig.content_hash()``, and survive pickling into sweep workers.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

KIND_PROGRAM_FAIL = "program_fail"
KIND_ERASE_FAIL = "erase_fail"
KIND_READ_STORM = "read_storm"
KIND_PLANE_OUTAGE = "plane_outage"

#: Every fault kind a :class:`FaultEvent` may carry.
EVENT_KINDS = (
    KIND_PROGRAM_FAIL,
    KIND_ERASE_FAIL,
    KIND_READ_STORM,
    KIND_PLANE_OUTAGE,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    The trigger is the conjunction of every condition that is set:
    ``at_op`` matches the per-kind operation counter of the target chip
    (programs for ``program_fail``, erases for ``erase_fail``, reads for
    ``read_storm``; ``plane_outage`` uses the chip's total op count), and
    ``at_time_us`` arms the event only once simulated time has reached it
    (it then fires on the *first* matching operation).  ``plane``/``block``
    narrow the target; ``None`` means "any".
    """

    kind: str
    chip: int
    plane: Optional[int] = None
    block: Optional[int] = None
    at_op: Optional[int] = None
    at_time_us: Optional[float] = None
    #: read-storm only: how many subsequent reads see the elevated RBER.
    duration_ops: int = 0
    #: read-storm only: multiplier applied to the page's raw bit-error rate.
    rber_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.chip < 0:
            raise ValueError("chip must be >= 0")
        if self.at_op is None and self.at_time_us is None:
            raise ValueError(f"{self.kind} event needs at_op and/or at_time_us")
        if self.at_op is not None and self.at_op < 0:
            raise ValueError("at_op must be >= 0")
        if self.at_time_us is not None and self.at_time_us < 0:
            raise ValueError("at_time_us must be >= 0")
        if self.kind == KIND_READ_STORM:
            if self.duration_ops <= 0:
                raise ValueError("read_storm needs duration_ops > 0")
            if self.rber_multiplier < 1.0:
                raise ValueError("read_storm rber_multiplier must be >= 1")
        if self.kind == KIND_PLANE_OUTAGE and self.plane is None:
            raise ValueError("plane_outage needs an explicit plane")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict; ``None``/default fields are kept for stability."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown FaultEvent fields: {sorted(unknown)}")
        return cls(**dict(data))


def _coerce_events(raw: Any) -> Tuple[FaultEvent, ...]:
    events = []
    for item in raw:
        if isinstance(item, FaultEvent):
            events.append(item)
        elif isinstance(item, Mapping):
            events.append(FaultEvent.from_dict(item))
        else:
            raise TypeError(f"cannot build FaultEvent from {type(item).__name__}")
    return tuple(events)


@dataclass(frozen=True)
class FaultPlan:
    """The full injection schedule for one simulation.

    ``program_fail_prob``/``erase_fail_prob`` inject i.i.d. status failures
    per program/erase operation from a per-chip ``derive_seed`` stream;
    ``events`` adds the scheduled faults.  The default plan is *null*: no
    probabilities, no events, and the injector built from it performs zero
    RNG draws, keeping fault-free runs byte-identical.
    """

    program_fail_prob: float = 0.0
    erase_fail_prob: float = 0.0
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.program_fail_prob < 1.0:
            raise ValueError("program_fail_prob must be in [0, 1)")
        if not 0.0 <= self.erase_fail_prob < 1.0:
            raise ValueError("erase_fail_prob must be in [0, 1)")
        object.__setattr__(self, "events", _coerce_events(self.events))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The null plan (the implicit default everywhere)."""
        return cls()

    @property
    def is_null(self) -> bool:
        # Truthiness, not float equality: the defaults are the exact
        # literal 0.0, never a computed value.
        return (
            not self.program_fail_prob
            and not self.erase_fail_prob
            and not self.events
        )

    def events_for_chip(self, chip_id: int) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.chip == chip_id)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program_fail_prob": self.program_fail_prob,
            "erase_fail_prob": self.erase_fail_prob,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec.

        ``@path.json`` loads a full plan from a JSON file; otherwise the
        spec is comma-separated ``key=value`` pairs with keys ``program``
        and ``erase`` (per-op failure probabilities), e.g.
        ``program=0.01,erase=0.005``.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault spec")
        if spec.startswith("@"):
            with open(spec[1:], "r", encoding="utf-8") as fh:
                return cls.from_dict(json.load(fh))
        kwargs: Dict[str, float] = {}
        keymap = {"program": "program_fail_prob", "erase": "erase_fail_prob"}
        for part in spec.split(","):
            if "=" not in part:
                raise ValueError(f"bad fault spec fragment {part!r} (want key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in keymap:
                raise ValueError(
                    f"unknown fault spec key {key!r} (want program/erase, or @file.json)"
                )
            kwargs[keymap[key]] = float(value)
        return cls(**kwargs)
