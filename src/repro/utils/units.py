"""Unit conventions and formatting.

All latencies in this codebase are **microseconds** (µs) as plain floats,
matching the units the paper reports (tPROG ≈ 1,600–1,900 µs per word-line,
tBERS in the low milliseconds, extra latencies of 10s of µs per word-line).
"""

from __future__ import annotations

US_PER_MS = 1000.0
US_PER_S = 1_000_000.0

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


def us_to_ms(us: float) -> float:
    """Microseconds → milliseconds."""
    return us / US_PER_MS


def ms_to_us(ms: float) -> float:
    """Milliseconds → microseconds."""
    return ms * US_PER_MS


def us_to_s(us: float) -> float:
    """Microseconds → seconds."""
    return us / US_PER_S


def format_us(us: float) -> str:
    """Human-readable latency: picks µs/ms/s with thousands separators."""
    if us < 0:
        return "-" + format_us(-us)
    if us < 1000:
        return f"{us:,.2f} us"
    if us < US_PER_S:
        return f"{us / US_PER_MS:,.2f} ms"
    return f"{us / US_PER_S:,.3f} s"


def format_bytes(count: int) -> str:
    """Human-readable byte size."""
    if count < 0:
        return "-" + format_bytes(-count)
    if count < KIB:
        return f"{count} B"
    if count < MIB:
        return f"{count / KIB:,.1f} KiB"
    if count < GIB:
        return f"{count / MIB:,.1f} MiB"
    if count < TIB:
        return f"{count / GIB:,.2f} GiB"
    return f"{count / TIB:,.2f} TiB"


def improvement_pct(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` in percent.

    Positive means ``value`` is smaller (better, for latencies).
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (baseline - value) / baseline * 100.0
