"""Streaming statistics and histogram helpers for the measurement harness.

The characterization and benchmark code accumulates millions of latency
samples; :class:`RunningStats` keeps O(1) state (Welford's algorithm) and the
:class:`Histogram` builds the distribution series behind Figure 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class RunningStats:
    """Welford online mean/variance plus min/max tracking."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel-merge form of Welford)."""
        merged = RunningStats()
        if self._count == 0:
            merged._copy_from(other)
            return merged
        if other._count == 0:
            merged._copy_from(self)
            return merged
        total = self._count + other._count
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._count * other._count / total
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def _copy_from(self, other: "RunningStats") -> None:
        self._count = other._count
        self._mean = other._mean
        self._m2 = other._m2
        self._min = other._min
        self._max = other._max

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance."""
        if self._count == 0:
            raise ValueError("no samples")
        return self._m2 / self._count

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        return self._max

    @property
    def total(self) -> float:
        return self._mean * self._count

    def __repr__(self) -> str:
        if self._count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self._count}, mean={self._mean:.2f}, "
            f"std={self.stdev:.2f}, min={self._min:.2f}, max={self._max:.2f})"
        )


@dataclass
class Histogram:
    """Fixed-width-bin histogram over a closed range."""

    low: float
    high: float
    bins: int
    counts: List[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError("high must exceed low")
        if self.bins <= 0:
            raise ValueError("bins must be positive")
        if not self.counts:
            self.counts = [0] * self.bins

    @property
    def bin_width(self) -> float:
        return (self.high - self.low) / self.bins

    def add(self, value: float) -> None:
        if value < self.low:
            self.underflow += 1
            return
        if value >= self.high:
            self.overflow += 1
            return
        index = int((value - self.low) / self.bin_width)
        # Guard the high edge against float rounding.
        index = min(index, self.bins - 1)
        self.counts[index] += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        width = self.bin_width
        return [self.low + i * width for i in range(self.bins + 1)]

    def bin_centers(self) -> List[float]:
        width = self.bin_width
        return [self.low + (i + 0.5) * width for i in range(self.bins)]

    def series(self) -> List[Tuple[float, int]]:
        """``(bin_center, count)`` pairs — the Figure 13 plot series."""
        return list(zip(self.bin_centers(), self.counts))

    def mode_center(self) -> float:
        """Center of the most populated bin."""
        if not any(self.counts):
            raise ValueError("empty histogram")
        index = max(range(self.bins), key=lambda i: self.counts[i])
        return self.bin_centers()[index]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1 - frac) + ordered[upper] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/min/max/p50/p99 of a sample, as a plain dict."""
    stats = RunningStats()
    stats.extend(values)
    return {
        "count": float(stats.count),
        "mean": stats.mean,
        "stdev": stats.stdev,
        "min": stats.minimum,
        "max": stats.maximum,
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
    }
