"""A sorted list keyed by an arbitrary function.

QSTR-MED keeps, per chip, a list of free blocks sorted by accumulated block
program latency (Section V-B).  Assembly pops from the head (fast
superblocks) or the tail (slow superblocks).  A bisect-backed list is the
right tool at the scale of a chip's free pool (hundreds to a few thousand
entries): O(log n) search, O(n) insert/remove with tiny constants.
"""

from __future__ import annotations

import bisect
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    TypeVar,
    Union,
    overload,
)

T = TypeVar("T")


class SortedKeyList(Generic[T]):
    """Mutable list kept sorted by ``key(item)``; ties keep insertion order."""

    def __init__(self, items: Iterable[T] = (), *, key: Callable[[T], Any]) -> None:
        self._key = key
        self._items: List[T] = sorted(items, key=key)
        self._keys: List[Any] = [key(item) for item in self._items]

    def add(self, item: T) -> int:
        """Insert ``item``, returning its position."""
        item_key = self._key(item)
        index = bisect.bisect_right(self._keys, item_key)
        self._items.insert(index, item)
        self._keys.insert(index, item_key)
        return index

    def remove(self, item: T) -> None:
        """Remove one occurrence of ``item`` (by equality). Raises ValueError if absent."""
        item_key = self._key(item)
        index = bisect.bisect_left(self._keys, item_key)
        while index < len(self._items) and self._keys[index] == item_key:
            if self._items[index] == item:
                del self._items[index]
                del self._keys[index]
                return
            index += 1
        raise ValueError(f"{item!r} not in list")

    def pop_head(self) -> T:
        """Remove and return the smallest-key item."""
        if not self._items:
            raise IndexError("pop from empty SortedKeyList")
        self._keys.pop(0)
        return self._items.pop(0)

    def pop_tail(self) -> T:
        """Remove and return the largest-key item."""
        if not self._items:
            raise IndexError("pop from empty SortedKeyList")
        self._keys.pop()
        return self._items.pop()

    def head(self, count: int = 1) -> List[T]:
        """The ``count`` smallest-key items (without removal)."""
        return self._items[:count]

    def tail(self, count: int = 1) -> List[T]:
        """The ``count`` largest-key items (without removal), largest last."""
        return self._items[-count:] if count else []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @overload
    def __getitem__(self, index: int) -> T: ...

    @overload
    def __getitem__(self, index: slice) -> List[T]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[T, List[T]]:
        return self._items[index]

    def __contains__(self, item: T) -> bool:
        item_key = self._key(item)
        index = bisect.bisect_left(self._keys, item_key)
        while index < len(self._items) and self._keys[index] == item_key:
            if self._items[index] == item:
                return True
            index += 1
        return False

    def index_of(self, item: T) -> Optional[int]:
        """Position of ``item`` or ``None`` if absent."""
        item_key = self._key(item)
        index = bisect.bisect_left(self._keys, item_key)
        while index < len(self._items) and self._keys[index] == item_key:
            if self._items[index] == item:
                return index
            index += 1
        return None

    def __repr__(self) -> str:
        return f"SortedKeyList({self._items!r})"
