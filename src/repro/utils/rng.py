"""Deterministic random-number discipline.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` derived from a *root seed* plus a stable
string path (e.g. ``("chip", 3, "wl_profile")``).  Two runs with the same
root seed produce bit-identical chips, workloads and measurements, which is
what lets the benchmark harness regenerate the paper's tables repeatably.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

SeedPart = Union[str, int]


def derive_seed(root_seed: int, *path: SeedPart) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a label path.

    Uses SHA-256 over the textual path so that seeds are stable across
    Python versions and processes (unlike ``hash()``).
    """
    text = f"{root_seed}/" + "/".join(str(p) for p in path)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Factory producing independent, reproducible generators by label path."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def generator(self, *path: SeedPart) -> np.random.Generator:
        """An independent generator for the given label path."""
        return np.random.default_rng(derive_seed(self._root_seed, *path))

    def child(self, *path: SeedPart) -> "RngFactory":
        """A sub-factory rooted at the derived seed of ``path``."""
        return RngFactory(derive_seed(self._root_seed, *path))

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self._root_seed})"


def spawn_pair(factory: RngFactory, *path: SeedPart) -> Tuple[np.random.Generator, np.random.Generator]:
    """Two independent generators under the same path (e.g. signal vs noise)."""
    return factory.generator(*path, "a"), factory.generator(*path, "b")
