"""Fixed-length bit vectors with fast XOR/popcount.

QSTR-MED represents each block's string-speed signature as an *eigen
sequence*: one bit per (physical word-line layer, string).  The similarity
distance between two blocks is ``popcount(a XOR b)`` (Section V-C of the
paper), so the whole scheme reduces to cheap bitwise arithmetic.  Python
integers give us arbitrary-width registers with O(n/64) XOR and a native
``bit_count``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class BitVector:
    """An immutable fixed-length vector of bits.

    Bit 0 is the *first* bit appended/supplied; internally bits are packed
    into one Python int with bit ``i`` of the integer holding element ``i``.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, bits: Iterable[int] = (), *, length: int = None, value: int = None) -> None:
        if value is not None:
            if length is None:
                raise ValueError("length is required when constructing from a raw value")
            if value < 0:
                raise ValueError("raw value must be non-negative")
            if value.bit_length() > length:
                raise ValueError(
                    f"raw value needs {value.bit_length()} bits, only {length} given"
                )
            self._value = value
            self._length = length
            return
        acc = 0
        count = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            if bit:
                acc |= 1 << count
            count += 1
        if length is not None:
            if count > length:
                raise ValueError(f"got {count} bits for declared length {length}")
            count = length
        self._value = acc
        self._length = count

    # -- constructors -----------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        """A vector of ``length`` zero bits."""
        return cls(length=length, value=0)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """A vector of ``length`` one bits."""
        return cls(length=length, value=(1 << length) - 1 if length else 0)

    @classmethod
    def from_string(cls, text: str) -> "BitVector":
        """Parse ``"1001 0011"`` (spaces/underscores ignored)."""
        cleaned = text.replace(" ", "").replace("_", "")
        return cls(int(ch) for ch in cleaned)

    @classmethod
    def concat(cls, parts: Sequence["BitVector"]) -> "BitVector":
        """Join vectors in order; part 0 supplies the lowest-index bits."""
        acc = 0
        offset = 0
        for part in parts:
            acc |= part._value << offset
            offset += part._length
        return cls(length=offset, value=acc)

    # -- core operations ---------------------------------------------------

    def __xor__(self, other: "BitVector") -> "BitVector":
        if self._length != other._length:
            raise ValueError(
                f"length mismatch: {self._length} vs {other._length}"
            )
        return BitVector(length=self._length, value=self._value ^ other._value)

    def popcount(self) -> int:
        """Number of set bits."""
        return self._value.bit_count()

    def hamming_distance(self, other: "BitVector") -> int:
        """popcount(self XOR other) — the QSTR-MED similarity distance."""
        return (self ^ other).popcount()

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if isinstance(index, slice):
            return BitVector(self[i] for i in range(*index.indices(self._length)))
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        return (self._value >> index) & 1

    def __iter__(self) -> Iterator[int]:
        value = self._value
        for _ in range(self._length):
            yield value & 1
            value >>= 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        return f"BitVector('{self.to_string()}')"

    # -- conversions ---------------------------------------------------------

    def to_bits(self) -> List[int]:
        """The bits as a list of ints."""
        return list(self)

    def to_string(self, group: int = 4) -> str:
        """Render as e.g. ``"1001 0011"`` (bit 0 first)."""
        digits = "".join(str(b) for b in self)
        if group <= 0:
            return digits
        chunks = [digits[i : i + group] for i in range(0, len(digits), group)]
        return " ".join(chunks)

    @property
    def value(self) -> int:
        """The packed integer representation."""
        return self._value
