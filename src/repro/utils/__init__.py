"""Shared low-level utilities: bit vectors, RNG discipline, sorted lists, stats.

These helpers are deliberately dependency-light; everything above them
(`repro.nand`, `repro.assembly`, `repro.core`, ...) builds on this layer.
"""

from repro.utils.bitvec import BitVector
from repro.utils.rng import RngFactory, derive_seed
from repro.utils.sortedlist import SortedKeyList
from repro.utils.stats import Histogram, RunningStats, summarize

__all__ = [
    "BitVector",
    "RngFactory",
    "derive_seed",
    "SortedKeyList",
    "Histogram",
    "RunningStats",
    "summarize",
]
