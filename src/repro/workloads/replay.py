"""Trace replay against an SSD (or bare FTL) with latency reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.perf.profiler import perf_scope
from repro.utils.stats import percentile, summarize

if TYPE_CHECKING:  # avoid a runtime cycle: ssd.device uses workloads.model
    from repro.ssd.device import CompletedRequest, Ssd
from repro.workloads.model import OpKind, Request, clamp_requests


@dataclass
class ReplayReport:
    """Latency outcome of one replay."""

    completed: List["CompletedRequest"] = field(default_factory=list)

    def latencies(self, op: Optional[OpKind] = None) -> List[float]:
        return [
            c.latency_us
            for c in self.completed
            if op is None or c.request.op is op
        ]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-op latency summaries (mean/p50/p99/...)."""
        report: Dict[str, Dict[str, float]] = {}
        for op in OpKind:
            values = self.latencies(op)
            if values:
                report[op.name] = summarize(values)
        return report

    def p99_write_us(self) -> float:
        writes = self.latencies(OpKind.WRITE)
        if not writes:
            raise ValueError("no writes replayed")
        return percentile(writes, 99)

    def mean_write_us(self) -> float:
        writes = self.latencies(OpKind.WRITE)
        if not writes:
            raise ValueError("no writes replayed")
        return sum(writes) / len(writes)


class Replayer:
    """Feeds a request stream to an SSD and collects the report."""

    def __init__(self, ssd: "Ssd", clamp: bool = True) -> None:
        self.ssd = ssd
        self.clamp = clamp

    def replay(self, requests: Sequence[Request], drain: bool = True) -> ReplayReport:
        """Run all requests in timestamp order; optionally drain buffers after."""
        ordered = sorted(requests, key=lambda r: r.time_us)
        if self.clamp:
            ordered = clamp_requests(ordered, self.ssd.ftl.logical_pages)
        report = ReplayReport()
        with perf_scope("replay.requests"):
            for request in ordered:
                report.completed.append(self.ssd.submit(request))
        if drain:
            with perf_scope("replay.drain"):
                self.ssd.ftl.flush()
        return report
