"""Synthetic workload generators.

The substitutes for the production traces the paper's motivation appeals to:
sequential streams (batch ingest), uniform and Zipf random writes (the
small-random traffic the placement policy steers to fast superpages), mixed
read/write, and a hot/cold overwrite pattern that exercises GC hard.

All generators are deterministic in their seed and emit
:class:`~repro.workloads.model.Request` lists with Poisson-ish arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.rng import derive_seed
from repro.workloads.model import OpKind, Request


@dataclass(frozen=True)
class ArrivalProcess:
    """Exponential inter-arrival times with a fixed mean (µs)."""

    mean_interarrival_us: float = 50.0

    def times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self.mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")
        gaps = rng.exponential(self.mean_interarrival_us, size=count)
        return np.cumsum(gaps)


def sequential_fill(
    logical_pages: int,
    *,
    start: int = 0,
    pages_per_request: int = 8,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Write the whole logical space once, front to back."""
    # repro.kernels.workload.sequential_fill_prefix deliberately shares this
    # ("seq") stream — its prefix guarantee depends on drawing the same bits.
    rng = np.random.default_rng(derive_seed(seed, "seq"))  # reprolint: disable=RNG010
    lpns = list(range(start, logical_pages, pages_per_request))
    times = arrivals.times(len(lpns), rng)
    return [
        Request(
            time_us=float(t),
            op=OpKind.WRITE,
            lpn=lpn,
            pages=min(pages_per_request, logical_pages - lpn),
        )
        for lpn, t in zip(lpns, times)
    ]


def uniform_random_writes(
    logical_pages: int,
    count: int,
    *,
    pages_per_request: int = 1,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Uniformly random single/multi-page overwrites."""
    rng = np.random.default_rng(derive_seed(seed, "uniform"))
    top = max(1, logical_pages - pages_per_request + 1)
    lpns = rng.integers(0, top, size=count)
    times = arrivals.times(count, rng)
    return [
        Request(time_us=float(t), op=OpKind.WRITE, lpn=int(lpn), pages=pages_per_request)
        for lpn, t in zip(lpns, times)
    ]


def zipf_writes(
    logical_pages: int,
    count: int,
    *,
    theta: float = 1.2,
    pages_per_request: int = 1,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Zipf-skewed overwrites: a small hot set absorbs most writes."""
    if theta <= 1.0:
        raise ValueError("theta must be > 1 for numpy's zipf")
    rng = np.random.default_rng(derive_seed(seed, "zipf"))
    ranks = rng.zipf(theta, size=count)
    # Map ranks onto the logical space via a seeded permutation so the hot
    # pages are scattered, not clustered at lpn 0.
    permutation = rng.permutation(logical_pages)
    lpns = permutation[(ranks - 1) % logical_pages]
    times = arrivals.times(count, rng)
    top = max(1, logical_pages - pages_per_request + 1)
    return [
        Request(
            time_us=float(t),
            op=OpKind.WRITE,
            lpn=int(min(lpn, top - 1)),
            pages=pages_per_request,
        )
        for lpn, t in zip(lpns, times)
    ]


def mixed_read_write(
    logical_pages: int,
    count: int,
    *,
    read_fraction: float = 0.5,
    pages_per_request: int = 1,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Interleaved uniform reads and writes.

    Reads only target pages already written within this workload, so a
    replay never reads unmapped space.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = np.random.default_rng(derive_seed(seed, "mixed"))
    times = arrivals.times(count, rng)
    top = max(1, logical_pages - pages_per_request + 1)
    written: List[int] = []
    requests: List[Request] = []
    for t in times:
        if written and rng.random() < read_fraction:
            lpn = written[int(rng.integers(len(written)))]
            op = OpKind.READ
        else:
            lpn = int(rng.integers(0, top))
            written.append(lpn)
            op = OpKind.WRITE
        requests.append(
            Request(time_us=float(t), op=op, lpn=lpn, pages=pages_per_request)
        )
    return requests


def hot_cold_writes(
    logical_pages: int,
    count: int,
    *,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Classic hot/cold overwrite mix: GC's worst enemy.

    ``hot_fraction`` of the space receives ``hot_probability`` of the
    writes; the rest is cold.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError("hot_probability must be in [0, 1]")
    rng = np.random.default_rng(derive_seed(seed, "hotcold"))
    hot_pages = max(1, int(logical_pages * hot_fraction))
    times = arrivals.times(count, rng)
    requests: List[Request] = []
    for t in times:
        if rng.random() < hot_probability:
            lpn = int(rng.integers(0, hot_pages))
        else:
            lpn = int(rng.integers(hot_pages, logical_pages))
        requests.append(Request(time_us=float(t), op=OpKind.WRITE, lpn=lpn))
    return requests


def small_large_mix(
    logical_pages: int,
    count: int,
    *,
    small_fraction: float = 0.7,
    small_pages: int = 1,
    large_pages: int = 32,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """Small random writes mixed with large sequential batches.

    The workload Section V-D's superpage steering targets: small random
    data vs large batch data.
    """
    rng = np.random.default_rng(derive_seed(seed, "smalllarge"))
    times = arrivals.times(count, rng)
    requests: List[Request] = []
    cursor = 0
    for t in times:
        if rng.random() < small_fraction:
            lpn = int(rng.integers(0, max(1, logical_pages - small_pages + 1)))
            requests.append(
                Request(time_us=float(t), op=OpKind.WRITE, lpn=lpn, pages=small_pages)
            )
        else:
            if cursor + large_pages > logical_pages:
                cursor = 0
            requests.append(
                Request(time_us=float(t), op=OpKind.WRITE, lpn=cursor, pages=large_pages)
            )
            cursor += large_pages
    return requests
