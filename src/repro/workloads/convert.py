"""Block-trace conversion: MSR-Cambridge-style CSV -> page requests.

Production block traces are the natural input for the end-to-end
experiments; the widely-used MSR Cambridge format is

    timestamp,hostname,disknum,type,offset,size,latency

with a Windows filetime timestamp (100 ns ticks), byte offset/size, and
``Read``/``Write`` type.  :func:`convert_msr_line` maps one record onto our
page-granular :class:`Request`; :func:`convert_msr_trace` converts a whole
file, clamping to a logical-space size and optionally compressing the time
axis (traces are hours long; simulations usually want minutes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.workloads.model import OpKind, Request
from repro.workloads.trace import TraceFormatError

PathLike = Union[str, Path]

#: Windows filetime tick = 100 ns = 0.1 µs
FILETIME_TICK_US = 0.1


def convert_msr_line(
    line: str,
    page_bytes: int,
    line_number: int = 0,
    time_origin_ticks: Optional[int] = None,
) -> Request:
    """Convert one MSR record to a page-granular request."""
    fields = [field.strip() for field in line.split(",")]
    if len(fields) < 6:
        raise TraceFormatError(
            f"line {line_number}: expected >=6 MSR fields, got {len(fields)}"
        )
    try:
        ticks = int(fields[0])
        op_name = fields[3].upper()
        offset = int(fields[4])
        size = int(fields[5])
    except ValueError as error:
        raise TraceFormatError(f"line {line_number}: {error}") from error
    if op_name.startswith("R"):
        op = OpKind.READ
    elif op_name.startswith("W"):
        op = OpKind.WRITE
    else:
        raise TraceFormatError(f"line {line_number}: unknown MSR op {fields[3]!r}")
    if offset < 0 or size <= 0:
        raise TraceFormatError(f"line {line_number}: bad offset/size {offset}/{size}")
    if page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    origin = time_origin_ticks if time_origin_ticks is not None else ticks
    time_us = max(0.0, (ticks - origin) * FILETIME_TICK_US)
    lpn = offset // page_bytes
    end = (offset + size - 1) // page_bytes
    return Request(time_us=time_us, op=op, lpn=lpn, pages=end - lpn + 1)


def iter_msr_trace(
    path: PathLike,
    page_bytes: int,
    time_scale: float = 1.0,
) -> Iterator[Request]:
    """Stream-convert an MSR CSV file.

    ``time_scale`` compresses (<1) or stretches (>1) inter-arrival times.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    origin: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if origin is None:
                origin = int(line.split(",", 1)[0])
            request = convert_msr_line(line, page_bytes, line_number, origin)
            yield Request(
                time_us=request.time_us * time_scale,
                op=request.op,
                lpn=request.lpn,
                pages=request.pages,
            )


def convert_msr_trace(
    path: PathLike,
    page_bytes: int,
    logical_pages: Optional[int] = None,
    time_scale: float = 1.0,
    modulo_fold: bool = True,
) -> List[Request]:
    """Convert a whole MSR file into page requests.

    With ``logical_pages`` set, requests are fitted to the simulated drive:
    ``modulo_fold`` wraps out-of-range addresses around the logical space
    (keeping the access *pattern* at full intensity on a smaller drive);
    otherwise out-of-range requests are dropped.
    """
    requests: List[Request] = []
    for request in iter_msr_trace(path, page_bytes, time_scale):
        if logical_pages is not None:
            if request.lpn >= logical_pages or request.end_lpn >= logical_pages:
                if not modulo_fold:
                    continue
                lpn = request.lpn % logical_pages
                pages = min(request.pages, logical_pages - lpn)
                request = Request(
                    time_us=request.time_us, op=request.op, lpn=lpn, pages=pages
                )
        requests.append(request)
    return requests
