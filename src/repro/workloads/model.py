"""Host request model."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List


class OpKind(Enum):
    READ = "R"
    WRITE = "W"
    TRIM = "T"

    @classmethod
    def parse(cls, token: str) -> "OpKind":
        normalized = token.strip().upper()
        for kind in cls:
            if normalized in (kind.value, kind.name):
                return kind
        raise ValueError(f"unknown op {token!r}")


@dataclass(frozen=True)
class Request:
    """One host request: op + first logical page + page count + arrival time."""

    time_us: float
    op: OpKind
    lpn: int
    pages: int = 1

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError("time_us must be >= 0")
        if self.lpn < 0:
            raise ValueError("lpn must be >= 0")
        if self.pages < 1:
            raise ValueError("pages must be >= 1")

    def lpns(self) -> Iterator[int]:
        """The logical pages this request touches, in order."""
        return iter(range(self.lpn, self.lpn + self.pages))

    @property
    def end_lpn(self) -> int:
        return self.lpn + self.pages - 1


def clamp_requests(requests: List[Request], logical_pages: int) -> List[Request]:
    """Drop or trim requests that run past the device's logical space."""
    result: List[Request] = []
    for request in requests:
        if request.lpn >= logical_pages:
            continue
        if request.end_lpn < logical_pages:
            result.append(request)
        else:
            result.append(
                Request(
                    time_us=request.time_us,
                    op=request.op,
                    lpn=request.lpn,
                    pages=logical_pages - request.lpn,
                )
            )
    return result
