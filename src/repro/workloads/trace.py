"""Trace file I/O.

A minimal line-oriented CSV format, one request per line:

    time_us,op,lpn,pages

``op`` is ``R``/``W``/``T`` (case-insensitive; full names accepted).  Lines
starting with ``#`` and blank lines are ignored.  This is deliberately close
to the common block-trace shapes (MSR Cambridge, FIU) after sector->page
conversion, so converting a real trace is a ten-line awk job.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.workloads.model import OpKind, Request

PathLike = Union[str, Path]


class TraceFormatError(Exception):
    """Malformed trace line."""


def parse_trace_line(line: str, line_number: int = 0) -> Request:
    """Parse one ``time_us,op,lpn,pages`` line."""
    fields = [field.strip() for field in line.split(",")]
    if len(fields) not in (3, 4):
        raise TraceFormatError(
            f"line {line_number}: expected 3-4 fields, got {len(fields)}: {line!r}"
        )
    try:
        time_us = float(fields[0])
        op = OpKind.parse(fields[1])
        lpn = int(fields[2])
        pages = int(fields[3]) if len(fields) == 4 else 1
    except ValueError as error:
        raise TraceFormatError(f"line {line_number}: {error}") from error
    try:
        return Request(time_us=time_us, op=op, lpn=lpn, pages=pages)
    except ValueError as error:
        raise TraceFormatError(f"line {line_number}: {error}") from error


def iter_trace(path: PathLike) -> Iterator[Request]:
    """Stream requests from a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_trace_line(line, line_number)


def load_trace(path: PathLike) -> List[Request]:
    """Read a whole trace file into memory."""
    return list(iter_trace(path))


def save_trace(path: PathLike, requests: Iterable[Request], header: str = "") -> int:
    """Write requests to a trace file; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write("# time_us,op,lpn,pages\n")
        for request in requests:
            handle.write(
                f"{request.time_us:.3f},{request.op.value},{request.lpn},{request.pages}\n"
            )
            count += 1
    return count
