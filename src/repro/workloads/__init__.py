"""Workloads: request model, synthetic generators, trace I/O, replay."""

from repro.workloads.model import OpKind, Request, clamp_requests
from repro.workloads.replay import Replayer, ReplayReport
from repro.workloads.synthetic import (
    ArrivalProcess,
    hot_cold_writes,
    mixed_read_write,
    sequential_fill,
    small_large_mix,
    uniform_random_writes,
    zipf_writes,
)
from repro.workloads.convert import (
    convert_msr_line,
    convert_msr_trace,
    iter_msr_trace,
)
from repro.workloads.trace import (
    TraceFormatError,
    iter_trace,
    load_trace,
    parse_trace_line,
    save_trace,
)

__all__ = [
    "OpKind",
    "Request",
    "clamp_requests",
    "Replayer",
    "ReplayReport",
    "ArrivalProcess",
    "sequential_fill",
    "uniform_random_writes",
    "zipf_writes",
    "mixed_read_write",
    "hot_cold_writes",
    "small_large_mix",
    "convert_msr_line",
    "convert_msr_trace",
    "iter_msr_trace",
    "TraceFormatError",
    "iter_trace",
    "load_trace",
    "parse_trace_line",
    "save_trace",
]
