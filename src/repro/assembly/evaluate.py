"""Evaluation harness for assembly methods (Tables I, II and V).

Runs an assembler over lane pools and aggregates the two metrics the paper
reports per superblock: extra program latency (summed over super word-lines)
and extra erase latency, plus the improvement percentage against a baseline
(always the random assembly in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.assembly.base import Assembler, LanePool, Superblock
from repro.utils.stats import RunningStats
from repro.utils.units import improvement_pct


@dataclass
class MethodResult:
    """Aggregated extra-latency outcome of one assembly method."""

    name: str
    extra_program_us: List[float] = field(default_factory=list)
    extra_erase_us: List[float] = field(default_factory=list)
    combinations_checked: int = 0
    pair_checks: int = 0

    @property
    def superblock_count(self) -> int:
        return len(self.extra_program_us)

    @property
    def mean_extra_program_us(self) -> float:
        stats = RunningStats()
        stats.extend(self.extra_program_us)
        return stats.mean

    @property
    def mean_extra_erase_us(self) -> float:
        stats = RunningStats()
        stats.extend(self.extra_erase_us)
        return stats.mean

    def program_improvement_vs(self, baseline: "MethodResult") -> float:
        """Table I's "Imp. %": reduction of mean extra program latency."""
        return improvement_pct(
            baseline.mean_extra_program_us, self.mean_extra_program_us
        )

    def erase_improvement_vs(self, baseline: "MethodResult") -> float:
        return improvement_pct(baseline.mean_extra_erase_us, self.mean_extra_erase_us)

    def program_reduction_vs(self, baseline: "MethodResult") -> float:
        """Absolute reduction in µs — Table I's "PGM LTN ↓ (Avg.)" column."""
        return baseline.mean_extra_program_us - self.mean_extra_program_us


def evaluate_assembler(assembler: Assembler, pools: Sequence[LanePool]) -> MethodResult:
    """Assemble all superblocks and collect their extra latencies."""
    superblocks = assembler.assemble(pools)
    return collect_result(assembler.name, superblocks, assembler)


def collect_result(
    name: str,
    superblocks: Sequence[Superblock],
    assembler: Optional[Assembler] = None,
) -> MethodResult:
    result = MethodResult(name=name)
    for superblock in superblocks:
        result.extra_program_us.append(superblock.extra_program_latency_us)
        result.extra_erase_us.append(superblock.extra_erase_latency_us)
    if assembler is not None:
        result.combinations_checked = getattr(assembler, "combinations_checked", 0)
        result.pair_checks = getattr(assembler, "pair_checks", 0)
    return result


def compare_methods(
    assemblers: Sequence[Assembler], pools: Sequence[LanePool]
) -> Dict[str, MethodResult]:
    """Evaluate several assemblers on identical pools."""
    return {a.name: evaluate_assembler(a, pools) for a in assemblers}
