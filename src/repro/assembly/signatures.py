"""Block similarity signatures (Section IV-A, directions 5-8).

Each direction condenses a block's measured per-(layer, string) program
latencies into a comparable vector; the distance between two blocks is the
count of positions where their vectors disagree (Equation 1):

* **LWL rank** — rank all ``layers*strings`` logical word-lines by latency
  (ranks 0..383 on the paper's chip);
* **PWL rank** — rank the layers independently within each string
  (ranks 0..95 per string);
* **STR rank** — rank the strings within each layer (ranks 0..3);
* **STR median** — 1 bit per (layer, string): the fastest half of the
  strings on a layer get 0, the rest get 1.  Ties are broken "sequentially"
  (first-come), exactly as the paper's gathering process specifies.

Signatures are plain ``uint16`` numpy arrays of length ``layers*strings`` so
one ``!=``-and-sum computes Equation 1; the STR-median variant is additionally
exposed as a :class:`BitVector` for the QSTR-MED XOR path (`repro.core.eigen`
cross-checks the two representations).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

import numpy as np

from repro.characterization.datasets import BlockMeasurement
from repro.perf.profiler import perf_scope


def _stable_ranks(values: np.ndarray) -> np.ndarray:
    """Rank positions ascending by value; ties keep original order."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.uint16)
    ranks[order] = np.arange(len(values), dtype=np.uint16)
    return ranks


def lwl_rank_signature(measurement: BlockMeasurement) -> np.ndarray:
    """Ranks of all logical word-lines by program latency (direction 5)."""
    flat = measurement.lwl_latencies()
    return _stable_ranks(flat)


def pwl_rank_signature(measurement: BlockMeasurement) -> np.ndarray:
    """Per-string ranks of the physical word-line layers (direction 6).

    Entry order matches programming order (layer-major, string minor) so the
    vector aligns position-wise with the other signatures.
    """
    matrix = measurement.wl_latencies_us  # (layers, strings)
    layers, strings = matrix.shape
    order = np.argsort(matrix, axis=0, kind="stable")
    signature = np.empty((layers, strings), dtype=np.uint16)
    np.put_along_axis(
        signature, order, np.arange(layers, dtype=np.uint16)[:, None], axis=0
    )
    return signature.reshape(-1)


def str_rank_signature(measurement: BlockMeasurement) -> np.ndarray:
    """Per-layer ranks of the strings (direction 7): values 0..strings-1."""
    matrix = measurement.wl_latencies_us
    layers, strings = matrix.shape
    order = np.argsort(matrix, axis=1, kind="stable")
    signature = np.empty((layers, strings), dtype=np.uint16)
    np.put_along_axis(
        signature, order, np.arange(strings, dtype=np.uint16)[None, :], axis=1
    )
    return signature.reshape(-1)


def str_median_signature(measurement: BlockMeasurement) -> np.ndarray:
    """Per-layer speed bits (direction 8): fastest half of strings -> 0.

    With four strings, the two fastest get bit 0 and the two slowest bit 1;
    ties are resolved first-come (lower string index wins a fast slot).
    """
    matrix = measurement.wl_latencies_us
    layers, strings = matrix.shape
    fast_slots = strings // 2
    order = np.argsort(matrix, axis=1, kind="stable")
    signature = np.ones((layers, strings), dtype=np.uint16)
    np.put_along_axis(
        signature, order[:, :fast_slots], np.uint16(0), axis=1
    )
    return signature.reshape(-1)


SIGNATURE_BUILDERS: Dict[str, Callable[[BlockMeasurement], np.ndarray]] = {
    "lwl_rank": lwl_rank_signature,
    "pwl_rank": pwl_rank_signature,
    "str_rank": str_rank_signature,
    "str_median": str_median_signature,
}


def signature_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Equation 1 for one block pair: positions where the signatures differ."""
    if a.shape != b.shape:
        raise ValueError(f"signature shapes disagree: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


class SignatureCache:
    """Memoizes signatures per measurement (keyed by identity)."""

    def __init__(self, builder: Callable[[BlockMeasurement], np.ndarray]) -> None:
        self._builder = builder
        self._cache: Dict[int, np.ndarray] = {}

    def get(self, measurement: BlockMeasurement) -> np.ndarray:
        key = id(measurement)
        cached = self._cache.get(key)
        if cached is None:
            # Only the miss path is profiled: the kernels themselves stay
            # pure (they are baselined VEC001 / vector-worklist entries).
            with perf_scope("assembly.signatures"):
                cached = self._builder(measurement)
            cached.setflags(write=False)
            self._cache[key] = cached
        return cached

    def stack(self, measurements: Iterable[BlockMeasurement]) -> np.ndarray:
        """Signatures of several measurements stacked as ``(k, L)``."""
        return np.stack([self.get(m) for m in measurements])
