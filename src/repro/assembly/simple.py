"""The non-search assembly directions: random, sequential, latency sorts.

* **Random** (the paper's baseline): pools are shuffled independently and
  zipped — whatever blocks happen to line up form a superblock.
* **Sequential** (direction 1; what "modern SSDs" commonly ship): blocks
  with the same sequence number on different chips are grouped, banking on
  wafer-level spatial similarity.
* **Erase-latency sort** (direction 2): each pool sorted by tBERS, paired
  fast-with-fast.
* **Program-latency sort** (direction 3): each pool sorted by block program
  latency (sum of its word-line tPROG), paired fast-with-fast.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.assembly.base import LanePool, ZipAssembler
from repro.characterization.datasets import BlockMeasurement
from repro.utils.rng import derive_seed


class RandomAssembler(ZipAssembler):
    """Baseline: uniformly random pairing across lanes."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def order_pool(self, pool: LanePool) -> List[BlockMeasurement]:
        rng = np.random.default_rng(
            derive_seed(self._seed, "assembly", "random", pool.lane)
        )
        order = rng.permutation(len(pool.blocks))
        return [pool.blocks[i] for i in order]


class SequentialAssembler(ZipAssembler):
    """Direction 1: group blocks with the same sequence (block) number."""

    name = "sequential"

    def order_pool(self, pool: LanePool) -> List[BlockMeasurement]:
        return pool.sorted_by(lambda m: (m.plane, m.block))


class ErsLatencyAssembler(ZipAssembler):
    """Direction 2: pair blocks by erase-latency order (fast with fast)."""

    name = "ers_ltn"

    def order_pool(self, pool: LanePool) -> List[BlockMeasurement]:
        return pool.sorted_by(lambda m: m.erase_latency_us)


class PgmLatencyAssembler(ZipAssembler):
    """Direction 3: pair blocks by block-program-latency order."""

    name = "pgm_ltn"

    def order_pool(self, pool: LanePool) -> List[BlockMeasurement]:
        return pool.sorted_by(lambda m: m.program_total_us)
