"""Direction 4: brute-force local-optimal assembly.

Within each aligned window of ``W`` program-latency-sorted candidates per
lane, find a partition into ``W`` superblocks with minimal total *measured*
extra program latency.  Exact minimization is a multi-dimensional assignment
problem, so — like the paper's "local optimal" — we approximate it: greedy
exhaustive selection (every remaining combination is scored each round,
``W**lanes`` checks for the first superblock of a window) followed by
2-opt refinement (member swaps between the window's superblocks until no
swap lowers the total).  Impractical on a real controller — the paper counts
1,638,400 combination checks for W=8 over four chips per P/E epoch — but it
is the ground reference every practical method is judged against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.assembly.base import Superblock, WindowedAssembler
from repro.characterization.datasets import BlockMeasurement


def _extra_of(stack: np.ndarray) -> float:
    """Extra program latency of member latency rows stacked as (k, L)."""
    return float((stack.max(axis=0) - stack.min(axis=0)).sum())


class OptimalAssembler(WindowedAssembler):
    """Exhaustive window search minimizing measured extra program latency."""

    name = "optimal"

    def __init__(self, window: int = 8, refine_passes: int = 4) -> None:
        super().__init__(window)
        if refine_passes < 0:
            raise ValueError("refine_passes must be >= 0")
        self.refine_passes = refine_passes
        self.name = f"optimal({window})"

    # -- greedy exhaustive pick (one superblock) ----------------------------

    def choose(self, windows: Sequence[Sequence[BlockMeasurement]]) -> Tuple[int, ...]:
        lanes = len(windows)
        if lanes < 2:
            raise ValueError("optimal assembly needs at least two lanes")
        stacks = [
            np.stack([m.lwl_latencies() for m in window]) for window in windows
        ]  # each (Wi, L)
        sizes = [stack.shape[0] for stack in stacks]
        self.combinations_checked += int(np.prod(sizes))

        # Chunk over the first lane so the broadcast grid over the remaining
        # lanes stays modest (W^(n-1) x L floats).
        rest_shape = tuple(sizes[1:])
        expanded = []
        for lane_idx in range(1, lanes):
            shape = [1] * (lanes - 1)
            shape[lane_idx - 1] = sizes[lane_idx]
            expanded.append(stacks[lane_idx].reshape(*shape, -1))
        rest_max = expanded[0]
        rest_min = expanded[0]
        for array in expanded[1:]:
            rest_max = np.maximum(rest_max, array)
            rest_min = np.minimum(rest_min, array)

        best_value = np.inf
        best_picks: Tuple[int, ...] = (0,) * lanes
        for i0 in range(sizes[0]):
            first = stacks[0][i0]
            gaps = np.maximum(rest_max, first) - np.minimum(rest_min, first)
            totals = gaps.sum(axis=-1)  # shape rest_shape
            flat = int(np.argmin(totals))
            value = float(totals.flat[flat])
            if value < best_value:
                best_value = value
                best_picks = (i0,) + tuple(
                    int(p) for p in np.unravel_index(flat, rest_shape)
                )
        return best_picks

    # -- window assembly with 2-opt refinement ----------------------------------

    def assemble_window(
        self, windows: Sequence[List[BlockMeasurement]], lanes: Tuple[int, ...]
    ) -> List[Superblock]:
        superblocks = super().assemble_window(windows, lanes)
        if len(superblocks) < 2 or self.refine_passes == 0:
            return superblocks

        # assignment[lane][sb] = the member measurement; refine by swapping
        # two superblocks' members on one lane when that lowers total extra.
        count = len(superblocks)
        lane_count = len(lanes)
        members = [[sb.members[l] for sb in superblocks] for l in range(lane_count)]
        stacks = [
            [m.lwl_latencies() for m in members[l]] for l in range(lane_count)
        ]
        extras = [
            _extra_of(np.stack([stacks[l][s] for l in range(lane_count)]))
            for s in range(count)
        ]

        for _ in range(self.refine_passes):
            improved = False
            for lane in range(lane_count):
                for a in range(count):
                    for b in range(a + 1, count):
                        rows_a = [stacks[l][a] for l in range(lane_count)]
                        rows_b = [stacks[l][b] for l in range(lane_count)]
                        swapped_a = list(rows_a)
                        swapped_b = list(rows_b)
                        swapped_a[lane], swapped_b[lane] = rows_b[lane], rows_a[lane]
                        new_a = _extra_of(np.stack(swapped_a))
                        new_b = _extra_of(np.stack(swapped_b))
                        self.combinations_checked += 2
                        if new_a + new_b + 1e-9 < extras[a] + extras[b]:
                            members[lane][a], members[lane][b] = (
                                members[lane][b],
                                members[lane][a],
                            )
                            stacks[lane][a], stacks[lane][b] = (
                                stacks[lane][b],
                                stacks[lane][a],
                            )
                            extras[a], extras[b] = new_a, new_b
                            improved = True
            if not improved:
                break

        return [
            Superblock(
                members=tuple(members[l][s] for l in range(lane_count)), lanes=lanes
            )
            for s in range(count)
        ]
