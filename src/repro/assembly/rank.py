"""Directions 5-8: rank/eigen signature window search.

All four share the frame of :class:`WindowedAssembler` and Equation 1's
distance (positions where two blocks' signatures disagree, summed over every
lane pair of a candidate combination); they differ only in the signature.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.assembly.base import (
    WindowedAssembler,
    min_total_distance_combo,
    pairwise_signature_distances,
)
from repro.assembly.signatures import (
    SignatureCache,
    lwl_rank_signature,
    pwl_rank_signature,
    str_median_signature,
    str_rank_signature,
)
from repro.characterization.datasets import BlockMeasurement


class RankWindowAssembler(WindowedAssembler):
    """Window search minimizing summed pairwise signature distance."""

    def __init__(
        self,
        window: int,
        builder: Callable[[BlockMeasurement], np.ndarray],
    ) -> None:
        super().__init__(window)
        self._signatures = SignatureCache(builder)

    def choose(self, windows: Sequence[Sequence[BlockMeasurement]]) -> Tuple[int, ...]:
        lanes = len(windows)
        if lanes < 2:
            raise ValueError("rank assembly needs at least two lanes")
        stacks = [self._signatures.stack(window) for window in windows]
        matrices: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(lanes):
            for j in range(i + 1, lanes):
                matrices[(i, j)] = pairwise_signature_distances(stacks[i], stacks[j])
                self.pair_checks += stacks[i].shape[0] * stacks[j].shape[0]
        picks, _, combos = min_total_distance_combo(
            matrices, [stack.shape[0] for stack in stacks]
        )
        self.combinations_checked += combos
        return picks


class LwlRankAssembler(RankWindowAssembler):
    """Direction 5: full logical-word-line rank vectors."""

    name = "lwl_rank"

    def __init__(self, window: int = 8) -> None:
        super().__init__(window, lwl_rank_signature)
        self.name = f"lwl_rank({window})"


class PwlRankAssembler(RankWindowAssembler):
    """Direction 6: per-string physical-word-line rank vectors."""

    name = "pwl_rank"

    def __init__(self, window: int = 8) -> None:
        super().__init__(window, pwl_rank_signature)
        self.name = f"pwl_rank({window})"


class StrRankAssembler(RankWindowAssembler):
    """Direction 7: per-layer string rank vectors."""

    name = "str_rank"

    def __init__(self, window: int = 8) -> None:
        super().__init__(window, str_rank_signature)
        self.name = f"str_rank({window})"


class StrMedianAssembler(RankWindowAssembler):
    """Direction 8: 1-bit-per-(layer, string) speed-class signatures.

    The distance reduces to popcount(a XOR b); this is the scheme QSTR-MED
    (``repro.core``) makes practical by dropping the all-combinations search.
    """

    name = "str_med"

    def __init__(self, window: int = 4) -> None:
        super().__init__(window, str_median_signature)
        self.name = f"str_med({window})"
