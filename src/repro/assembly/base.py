"""Superblock assembly abstractions.

The characterization study (Section IV) treats assembly as an *offline*
problem: given, for each of N lanes (distinct chips), a pool of measured
blocks, partition the pools into superblocks of one block per lane so that
the summed extra latency is small.  :class:`Assembler` is the interface all
eight directions implement; :class:`WindowedAssembler` factors the shared
machinery of the window-search methods (OPTIMAL / LWL-RANK / PWL-RANK /
STR-RANK / STR-MED): sort every pool by block program latency first
(Figure 7, step 1), then pick one combination out of each aligned window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.characterization.datasets import BlockMeasurement
from repro.characterization.extra_latency import (
    extra_erase_latency,
    extra_program_latency,
    superblock_erase_completion,
    superblock_program_completion,
)


@dataclass(frozen=True)
class Superblock:
    """One assembled superblock: one measured block per lane."""

    members: Tuple[BlockMeasurement, ...]
    lanes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.members) != len(self.lanes):
            raise ValueError("members and lanes must align")
        if len(set(self.lanes)) != len(self.lanes):
            raise ValueError("a superblock takes at most one block per lane")

    @property
    def extra_program_latency_us(self) -> float:
        return extra_program_latency(self.members)

    @property
    def extra_erase_latency_us(self) -> float:
        return extra_erase_latency(self.members)

    @property
    def program_completion_us(self) -> float:
        return superblock_program_completion(self.members)

    @property
    def erase_completion_us(self) -> float:
        return superblock_erase_completion(self.members)

    def member_keys(self) -> List[Tuple[int, int, int]]:
        return [m.key() for m in self.members]


@dataclass
class LanePool:
    """The free blocks one lane (chip) contributes to assembly."""

    lane: int
    blocks: List[BlockMeasurement] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.blocks)

    def sorted_by(
        self, key: Callable[[BlockMeasurement], Any]
    ) -> List[BlockMeasurement]:
        return sorted(self.blocks, key=key)


def check_pools(pools: Sequence[LanePool]) -> int:
    """Validate pools and return the number of superblocks they can form."""
    if len(pools) < 2:
        raise ValueError("assembly needs at least two lanes")
    lanes = [pool.lane for pool in pools]
    if len(set(lanes)) != len(lanes):
        raise ValueError(f"duplicate lane ids: {lanes}")
    sizes = [len(pool) for pool in pools]
    if min(sizes) == 0:
        raise ValueError("every lane pool must be non-empty")
    return min(sizes)


class Assembler(ABC):
    """A superblock organization policy."""

    #: short method name used in tables and the registry
    name: str = "abstract"

    @abstractmethod
    def assemble(self, pools: Sequence[LanePool]) -> List[Superblock]:
        """Partition the pools into superblocks (one block per lane each)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ZipAssembler(Assembler):
    """Assemble by ordering each pool independently and zipping positions.

    Subclasses provide the per-lane ordering (random shuffle, block number,
    erase latency, program latency).
    """

    @abstractmethod
    def order_pool(self, pool: LanePool) -> List[BlockMeasurement]:
        """The pool's blocks in pairing order."""

    def assemble(self, pools: Sequence[LanePool]) -> List[Superblock]:
        count = check_pools(pools)
        ordered = [self.order_pool(pool) for pool in pools]
        lanes = tuple(pool.lane for pool in pools)
        return [
            Superblock(
                members=tuple(ordered[lane_idx][i] for lane_idx in range(len(pools))),
                lanes=lanes,
            )
            for i in range(count)
        ]


class WindowedAssembler(Assembler):
    """Shared frame of the window-search directions.

    Pools are sorted ascending by block program latency and walked in
    *aligned windows* of ``window`` blocks per lane.  Within one window the
    assembler repeatedly asks the subclass to pick the best remaining
    combination (one index per lane), consumes those blocks, and moves to
    the next window once the current one is exhausted — so a window of W
    yields W superblocks before the frame advances.

    Keeping windows disjoint is what makes the *local* search well-behaved:
    a greedy picker can only defer an awkward block to the end of its own
    window, never indefinitely, so pools stay aligned across the whole run.

    Subclasses see only measured data (never the generative model).
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        #: number of candidate-combination evaluations performed (overhead metric)
        self.combinations_checked = 0
        #: number of pairwise distance computations performed (overhead metric)
        self.pair_checks = 0

    @abstractmethod
    def choose(self, windows: Sequence[Sequence[BlockMeasurement]]) -> Tuple[int, ...]:
        """Pick one index per lane from the current window candidates."""

    def assemble_window(
        self, windows: Sequence[List[BlockMeasurement]], lanes: Tuple[int, ...]
    ) -> List[Superblock]:
        """Assemble one aligned window completely (``len(windows[0])`` SBs).

        Subclasses may override to do a joint optimization over the whole
        window (see :class:`~repro.assembly.optimal.OptimalAssembler`); the
        default repeatedly applies :meth:`choose` to the shrinking window.
        """
        remaining = [list(window) for window in windows]
        result: List[Superblock] = []
        for _ in range(len(windows[0])):
            picks = self.choose(remaining)
            if len(picks) != len(remaining):
                raise ValueError("choose() must return one index per lane")
            members = []
            for lane_idx, pick in enumerate(picks):
                if not 0 <= pick < len(remaining[lane_idx]):
                    raise IndexError(
                        f"lane {lane_idx}: pick {pick} outside window of "
                        f"{len(remaining[lane_idx])}"
                    )
                members.append(remaining[lane_idx].pop(pick))
            result.append(Superblock(members=tuple(members), lanes=lanes))
        return result

    def assemble(self, pools: Sequence[LanePool]) -> List[Superblock]:
        count = check_pools(pools)
        sorted_pools = [pool.sorted_by(lambda m: m.program_total_us) for pool in pools]
        lanes = tuple(pool.lane for pool in pools)
        result: List[Superblock] = []
        position = 0
        while position < count:
            width = min(self.window, count - position)
            windows = [blocks[position : position + width] for blocks in sorted_pools]
            result.extend(self.assemble_window(windows, lanes))
            position += width
        return result


def pairwise_signature_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distance matrix between two signature stacks.

    ``a`` is ``(Wa, L)``, ``b`` is ``(Wb, L)``; entry (i, j) counts positions
    where the signatures disagree — Equation 1's SIM sum for one block pair.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"signature shapes disagree: {a.shape} vs {b.shape}")
    return (a[:, None, :] != b[None, :, :]).sum(axis=2)


def min_total_distance_combo(
    distance_matrices: Dict[Tuple[int, int], np.ndarray],
    window_sizes: Sequence[int],
) -> Tuple[Tuple[int, ...], float, int]:
    """Exhaustively pick the combination minimizing summed pairwise distance.

    ``distance_matrices[(i, j)]`` (i < j) holds the (Wi, Wj) distance matrix
    between lanes i and j.  Returns ``(picks, best_distance, n_combos)``.
    """
    n = len(window_sizes)
    shape = tuple(window_sizes)
    total = np.zeros(shape)
    for (i, j), matrix in distance_matrices.items():
        if not 0 <= i < j < n:
            raise ValueError(f"bad lane pair ({i}, {j})")
        expand = [1] * n
        expand[i] = shape[i]
        expand[j] = shape[j]
        total = total + matrix.reshape(expand)
    flat_index = int(np.argmin(total))
    picks = np.unravel_index(flat_index, shape)
    return tuple(int(p) for p in picks), float(total.flat[flat_index]), int(total.size)
