"""Superblock assembly: the eight organization directions of Section IV.

The registry maps the paper's method names to constructors so benches and
examples can spell out exactly the rows of Tables I/II/V.
"""

from typing import Callable, Dict

from repro.assembly.base import (
    Assembler,
    LanePool,
    Superblock,
    WindowedAssembler,
    ZipAssembler,
    check_pools,
    min_total_distance_combo,
    pairwise_signature_distances,
)
from repro.assembly.evaluate import (
    MethodResult,
    collect_result,
    compare_methods,
    evaluate_assembler,
)
from repro.assembly.optimal import OptimalAssembler
from repro.assembly.pools import build_lane_pools
from repro.assembly.rank import (
    LwlRankAssembler,
    PwlRankAssembler,
    RankWindowAssembler,
    StrMedianAssembler,
    StrRankAssembler,
)
from repro.assembly.signatures import (
    SIGNATURE_BUILDERS,
    SignatureCache,
    lwl_rank_signature,
    pwl_rank_signature,
    signature_distance,
    str_median_signature,
    str_rank_signature,
)
from repro.assembly.simple import (
    ErsLatencyAssembler,
    PgmLatencyAssembler,
    RandomAssembler,
    SequentialAssembler,
)

#: Constructors for every direction, keyed by the paper's method names.
METHOD_REGISTRY: Dict[str, Callable[[], Assembler]] = {
    "RANDOM": lambda: RandomAssembler(),
    "SEQUENTIAL": lambda: SequentialAssembler(),
    "ERS-LTN": lambda: ErsLatencyAssembler(),
    "PGM-LTN": lambda: PgmLatencyAssembler(),
    "OPTIMAL(8)": lambda: OptimalAssembler(8),
    "LWL-RANK(8)": lambda: LwlRankAssembler(8),
    "PWL-RANK(8)": lambda: PwlRankAssembler(8),
    "STR-RANK(8)": lambda: StrRankAssembler(8),
    "STR-MED(4)": lambda: StrMedianAssembler(4),
}

__all__ = [
    "Assembler",
    "ZipAssembler",
    "WindowedAssembler",
    "LanePool",
    "Superblock",
    "check_pools",
    "pairwise_signature_distances",
    "min_total_distance_combo",
    "MethodResult",
    "evaluate_assembler",
    "collect_result",
    "compare_methods",
    "OptimalAssembler",
    "build_lane_pools",
    "RankWindowAssembler",
    "LwlRankAssembler",
    "PwlRankAssembler",
    "StrRankAssembler",
    "StrMedianAssembler",
    "SIGNATURE_BUILDERS",
    "SignatureCache",
    "lwl_rank_signature",
    "pwl_rank_signature",
    "str_rank_signature",
    "str_median_signature",
    "signature_distance",
    "RandomAssembler",
    "SequentialAssembler",
    "ErsLatencyAssembler",
    "PgmLatencyAssembler",
    "METHOD_REGISTRY",
]
