"""Building lane pools from probed chips.

Bridges the characterization harness to the assembly study: each lane is one
chip; its pool holds the measured blocks the assembler may group.  Mirrors
the paper's setup of four chips contributing 400 blocks each per P/E epoch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.assembly.base import LanePool
from repro.characterization.prober import Prober
from repro.nand.chip import FlashChip
from repro.nand.errors import EnduranceExceededError


def build_lane_pools(
    chips: Sequence[FlashChip],
    blocks: Sequence[int],
    *,
    planes: Sequence[int] = (0,),
    target_pe: Optional[int] = None,
) -> List[LanePool]:
    """Probe ``blocks`` on each chip (one lane per chip) and pool the results.

    Bad / worn-out blocks are skipped, so pools may end up slightly uneven;
    assemblers consume ``min(len(pool))`` superblocks.
    """
    if len(chips) < 2:
        raise ValueError("need at least two chips (lanes)")
    pools: List[LanePool] = []
    for lane, chip in enumerate(chips):
        prober = Prober(chip)
        pool = LanePool(lane=lane)
        for plane in planes:
            for block in blocks:
                if chip.is_bad(plane, block):
                    continue
                try:
                    if target_pe is not None:
                        measurement = prober.probe_block_at_pe(plane, block, target_pe)
                    else:
                        measurement = prober.probe_block(plane, block)
                except EnduranceExceededError:
                    continue
                pool.blocks.append(measurement)
        pools.append(pool)
    return pools
