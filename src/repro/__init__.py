"""repro — reproduction of "Are Superpages Super-fast?" (HPCA 2024).

Process-variation-aware superblock organization for SSDs: the QSTR-MED
scheme (eigen-sequence similarity check, on-demand fast/slow superblock
assembly, function-based data placement), the eight assembly directions it
was distilled from, and the full substrate needed to evaluate them — a
generative 3D-NAND process-variation model, a characterization harness, a
superblock FTL with GC, an SSD timing layer, and workload generators.

Quickstart::

    from repro import (
        PAPER_GEOMETRY, VariationModel, VariationParams, FlashChip,
        build_lane_pools, RandomAssembler, QstrMedAssembler, evaluate_assembler,
    )

    model = VariationModel(PAPER_GEOMETRY, VariationParams(), seed=2024)
    chips = [FlashChip(model.chip_profile(c), PAPER_GEOMETRY) for c in range(4)]
    pools = build_lane_pools(chips, range(100))
    baseline = evaluate_assembler(RandomAssembler(seed=1), pools)
    qstr = evaluate_assembler(QstrMedAssembler(4), pools)
    print(qstr.program_improvement_vs(baseline))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.assembly import (
    METHOD_REGISTRY,
    ErsLatencyAssembler,
    LanePool,
    LwlRankAssembler,
    MethodResult,
    OptimalAssembler,
    PgmLatencyAssembler,
    PwlRankAssembler,
    RandomAssembler,
    SequentialAssembler,
    StrMedianAssembler,
    StrRankAssembler,
    Superblock,
    build_lane_pools,
    evaluate_assembler,
)
from repro.characterization import (
    BlockMeasurement,
    MeasurementSet,
    ProbePlan,
    Prober,
    extra_erase_latency,
    extra_program_latency,
    probe_testbed,
)
from repro.core import (
    BlockRecord,
    FootprintModel,
    GatheringUnit,
    OnDemandAssembler,
    PlacementPolicy,
    QstrMedAssembler,
    QstrMedScheme,
    SpeedClass,
    WriteIntent,
    WriteSource,
    eigen_sequence,
    overhead_reduction_pct,
    qstr_med_pair_checks,
    str_med_pair_checks,
)
from repro.ftl import Ftl, FtlConfig
from repro.nand import (
    PAPER_GEOMETRY,
    SMALL_GEOMETRY,
    FlashChip,
    NandGeometry,
    PageType,
    VariationModel,
    VariationParams,
    build_paper_testbed,
    testbed_chips,
)
from repro.obs import (
    NULL_TRACER,
    LatencyHistogram,
    LatencyStat,
    MetricsRegistry,
    Tracer,
    TraceSummary,
)
from repro.ssd import Ssd, TimingConfig
from repro.workloads import (
    OpKind,
    Replayer,
    Request,
    hot_cold_writes,
    load_trace,
    mixed_read_write,
    save_trace,
    sequential_fill,
    uniform_random_writes,
    zipf_writes,
)

__version__ = "1.0.0"

__all__ = [
    # nand
    "NandGeometry",
    "PageType",
    "PAPER_GEOMETRY",
    "SMALL_GEOMETRY",
    "FlashChip",
    "VariationModel",
    "VariationParams",
    "build_paper_testbed",
    "testbed_chips",
    # characterization
    "Prober",
    "ProbePlan",
    "probe_testbed",
    "BlockMeasurement",
    "MeasurementSet",
    "extra_program_latency",
    "extra_erase_latency",
    # assembly
    "LanePool",
    "Superblock",
    "build_lane_pools",
    "evaluate_assembler",
    "MethodResult",
    "METHOD_REGISTRY",
    "RandomAssembler",
    "SequentialAssembler",
    "ErsLatencyAssembler",
    "PgmLatencyAssembler",
    "OptimalAssembler",
    "LwlRankAssembler",
    "PwlRankAssembler",
    "StrRankAssembler",
    "StrMedianAssembler",
    # core
    "QstrMedScheme",
    "QstrMedAssembler",
    "OnDemandAssembler",
    "GatheringUnit",
    "BlockRecord",
    "SpeedClass",
    "PlacementPolicy",
    "WriteIntent",
    "WriteSource",
    "eigen_sequence",
    "FootprintModel",
    "str_med_pair_checks",
    "qstr_med_pair_checks",
    "overhead_reduction_pct",
    # ftl / ssd
    "Ftl",
    "FtlConfig",
    "Ssd",
    "TimingConfig",
    # obs
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "LatencyHistogram",
    "LatencyStat",
    "TraceSummary",
    # workloads
    "Request",
    "OpKind",
    "Replayer",
    "sequential_fill",
    "uniform_random_writes",
    "zipf_writes",
    "mixed_read_write",
    "hot_cold_writes",
    "load_trace",
    "save_trace",
    "__version__",
]
