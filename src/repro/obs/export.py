"""Trace exporters: canonical JSONL and Chrome ``trace_event`` JSON.

The JSONL form is the archival one — one canonically serialized event per
line (sorted keys, fixed separators, no wall-clock fields), so identical
runs produce byte-identical files and a plain ``diff`` is a determinism
check.  The Chrome form loads directly into Perfetto / ``chrome://tracing``:
spans become complete (``X``) events, attribution records instant (``i``)
events, counters ``C`` events, and each ``track`` becomes a named thread.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.tracer import TraceEvent
from repro.perf.profiler import profiled

_JSON_SEPARATORS = (",", ":")


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """The JSONL row of one event (plain data, stable field set)."""
    return {
        "ph": event.ph,
        "name": event.name,
        "cat": event.cat,
        "ts_us": event.ts_us,
        "dur_us": event.dur_us,
        "track": event.track,
        "seq": event.seq,
        "args": dict(event.args),
    }


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Canonical JSONL: one sorted-keys JSON object per line."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True, separators=_JSON_SEPARATORS)
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


@profiled("obs.export")
def write_jsonl(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Write the JSONL log; returns the number of events written."""
    text = to_jsonl(events)
    Path(path).write_text(text, encoding="utf-8")
    return text.count("\n")


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL event log back into :class:`TraceEvent` rows."""
    events: List[TraceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        events.append(
            TraceEvent(
                ph=row["ph"],
                name=row["name"],
                cat=row["cat"],
                ts_us=float(row["ts_us"]),
                dur_us=float(row["dur_us"]),
                track=row["track"],
                seq=int(row["seq"]),
                args=row.get("args", {}),
            )
        )
    return events


def to_chrome(events: Sequence[TraceEvent], pid: int = 1) -> Dict[str, Any]:
    """The Chrome ``trace_event`` document for a recorded event list.

    Events are ordered by ``(ts, seq)`` (viewers require non-decreasing
    timestamps per thread) and every distinct ``track`` gets a stable tid
    plus a ``thread_name`` metadata record.
    """
    tracks = sorted({event.track for event in events})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    rows: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tids[track],
            "args": {"name": track},
        }
        for track in tracks
    ]
    for event in sorted(events, key=lambda e: (e.ts_us, e.seq)):
        row: Dict[str, Any] = {
            "ph": event.ph,
            "name": event.name,
            "cat": event.cat,
            "ts": event.ts_us,
            "pid": pid,
            "tid": tids[event.track],
            "args": dict(event.args),
        }
        if event.ph == "X":
            row["dur"] = event.dur_us
        elif event.ph == "i":
            row["s"] = "t"  # thread-scoped instant
        rows.append(row)
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


@profiled("obs.export")
def write_chrome(
    path: Union[str, Path], events: Sequence[TraceEvent], pid: int = 1
) -> int:
    """Write the Chrome trace JSON; returns the number of trace rows."""
    document = to_chrome(events, pid)
    Path(path).write_text(
        json.dumps(document, sort_keys=True, separators=_JSON_SEPARATORS),
        encoding="utf-8",
    )
    return len(document["traceEvents"])
