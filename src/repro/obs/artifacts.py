"""Per-run measurement artifacts for benches and CI.

When ``REPRO_OBS_DIR`` is set, benches drop their summary dict (and, when
they traced, the Chrome + JSONL trace files) into that directory so CI can
upload them as build artifacts — the per-PR perf trajectory the ROADMAP
asks for.  Unset, everything is a no-op, so local bench runs stay
file-free.  The artifact content is derived purely from simulated
measurements, never from the wall clock.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.export import write_chrome, write_jsonl
from repro.obs.tracer import Tracer

ENV_VAR = "REPRO_OBS_DIR"


def artifacts_dir() -> Optional[Path]:
    """The configured artifact directory, created on first use, or None."""
    configured = os.environ.get(ENV_VAR)
    if not configured:
        return None
    path = Path(configured)
    path.mkdir(parents=True, exist_ok=True)
    return path


def export_bench_artifacts(
    name: str,
    summary: Dict[str, Union[int, float, str]],
    tracer: Optional[Tracer] = None,
) -> Optional[Path]:
    """Write ``<name>.summary.json`` (+ traces) under ``$REPRO_OBS_DIR``.

    Returns the directory written to, or ``None`` when exporting is off.
    """
    directory = artifacts_dir()
    if directory is None:
        return None
    (directory / f"{name}.summary.json").write_text(
        json.dumps(summary, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    if tracer is not None and tracer.events:
        write_chrome(directory / f"{name}.trace.json", tracer.events)
        write_jsonl(directory / f"{name}.trace.jsonl", tracer.events)
    return directory
