"""Fixed-bucket latency histograms with percentile estimation.

Mean-only accounting hides exactly what the paper cares about — the tail a
slow superblock member adds to a multi-plane command.  :class:`LatencyHistogram`
keeps a fixed, geometry-free bucket ladder (so two runs always bucket
identically and histograms merge trivially) plus exact min/max/mean via an
embedded :class:`~repro.utils.stats.RunningStats`, and estimates p50/p95/p99
by linear interpolation inside the owning bucket.  :class:`LatencyStat` is
the drop-in accumulator the FTL metrics use: one ``add()`` feeds both the
running moments and the histogram.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.stats import RunningStats

#: Default bucket upper bounds in µs: a 1-2-5 ladder from 1 µs to 10 s.
#: Flash reads sit around 10^2 µs, programs around 10^3, superpage
#: completions and GC storms reach 10^4-10^6; the ladder covers all of them
#: with ~10% relative resolution while staying a fixed, seed-independent
#: shape every run shares.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(0, 7)
    for mantissa in (1.0, 2.0, 5.0)
) + (1e7,)


class LatencyHistogram:
    """Counts per fixed bucket; quantiles interpolated within buckets.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    extra overflow bucket catches everything above the last bound.  Exact
    min/max/mean/count come from the embedded :class:`RunningStats`, so
    quantile estimates can be clamped to the truly observed range (the
    overflow bucket in particular reports the exact maximum instead of an
    invented edge).
    """

    __slots__ = ("bounds", "counts", "stats")

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> None:
        if not bounds:
            raise ValueError("need at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = ordered
        # counts[i] <= bounds[i]; counts[-1] is the overflow bucket.
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.stats = RunningStats()

    def add(self, value: float) -> None:
        self.stats.add(value)
        self.counts[bisect_right(self.bounds, value)] += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def overflow(self) -> int:
        """Samples above the last bucket bound."""
        return self.counts[-1]

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]), clamped to the observed range.

        Linear interpolation between the owning bucket's edges; the first
        bucket's lower edge is the exact observed minimum and the overflow
        bucket collapses to the exact observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.stats.count == 0:
            raise ValueError("no samples")
        target = q * self.stats.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index == len(self.bounds):  # overflow bucket
                    return self.stats.maximum
                low = (
                    self.bounds[index - 1]
                    if index > 0
                    else min(self.stats.minimum, self.bounds[0])
                )
                high = self.bounds[index]
                fraction = (target - (cumulative - bucket_count)) / bucket_count
                estimate = low + (high - low) * fraction
                return min(max(estimate, self.stats.minimum), self.stats.maximum)
        return self.stats.maximum

    def summary(self) -> Dict[str, float]:
        """count/mean/p50/p95/p99/max as a flat dict (zeros when empty)."""
        if self.stats.count == 0:
            return {
                "count": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        return {
            "count": float(self.stats.count),
            "mean": self.stats.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.stats.maximum,
        }

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) for populated buckets; inf marks overflow."""
        edges = list(self.bounds) + [float("inf")]
        return [
            (edges[i], count) for i, count in enumerate(self.counts) if count
        ]

    def __repr__(self) -> str:
        if self.stats.count == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.stats.count}, "
            f"p50={self.quantile(0.5):.1f}, p99={self.quantile(0.99):.1f}, "
            f"max={self.stats.maximum:.1f})"
        )


class LatencyStat:
    """RunningStats + LatencyHistogram behind one ``add()``.

    Keeps the :class:`RunningStats` surface (``mean``/``count``/``minimum``/
    ``maximum``/``stdev``/``total``) the existing metrics consumers use, and
    adds the tail view (``p50``/``p95``/``p99``) the flat means were hiding.
    """

    __slots__ = ("histogram",)

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US
    ) -> None:
        self.histogram = LatencyHistogram(bounds)

    def add(self, value: float) -> None:
        self.histogram.add(value)

    def extend(self, values: Iterable[float]) -> None:
        self.histogram.extend(values)

    @property
    def _stats(self) -> RunningStats:
        return self.histogram.stats

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    @property
    def stdev(self) -> float:
        return self._stats.stdev

    @property
    def minimum(self) -> float:
        return self._stats.minimum

    @property
    def maximum(self) -> float:
        return self._stats.maximum

    @property
    def total(self) -> float:
        return self._stats.total

    @property
    def p50(self) -> float:
        return self.histogram.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.histogram.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.histogram.quantile(0.99)

    def quantile(self, q: float) -> float:
        return self.histogram.quantile(q)

    def summary(self) -> Dict[str, float]:
        return self.histogram.summary()

    def __repr__(self) -> str:
        if self.count == 0:
            return "LatencyStat(empty)"
        return (
            f"LatencyStat(n={self.count}, mean={self.mean:.2f}, "
            f"p99={self.p99:.2f}, max={self.maximum:.2f})"
        )


def merge_histograms(
    histograms: Sequence[LatencyHistogram],
) -> Optional[LatencyHistogram]:
    """Sum same-shaped histograms (the fixed ladder makes this exact)."""
    if not histograms:
        return None
    first = histograms[0]
    merged = LatencyHistogram(first.bounds)
    stats = RunningStats()
    for histogram in histograms:
        if histogram.bounds != first.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(histogram.counts):
            merged.counts[index] += count
        stats = stats.merge(histogram.stats)
    merged.stats = stats
    return merged
