"""Deterministic sim-time tracer.

Every timestamp is *simulated* microseconds — the tracer never touches the
wall clock (rule ``OBS001`` forbids even importing ``time`` here), so two
runs with the same seed emit byte-identical traces.  The default
:data:`NULL_TRACER` swallows everything through no-op methods and reports
``enabled = False`` so hot paths can skip argument construction entirely;
instrumentation must only ever *read* simulation state, never draw from an
RNG or reorder events, which keeps the traced and untraced runs numerically
identical.

Event model (a deliberately small subset of Chrome's ``trace_event``):

* ``complete`` spans — a named interval with ``ts``/``dur`` (phase ``X``);
* ``instant`` events — a point occurrence (phase ``i``), used for the
  extra-latency attribution records;
* ``counter`` events — named value samples over time (phase ``C``).

Each event carries a ``track`` (rendered as a Chrome thread) and a
monotonically increasing ``seq`` that pins a total order even between
events sharing one timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: JSON-safe argument values the tracer accepts.
ArgValue = Union[None, bool, int, float, str, Tuple[Any, ...], List[Any], Dict[str, Any]]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event; ``ph`` follows Chrome trace_event phases."""

    ph: str  # "X" complete, "i" instant, "C" counter
    name: str
    cat: str
    ts_us: float
    dur_us: float
    track: str
    seq: int
    args: Mapping[str, ArgValue] = field(default_factory=dict)


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    ``now_us`` still advances (a couple of float compares per request) so
    code can stamp bookkeeping like buffer-enqueue times unconditionally;
    everything else short-circuits on ``enabled``.
    """

    __slots__ = ("now_us",)

    enabled: bool = False

    def __init__(self) -> None:
        self.now_us = 0.0

    def advance(self, now_us: float) -> None:
        """Move simulated time forward (never backward)."""
        if now_us > self.now_us:
            self.now_us = now_us

    def complete(
        self,
        name: str,
        cat: str,
        start_us: float,
        dur_us: float,
        track: str = "main",
        **args: ArgValue,
    ) -> None:
        """Record a span; no-op here."""

    def instant(
        self,
        name: str,
        cat: str,
        ts_us: Optional[float] = None,
        track: str = "main",
        **args: ArgValue,
    ) -> None:
        """Record a point event; no-op here."""

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        ts_us: Optional[float] = None,
        track: str = "counters",
    ) -> None:
        """Record a counter sample; no-op here."""


class Tracer(NullTracer):
    """The recording tracer: appends :class:`TraceEvent` rows in call order."""

    __slots__ = ("events", "_seq")

    enabled: bool = True

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def complete(
        self,
        name: str,
        cat: str,
        start_us: float,
        dur_us: float,
        track: str = "main",
        **args: ArgValue,
    ) -> None:
        if dur_us < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_us}")
        self.events.append(
            TraceEvent(
                ph="X",
                name=name,
                cat=cat,
                ts_us=start_us,
                dur_us=dur_us,
                track=track,
                seq=self._next_seq(),
                args=dict(args),
            )
        )

    def instant(
        self,
        name: str,
        cat: str,
        ts_us: Optional[float] = None,
        track: str = "main",
        **args: ArgValue,
    ) -> None:
        self.events.append(
            TraceEvent(
                ph="i",
                name=name,
                cat=cat,
                ts_us=self.now_us if ts_us is None else ts_us,
                dur_us=0.0,
                track=track,
                seq=self._next_seq(),
                args=dict(args),
            )
        )

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        ts_us: Optional[float] = None,
        track: str = "counters",
    ) -> None:
        self.events.append(
            TraceEvent(
                ph="C",
                name=name,
                cat="counter",
                ts_us=self.now_us if ts_us is None else ts_us,
                dur_us=0.0,
                track=track,
                seq=self._next_seq(),
                args={key: values[key] for key in sorted(values)},
            )
        )


#: The process-wide disabled tracer every constructor defaults to.
NULL_TRACER = NullTracer()
