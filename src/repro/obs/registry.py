"""Central metrics registry: counters, histograms, utilization timelines.

One registry instance collects everything a traced run measures — phase
counters (QSTR-MED gather/assemble/allocate), latency histograms, and the
per-:class:`~repro.ssd.timing.ResourceClock` busy timelines — under stable
dotted names, and snapshots to one flat, deterministically ordered dict for
reports and bench artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.histograms import DEFAULT_LATENCY_BUCKETS_US, LatencyStat


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class UtilizationTimeline:
    """Busy segments of one shared resource over simulated time.

    Records every ``(start_us, dur_us)`` acquisition; yields both the flat
    utilization (busy/elapsed) and a bucketed utilization series for
    timeline views.  Segments arrive in acquisition order and never overlap
    (a :class:`ResourceClock` serializes its resource), so bucketing is a
    single pass.
    """

    __slots__ = ("name", "segments")

    def __init__(self, name: str) -> None:
        self.name = name
        self.segments: List[Tuple[float, float]] = []

    def record(self, start_us: float, dur_us: float) -> None:
        if dur_us < 0:
            raise ValueError("duration must be >= 0")
        if dur_us > 0:
            self.segments.append((start_us, dur_us))

    @property
    def busy_us(self) -> float:
        return sum(dur for _, dur in self.segments)

    def utilization(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / elapsed_us)

    def series(self, bucket_us: float, until_us: float) -> List[float]:
        """Per-bucket busy fraction from t=0 to ``until_us``."""
        if bucket_us <= 0:
            raise ValueError("bucket_us must be positive")
        if until_us <= 0:
            return []
        buckets = [0.0] * int(-(-until_us // bucket_us))  # ceil
        for start, dur in self.segments:
            end = min(start + dur, until_us)
            position = max(start, 0.0)
            while position < end:
                index = int(position // bucket_us)
                edge = (index + 1) * bucket_us
                buckets[index] += min(end, edge) - position
                position = edge
        return [busy / bucket_us for busy in buckets]


class MetricsRegistry:
    """Named counters, latency histograms and utilization timelines."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyStat] = {}
        self._timelines: Dict[str, UtilizationTimeline] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> LatencyStat:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyStat(bounds)
        return histogram

    def timeline(self, name: str) -> UtilizationTimeline:
        timeline = self._timelines.get(name)
        if timeline is None:
            timeline = self._timelines[name] = UtilizationTimeline(name)
        return timeline

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def timelines(self) -> Dict[str, UtilizationTimeline]:
        return dict(self._timelines)

    def snapshot(self, elapsed_us: Optional[float] = None) -> Dict[str, float]:
        """Flat, sorted ``name -> value`` view of everything registered.

        Histograms flatten to ``<name>_{mean,p50,p95,p99,max}_us``; with an
        ``elapsed_us``, timelines flatten to ``<name>_utilization``.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._counters):
            out[name] = float(self._counters[name].value)
        for name in sorted(self._histograms):
            summary = self._histograms[name].summary()
            out[f"{name}_count"] = summary["count"]
            for key in ("mean", "p50", "p95", "p99", "max"):
                out[f"{name}_{key}_us"] = summary[key]
        if elapsed_us is not None:
            for name in sorted(self._timelines):
                out[f"{name}_utilization"] = self._timelines[name].utilization(
                    elapsed_us
                )
        return out
