"""Render a recorded trace into a human-readable observability report.

Backs ``repro obs report``: per-category span/event rollups, the
extra-latency attribution table (which member block slowed its superpage
programs down, and by how much in total), and latency histograms rebuilt
from the event stream — all computed from the JSONL log alone, so a trace
file is a self-contained measurement artifact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.obs.histograms import LatencyStat
from repro.obs.tracer import TraceEvent

#: args key carrying the slowest-member identity on attribution events.
SLOWEST_KEY = "slowest"
EXTRA_KEY = "extra_us"


def _member_label(member: Mapping[str, object]) -> str:
    return (
        f"chip{member.get('chip')}/pl{member.get('plane')}"
        f"/blk{member.get('block')}"
    )


class TraceSummary:
    """Aggregates of one event stream."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.span_stats: Dict[Tuple[str, str], LatencyStat] = {}
        self.event_counts: Dict[Tuple[str, str], int] = {}
        self.extra_by_member: Dict[Tuple[str, str], LatencyStat] = {}
        self.first_ts_us = 0.0
        self.last_ts_us = 0.0
        self.total_events = 0
        for event in events:
            self.total_events += 1
            if self.total_events == 1:
                self.first_ts_us = event.ts_us
            self.first_ts_us = min(self.first_ts_us, event.ts_us)
            self.last_ts_us = max(self.last_ts_us, event.ts_us + event.dur_us)
            key = (event.cat, event.name)
            if event.ph == "X":
                stat = self.span_stats.get(key)
                if stat is None:
                    stat = self.span_stats[key] = LatencyStat()
                stat.add(event.dur_us)
            else:
                self.event_counts[key] = self.event_counts.get(key, 0) + 1
            extra = event.args.get(EXTRA_KEY)
            slowest = event.args.get(SLOWEST_KEY)
            if isinstance(extra, (int, float)) and isinstance(slowest, dict):
                member_key = (event.name, _member_label(slowest))
                stat = self.extra_by_member.get(member_key)
                if stat is None:
                    stat = self.extra_by_member[member_key] = LatencyStat()
                stat.add(float(extra))

    @property
    def elapsed_us(self) -> float:
        return max(0.0, self.last_ts_us - self.first_ts_us)

    def top_offenders(
        self, name: str = "mp_program", limit: int = 10
    ) -> List[Tuple[str, LatencyStat]]:
        """Member blocks ranked by the total extra latency they caused."""
        rows = [
            (label, stat)
            for (event_name, label), stat in self.extra_by_member.items()
            if event_name == name
        ]
        rows.sort(key=lambda row: (-row[1].total, row[0]))
        return rows[:limit]


def render_report(summary: TraceSummary, offender_limit: int = 10) -> str:
    """The ``repro obs report`` text body."""
    lines: List[str] = []
    lines.append(
        f"trace: {summary.total_events} events over "
        f"{summary.elapsed_us:,.1f} us of simulated time"
    )
    if summary.span_stats:
        lines.append("")
        lines.append("spans (by category/name):")
        for (cat, name) in sorted(summary.span_stats):
            stat = summary.span_stats[(cat, name)]
            lines.append(
                f"  {cat:12s} {name:18s} n={stat.count:7d} "
                f"mean={stat.mean:10,.1f} p95={stat.p95:10,.1f} "
                f"p99={stat.p99:10,.1f} max={stat.maximum:10,.1f} us"
            )
    if summary.event_counts:
        lines.append("")
        lines.append("events:")
        for (cat, name) in sorted(summary.event_counts):
            lines.append(
                f"  {cat:12s} {name:18s} n={summary.event_counts[(cat, name)]}"
            )
    for event_name in ("mp_program", "mp_erase"):
        offenders = summary.top_offenders(event_name, offender_limit)
        if not offenders:
            continue
        lines.append("")
        lines.append(
            f"extra-latency attribution — slowest members of {event_name}:"
        )
        for label, stat in offenders:
            lines.append(
                f"  {label:22s} slowed {stat.count:5d} commands, "
                f"total extra {stat.total:12,.1f} us "
                f"(mean {stat.mean:8,.1f}, max {stat.maximum:8,.1f})"
            )
    return "\n".join(lines)
