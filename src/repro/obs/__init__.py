"""repro.obs — deterministic observability for the simulator.

The paper's whole argument hangs on one observable (the extra latency the
slowest member adds to a multi-plane command), so this layer makes every
latency attributable and every distribution visible:

* :class:`Tracer` / :data:`NULL_TRACER` — sim-time spans, instant
  attribution events and counters; disabled by default at zero cost and
  never allowed to perturb RNG draws or event ordering;
* :class:`LatencyHistogram` / :class:`LatencyStat` — fixed-bucket
  histograms with p50/p95/p99/max behind the old mean-only metrics;
* :class:`MetricsRegistry` — central counters, histograms and
  per-resource utilization timelines;
* exporters — canonical JSONL (byte-identical across same-seed runs) and
  Chrome ``trace_event`` JSON for Perfetto / ``chrome://tracing``;
* :class:`TraceSummary` / :func:`render_report` — the ``repro obs report``
  rollup, including the slowest-member attribution table.

Layering: ``obs`` sits directly above ``utils`` so ``core``/``ftl``/``ssd``
can all hook into it.
"""

from repro.obs.artifacts import artifacts_dir, export_bench_artifacts
from repro.obs.export import (
    read_jsonl,
    to_chrome,
    to_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.histograms import (
    DEFAULT_LATENCY_BUCKETS_US,
    LatencyHistogram,
    LatencyStat,
    merge_histograms,
)
from repro.obs.registry import Counter, MetricsRegistry, UtilizationTimeline
from repro.obs.report import TraceSummary, render_report
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "LatencyHistogram",
    "LatencyStat",
    "DEFAULT_LATENCY_BUCKETS_US",
    "merge_histograms",
    "Counter",
    "MetricsRegistry",
    "UtilizationTimeline",
    "TraceSummary",
    "render_report",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
    "artifacts_dir",
    "export_bench_artifacts",
]
