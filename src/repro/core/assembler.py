"""On-demand QSTR-MED superblock assembly (Section V-C, Figures 10-11).

Where STR-MED enumerates every window combination (1,536 distance checks at
window 4 over four chips), QSTR-MED anchors on a single *reference block* —
the globally fastest (or slowest) free block across all lanes — and only
compares that reference against the top-``candidate_depth`` candidates of
each other lane: 12 pair checks for the same configuration, a 99.22%
reduction.  The pair check itself is popcount(XOR) on the eigen sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.catalog import BlockCatalog
from repro.core.records import BlockRecord


class SpeedClass(Enum):
    """What kind of superblock the caller wants (Section V-D routing)."""

    FAST = "fast"
    SLOW = "slow"


class AssemblyError(Exception):
    """Not enough free blocks to assemble a superblock."""


class MemberChooser(Protocol):
    """Structural hook for pluggable member choice (see ``repro.policy``).

    Core stays below the policy layer, so the assembler only knows this
    positional shape; :class:`repro.policy.base.AssemblyPolicy` provides
    the matching ``choose_member`` adapter.
    """

    def choose_member(
        self,
        speed_class: SpeedClass,
        reference: BlockRecord,
        candidates: Tuple[BlockRecord, ...],
    ) -> BlockRecord:
        """Pick one of ``candidates`` to pair with ``reference``."""
        ...


@dataclass(frozen=True)
class SuperblockChoice:
    """The outcome of one on-demand assembly."""

    speed_class: SpeedClass
    members: Tuple[BlockRecord, ...]
    reference_lane: int
    pair_checks: int

    @property
    def lanes(self) -> Tuple[int, ...]:
        return tuple(record.lane for record in self.members)

    def member_for_lane(self, lane: int) -> BlockRecord:
        for record in self.members:
            if record.lane == lane:
                return record
        raise KeyError(f"no member for lane {lane}")


class OnDemandAssembler:
    """Reference-anchored similarity assembly over per-lane catalogs."""

    def __init__(
        self,
        catalogs: Sequence[BlockCatalog],
        candidate_depth: int = 4,
        chooser: Optional[MemberChooser] = None,
    ) -> None:
        if len(catalogs) < 2:
            raise ValueError("need at least two lanes")
        lanes = [catalog.lane for catalog in catalogs]
        if len(set(lanes)) != len(lanes):
            raise ValueError(f"duplicate lanes: {lanes}")
        if candidate_depth < 1:
            raise ValueError("candidate_depth must be >= 1")
        self._catalogs: Dict[int, BlockCatalog] = {c.lane: c for c in catalogs}
        self.candidate_depth = candidate_depth
        #: pluggable member choice; None keeps the inline eigen pair check
        self.chooser = chooser
        #: cumulative eigen pair checks (the scheme's computing-overhead metric)
        self.total_pair_checks = 0
        #: superblocks assembled so far
        self.assembled_count = 0

    @property
    def catalogs(self) -> List[BlockCatalog]:
        return list(self._catalogs.values())

    def can_assemble(self) -> bool:
        """True when every lane still has at least one free block."""
        return all(len(catalog) > 0 for catalog in self._catalogs.values())

    def _pick_reference(self, speed_class: SpeedClass) -> BlockRecord:
        best: Optional[BlockRecord] = None
        for catalog in self._catalogs.values():
            extreme = (
                catalog.fastest() if speed_class is SpeedClass.FAST else catalog.slowest()
            )
            if extreme is None:
                raise AssemblyError(f"lane {catalog.lane} has no free blocks")
            if best is None:
                best = extreme
            elif speed_class is SpeedClass.FAST and extreme.pgm_total_us < best.pgm_total_us:
                best = extreme
            elif speed_class is SpeedClass.SLOW and extreme.pgm_total_us > best.pgm_total_us:
                best = extreme
        assert best is not None
        return best

    def assemble(self, speed_class: SpeedClass = SpeedClass.FAST) -> SuperblockChoice:
        """Assemble one superblock and consume its blocks from the catalogs.

        FAST: the reference is the globally fastest free block; every other
        lane contributes its minimum-eigen-distance block among its
        ``candidate_depth`` fastest.  SLOW mirrors this from the tails.
        """
        if not self.can_assemble():
            raise AssemblyError("at least one lane has no free blocks")
        reference = self._pick_reference(speed_class)
        members = [reference]
        pair_checks = 0
        for catalog in self._catalogs.values():
            if catalog.lane == reference.lane:
                continue
            if speed_class is SpeedClass.FAST:
                candidates = catalog.head_candidates(self.candidate_depth)
            else:
                candidates = catalog.tail_candidates(self.candidate_depth)
            if self.chooser is not None:
                best_record = self.chooser.choose_member(
                    speed_class, reference, tuple(candidates)
                )
                pair_checks += len(candidates)
            else:
                best_record = None
                best_distance = None
                for candidate in candidates:
                    distance = reference.distance_to(candidate)
                    pair_checks += 1
                    if best_distance is None or distance < best_distance:
                        best_distance = distance
                        best_record = candidate
            assert best_record is not None
            members.append(best_record)
        for record in members:
            self._catalogs[record.lane].remove(record)
        self.total_pair_checks += pair_checks
        self.assembled_count += 1
        return SuperblockChoice(
            speed_class=speed_class,
            members=tuple(members),
            reference_lane=reference.lane,
            pair_checks=pair_checks,
        )

    def release(self, records: Sequence[BlockRecord]) -> None:
        """Return blocks to their catalogs (e.g. after a superblock erase)."""
        for record in records:
            self._catalogs[record.lane].add(record)
