"""Runtime similarity-data gathering (Section V-B, Figure 9).

The gathering unit rides along normal program operations: the FTL reports
every word-line's program latency as it happens.  Per *open* block the unit
keeps a one-layer latency staging buffer and the running block-latency sum;
when a layer's last string completes, the layer collapses to its eigen bits,
and when the block's last word-line completes, the finished
:class:`BlockRecord` is handed to the updater callback (normally the per-chip
sorted catalog).  Only open blocks consume staging memory — the paper's
point that the scheme needs no per-block latency tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.eigen import layer_eigen_bits
from repro.core.records import BlockRecord
from repro.nand.geometry import NandGeometry
from repro.utils.bitvec import BitVector


class GatheringError(Exception):
    """Out-of-order or duplicate latency reports."""


@dataclass
class _OpenBlock:
    lane: int
    plane: int
    block: int
    pe_cycles: int
    next_lwl: int = 0
    latency_sum: float = 0.0
    layer_buffer: List[float] = field(default_factory=list)
    eigen_parts: List[BitVector] = field(default_factory=list)


class GatheringUnit:
    """Accumulates similarity metadata for the blocks currently being written."""

    def __init__(
        self,
        geometry: NandGeometry,
        on_block_complete: Optional[Callable[[BlockRecord], None]] = None,
    ) -> None:
        self._geometry = geometry
        self._on_block_complete = on_block_complete
        self._open: Dict[Tuple[int, int, int], _OpenBlock] = {}
        #: finished records (also delivered via the callback)
        self.completed: List[BlockRecord] = []

    # -- block lifecycle -----------------------------------------------------

    def open_block(self, lane: int, plane: int, block: int, pe_cycles: int = 0) -> None:
        """Start gathering for a freshly-erased block."""
        key = (lane, plane, block)
        if key in self._open:
            raise GatheringError(f"block {key} already open")
        self._open[key] = _OpenBlock(lane=lane, plane=plane, block=block, pe_cycles=pe_cycles)

    def abandon_block(self, lane: int, plane: int, block: int) -> None:
        """Drop a partially-gathered block (e.g. its superblock was erased)."""
        self._open.pop((lane, plane, block), None)

    def is_open(self, lane: int, plane: int, block: int) -> bool:
        return (lane, plane, block) in self._open

    @property
    def open_count(self) -> int:
        return len(self._open)

    # -- latency reports -------------------------------------------------------

    def report(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> Optional[BlockRecord]:
        """Feed one word-line's program latency.

        Word-lines must arrive in programming order.  Returns the finished
        :class:`BlockRecord` when this report completes the block, else None.
        """
        key = (lane, plane, block)
        state = self._open.get(key)
        if state is None:
            raise GatheringError(f"block {key} is not open for gathering")
        if lwl != state.next_lwl:
            raise GatheringError(
                f"block {key}: expected LWL {state.next_lwl}, got {lwl}"
            )
        geometry = self._geometry
        state.next_lwl += 1
        state.latency_sum += latency_us
        state.layer_buffer.append(latency_us)
        if len(state.layer_buffer) == geometry.strings_per_layer:
            state.eigen_parts.append(layer_eigen_bits(state.layer_buffer))
            state.layer_buffer = []
        if state.next_lwl == geometry.lwls_per_block:
            record = BlockRecord(
                lane=state.lane,
                plane=state.plane,
                block=state.block,
                pgm_total_us=state.latency_sum,
                eigen=BitVector.concat(state.eigen_parts),
                pe_cycles=state.pe_cycles,
            )
            del self._open[key]
            self.completed.append(record)
            if self._on_block_complete is not None:
                self._on_block_complete(record)
            return record
        return None

    def complete_block(self, record: BlockRecord) -> None:
        """Deliver a whole block's finished record in one step.

        The vector backend computes a block's latency sum and eigen bits in
        bulk at seal time instead of feeding word-lines one by one; this
        closes the open block with the externally computed record.  Only a
        *fresh* open block (no word-lines reported) may be completed this
        way — mixing per-word-line reports with a bulk record would double
        count.
        """
        key = (record.lane, record.plane, record.block)
        state = self._open.get(key)
        if state is None:
            raise GatheringError(f"block {key} is not open for gathering")
        if state.next_lwl != 0:
            raise GatheringError(
                f"block {key} already has {state.next_lwl} word-line reports"
            )
        del self._open[key]
        self.completed.append(record)
        if self._on_block_complete is not None:
            self._on_block_complete(record)

    def gather_measurement(
        self, lane: int, plane: int, block: int, wl_latencies: np.ndarray, pe_cycles: int = 0
    ) -> BlockRecord:
        """Convenience: run a whole measured block through the unit."""
        self.open_block(lane, plane, block, pe_cycles)
        matrix = np.asarray(wl_latencies, dtype=float)
        record: Optional[BlockRecord] = None
        for lwl in range(matrix.size):
            layer, string = divmod(lwl, self._geometry.strings_per_layer)
            record = self.report(lane, plane, block, lwl, float(matrix[layer, string]))
        assert record is not None
        return record

    # -- footprint accounting (Section V-D1) ----------------------------------------

    def staging_bytes(self) -> int:
        """Staging memory for the currently open blocks.

        Per open block: the running sum (8 B float), one layer's latency
        buffer (8 B per string), and the eigen bits gathered so far.
        """
        geometry = self._geometry
        total = 0
        for state in self._open.values():
            eigen_bits = len(state.eigen_parts) * geometry.strings_per_layer
            total += 8 + 8 * geometry.strings_per_layer + (eigen_bits + 7) // 8
        return total
