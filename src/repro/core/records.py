"""The per-block metadata QSTR-MED keeps (Section V-B / Equation 2).

For each candidate free block the scheme retains exactly two things: the
accumulated block program latency (one integer's worth — guides the block's
position in its chip's sorted list) and the eigen sequence (one bit per
logical word-line — feeds the XOR similarity check).  :meth:`metadata_bytes`
is the storage cost Equation 2 charges per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.bitvec import BitVector

#: bytes used to store the accumulated block program latency (Equation 2)
PGM_LATENCY_BYTES = 4


@dataclass(frozen=True)
class BlockRecord:
    """Similarity metadata of one fully-gathered block."""

    lane: int
    plane: int
    block: int
    pgm_total_us: float
    eigen: BitVector
    pe_cycles: int = 0

    def distance_to(self, other: "BlockRecord") -> int:
        """XOR-popcount similarity distance to another block's eigen."""
        return self.eigen.hamming_distance(other.eigen)

    def metadata_bytes(self) -> int:
        """Per-block footprint: latency integer + eigen bits (Equation 2)."""
        return PGM_LATENCY_BYTES + (len(self.eigen) + 7) // 8

    def key(self) -> Tuple[int, int, int]:
        return (self.lane, self.plane, self.block)

    def __str__(self) -> str:
        return (
            f"BlockRecord(lane{self.lane}/p{self.plane}/b{self.block}, "
            f"pgm={self.pgm_total_us:,.1f}us)"
        )
