"""Per-chip sorted free-block catalogs (the "sorted program latency list").

Every lane (chip) keeps its gathered free blocks ordered by accumulated
block program latency.  Fast superblocks assemble from the heads, slow ones
from the tails (Section V-C, Figure 10).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.records import BlockRecord
from repro.utils.sortedlist import SortedKeyList


class CatalogError(Exception):
    """Duplicate insertion or removal of an unknown block."""


class BlockCatalog:
    """One lane's free blocks, sorted ascending by block program latency."""

    def __init__(self, lane: int) -> None:
        self.lane = lane
        self._list: SortedKeyList[BlockRecord] = SortedKeyList(
            key=lambda record: record.pgm_total_us
        )
        self._index: Dict[Tuple[int, int], BlockRecord] = {}

    def add(self, record: BlockRecord) -> None:
        if record.lane != self.lane:
            raise CatalogError(
                f"record of lane {record.lane} added to catalog of lane {self.lane}"
            )
        key = (record.plane, record.block)
        if key in self._index:
            raise CatalogError(f"block p{key[0]}/b{key[1]} already catalogued")
        self._index[key] = record
        self._list.add(record)

    def remove(self, record: BlockRecord) -> None:
        key = (record.plane, record.block)
        stored = self._index.pop(key, None)
        if stored is None:
            raise CatalogError(f"block p{key[0]}/b{key[1]} not in catalog")
        self._list.remove(stored)

    def head_candidates(self, count: int) -> List[BlockRecord]:
        """The ``count`` fastest free blocks (fewer if the catalog is short)."""
        return self._list.head(count)

    def tail_candidates(self, count: int) -> List[BlockRecord]:
        """The ``count`` slowest free blocks, slowest last."""
        return self._list.tail(count)

    def fastest(self) -> Optional[BlockRecord]:
        return self._list[0] if len(self._list) else None

    def slowest(self) -> Optional[BlockRecord]:
        return self._list[-1] if len(self._list) else None

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[BlockRecord]:
        return iter(self._list)

    def __contains__(self, record: BlockRecord) -> bool:
        return (record.plane, record.block) in self._index

    def metadata_bytes(self) -> int:
        """Catalog footprint per Equation 2 (sum of member records)."""
        return sum(record.metadata_bytes() for record in self._list)
