"""The QSTR-MED scheme: gathering + catalogs + on-demand assembly + placement.

Two entry points:

* :class:`QstrMedScheme` — the *runtime* form an FTL embeds (Figure 8).  It
  listens to program-latency reports, keeps per-lane sorted catalogs of free
  blocks, assembles fast/slow superblocks on demand and routes writes by
  origin.  Records refresh continuously: a block's new eigen sequence and
  latency sum, gathered while it is being written, replace its catalog entry
  when the block becomes free again.
* :class:`QstrMedAssembler` — an offline adapter with the
  :class:`~repro.assembly.base.Assembler` interface, so the evaluation
  harness can compare QSTR-MED head-to-head with the eight directions on
  identical measured pools (Table V).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.assembly.base import Assembler, LanePool, Superblock, check_pools
from repro.characterization.datasets import BlockMeasurement
from repro.core.assembler import (
    MemberChooser,
    OnDemandAssembler,
    SpeedClass,
    SuperblockChoice,
)
from repro.core.catalog import BlockCatalog
from repro.core.gathering import GatheringUnit
from repro.core.placement import DEFAULT_POLICY, PlacementPolicy, WriteIntent
from repro.core.records import BlockRecord
from repro.nand.geometry import NandGeometry
from repro.obs.registry import MetricsRegistry


class QstrMedScheme:
    """Runtime QSTR-MED: the three cooperating components of Figure 8."""

    def __init__(
        self,
        geometry: NandGeometry,
        lanes: Sequence[int],
        candidate_depth: int = 4,
        placement: PlacementPolicy = DEFAULT_POLICY,
        registry: Optional[MetricsRegistry] = None,
        chooser: Optional[MemberChooser] = None,
    ) -> None:
        if len(set(lanes)) != len(lanes):
            raise ValueError(f"duplicate lanes: {lanes}")
        self._geometry = geometry
        self.placement = placement
        # Phase counters (Figure 8's three components): how often each
        # QSTR-MED stage ran.  None keeps the scheme observation-free.
        self._counters = registry
        if registry is not None:
            self._gather_reports = registry.counter("qstr_gather_reports")
            self._blocks_gathered = registry.counter("qstr_blocks_gathered")
            self._assemblies = registry.counter("qstr_assemblies")
            self._allocations = registry.counter("qstr_block_allocations")
        self._catalogs: Dict[int, BlockCatalog] = {
            lane: BlockCatalog(lane) for lane in lanes
        }
        self.candidate_depth = candidate_depth
        self._assembler = OnDemandAssembler(
            list(self._catalogs.values()), candidate_depth, chooser=chooser
        )
        self._gathering = GatheringUnit(geometry, self._on_block_gathered)
        # records gathered for in-use blocks, waiting for the block to free up
        self._pending: Dict[Tuple[int, int, int], BlockRecord] = {}
        # last known record of blocks currently in use (for re-listing when
        # a block frees before a fresh gather completed)
        self._in_use: Dict[Tuple[int, int, int], BlockRecord] = {}

    # -- catalog bootstrap -----------------------------------------------------

    def register_free_block(self, record: BlockRecord) -> None:
        """Add a free block's metadata (e.g. from a format-time burn-in)."""
        self._catalogs[record.lane].add(record)

    def catalog(self, lane: int) -> BlockCatalog:
        return self._catalogs[lane]

    @property
    def lanes(self) -> List[int]:
        return list(self._catalogs)

    def free_blocks(self, lane: int) -> int:
        return len(self._catalogs[lane])

    def min_free_blocks(self) -> int:
        return min(len(c) for c in self._catalogs.values())

    # -- assembly (on demand) ------------------------------------------------------

    def assemble_for(self, intent: WriteIntent) -> SuperblockChoice:
        """Assemble the superblock class this write's origin calls for."""
        return self.assemble(self.placement.classify(intent))

    def assemble(self, speed_class: SpeedClass) -> SuperblockChoice:
        choice = self._assembler.assemble(speed_class)
        for record in choice.members:
            self._in_use[record.key()] = record
        if self._counters is not None:
            self._assemblies.inc()
        return choice

    @property
    def total_pair_checks(self) -> int:
        return self._assembler.total_pair_checks

    @property
    def assembled_count(self) -> int:
        return self._assembler.assembled_count

    # -- gathering hooks (wired to the FTL's program path) ----------------------------

    def note_block_allocated(self, lane: int, plane: int, block: int, pe_cycles: int) -> None:
        """A block starts being written: begin gathering its fresh metadata."""
        if not self._gathering.is_open(lane, plane, block):
            self._gathering.open_block(lane, plane, block, pe_cycles)
            if self._counters is not None:
                self._allocations.inc()

    def note_wordline_programmed(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> None:
        """Feed one word-line's measured program latency."""
        if self._counters is not None:
            self._gather_reports.inc()
        self._gathering.report(lane, plane, block, lwl, latency_us)

    def ingest_block_record(self, record: BlockRecord, reports: int) -> None:
        """Bulk-deliver a fully programmed block's gathered metadata.

        Equivalent to ``reports`` successive :meth:`note_wordline_programmed`
        calls that end with this record: the gather counter advances by
        ``reports`` and the record lands in the pending set via the normal
        completion callback.  The vector backend uses this at seal time
        after computing latency sums and eigen bits in bulk.
        """
        if self._counters is not None:
            self._gather_reports.inc(reports)
        self._gathering.complete_block(record)

    def _on_block_gathered(self, record: BlockRecord) -> None:
        if self._counters is not None:
            self._blocks_gathered.inc()
        self._pending[record.key()] = record

    def note_block_freed(self, lane: int, plane: int, block: int) -> None:
        """A block was erased and is free again: (re-)list it.

        Prefers the freshly gathered record; falls back to the last known
        one when the block was recycled before it finished programming.
        """
        key = (lane, plane, block)
        self._gathering.abandon_block(lane, plane, block)
        record = self._pending.pop(key, None)
        if record is None:
            record = self._in_use.pop(key, None)
        else:
            self._in_use.pop(key, None)
        if record is None:
            raise KeyError(f"block {key} was never registered with the scheme")
        self._catalogs[lane].add(record)

    def note_block_retired(self, lane: int, plane: int, block: int) -> None:
        """A block wore out: drop all metadata, never list it again."""
        key = (lane, plane, block)
        self._gathering.abandon_block(lane, plane, block)
        self._pending.pop(key, None)
        self._in_use.pop(key, None)

    def take_free_block(self, record: BlockRecord) -> None:
        """Remove one specific free block from its catalog and mark it in use.

        Used by superblock repair: the FTL drafted this record as a spare,
        so it leaves the free pool outside the normal assembly path.
        """
        self._catalogs[record.lane].remove(record)
        self._in_use[record.key()] = record

    def purge_plane(self, lane: int, plane: int) -> int:
        """Drop every free block of a dead plane; returns how many."""
        catalog = self._catalogs[lane]
        doomed = [record for record in catalog if record.plane == plane]
        for record in doomed:
            catalog.remove(record)
        return len(doomed)

    # -- footprint (Section VI-D1) ----------------------------------------------------

    def metadata_bytes(self) -> int:
        """Current catalog + staging footprint."""
        catalog_bytes = sum(c.metadata_bytes() for c in self._catalogs.values())
        pending_bytes = sum(r.metadata_bytes() for r in self._pending.values())
        in_use_bytes = sum(r.metadata_bytes() for r in self._in_use.values())
        return (
            catalog_bytes
            + pending_bytes
            + in_use_bytes
            + self._gathering.staging_bytes()
        )


class QstrMedAssembler(Assembler):
    """Offline adapter: run QSTR-MED over measured pools (Table V rows).

    ``demand`` optionally supplies the speed class of each successive
    superblock (default: all FAST, i.e. drain the catalogs head-first).
    """

    name = "qstr_med"

    def __init__(
        self,
        candidate_depth: int = 4,
        demand: Optional[Iterable[SpeedClass]] = None,
    ) -> None:
        self.candidate_depth = candidate_depth
        self._demand = list(demand) if demand is not None else None
        self.name = f"qstr_med({candidate_depth})"
        self.pair_checks = 0
        self.combinations_checked = 0

    def assemble(self, pools: Sequence[LanePool]) -> List[Superblock]:
        count = check_pools(pools)
        if self._demand is not None and len(self._demand) < count:
            raise ValueError(
                f"demand supplies {len(self._demand)} classes for {count} superblocks"
            )
        geometry_checked = False
        catalogs: List[BlockCatalog] = []
        by_key: Dict[Tuple[int, int, int], BlockMeasurement] = {}
        for pool in pools:
            catalog = BlockCatalog(pool.lane)
            for measurement in pool.blocks:
                if not geometry_checked:
                    geometry_checked = True
                unit = GatheringUnit(_measurement_geometry(measurement))
                record = unit.gather_measurement(
                    pool.lane,
                    measurement.plane,
                    measurement.block,
                    measurement.wl_latencies_us,
                    measurement.pe_cycles,
                )
                catalog.add(record)
                by_key[record.key()] = measurement
            catalogs.append(catalog)

        assembler = OnDemandAssembler(catalogs, self.candidate_depth)
        lanes = tuple(pool.lane for pool in pools)
        result: List[Superblock] = []
        for index in range(count):
            speed = (
                self._demand[index] if self._demand is not None else SpeedClass.FAST
            )
            choice = assembler.assemble(speed)
            members = tuple(
                by_key[choice.member_for_lane(lane).key()] for lane in lanes
            )
            result.append(Superblock(members=members, lanes=lanes))
        self.pair_checks = assembler.total_pair_checks
        self.combinations_checked = assembler.assembled_count
        return result


def _measurement_geometry(measurement: BlockMeasurement) -> NandGeometry:
    """A geometry stub matching a measurement's word-line matrix shape."""
    return NandGeometry(
        planes_per_chip=max(1, measurement.plane + 1),
        blocks_per_plane=max(1, measurement.block + 1),
        layers_per_block=measurement.layers,
        strings_per_layer=measurement.strings,
    )
