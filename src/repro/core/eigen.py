"""Eigen-sequence generation (Section V-B, Figure 9).

QSTR-MED condenses each block's word-line program latencies into one bit per
(physical word-line layer, string): after all strings of a layer have been
programmed, the fastest half of the strings (two of four) are marked 0 and
the rest 1; ties are resolved "sequentially" — the first-programmed string
wins a fast slot.  Joining the per-layer bit groups in programming order
yields the block's *eigen sequence*, and the similarity distance between two
blocks is ``popcount(eigen_a XOR eigen_b)``.

This module is the exact BitVector twin of
:func:`repro.assembly.signatures.str_median_signature`; the test-suite
cross-checks the two representations bit for bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nand.geometry import NandGeometry
from repro.utils.bitvec import BitVector


def layer_eigen_bits(latencies: Sequence[float], fast_slots: int = None) -> BitVector:
    """Speed bits of one physical word-line layer.

    ``latencies`` holds the layer's per-string program latencies in string
    order.  The ``fast_slots`` fastest strings (default: half) get bit 0,
    the rest bit 1; ties go to the lower string index.
    """
    values = np.asarray(latencies, dtype=float)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("latencies must be a non-empty 1-D sequence")
    if fast_slots is None:
        fast_slots = len(values) // 2
    if not 0 <= fast_slots <= len(values):
        raise ValueError(f"fast_slots {fast_slots} out of range")
    order = np.argsort(values, kind="stable")
    bits = [1] * len(values)
    for winner in order[:fast_slots]:
        bits[int(winner)] = 0
    return BitVector(bits)


def eigen_sequence(wl_latencies: np.ndarray, fast_slots: int = None) -> BitVector:
    """Eigen sequence of a fully-programmed block.

    ``wl_latencies`` is the (layers, strings) tPROG matrix; the result joins
    the per-layer bit groups in layer order (bit index = lwl index).
    """
    matrix = np.asarray(wl_latencies, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("wl_latencies must be (layers, strings)")
    parts = [layer_eigen_bits(matrix[layer], fast_slots) for layer in range(matrix.shape[0])]
    return BitVector.concat(parts)


def eigen_distance(a: BitVector, b: BitVector) -> int:
    """QSTR-MED similarity distance: popcount of the XOR (Figure 11)."""
    return a.hamming_distance(b)


def eigen_bits_for_geometry(geometry: NandGeometry) -> int:
    """Length of a block's eigen sequence (one bit per LWL)."""
    return geometry.lwls_per_block
