"""Function-based data placement (Section V-D).

Because QSTR-MED can organize fast and slow superblocks *on demand*, the
write path can route data by its origin and shape: host writes land in fast
superblocks (they sit on the latency-critical path), garbage-collection
relocations land in slow superblocks (they happen in the background), and —
for developers who opt in — small random host writes can be steered ahead of
large batch writes inside the fast superblock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.assembler import SpeedClass


class WriteSource(Enum):
    """Who generated a write."""

    HOST = "host"
    GC = "gc"
    METADATA = "metadata"


@dataclass(frozen=True)
class WriteIntent:
    """The placement-relevant facts about one write."""

    source: WriteSource
    pages: int = 1
    sequential: bool = False


@dataclass(frozen=True)
class PlacementPolicy:
    """Maps a write's origin to the superblock speed class it should use.

    ``small_write_page_limit`` only matters when ``classify_superpage`` is
    consulted (the optional in-superblock steering the paper sketches).
    """

    host_class: SpeedClass = SpeedClass.FAST
    gc_class: SpeedClass = SpeedClass.SLOW
    metadata_class: SpeedClass = SpeedClass.SLOW
    small_write_page_limit: int = 8

    def classify(self, intent: WriteIntent) -> SpeedClass:
        """Speed class of the superblock this write should go to."""
        if intent.source is WriteSource.HOST:
            return self.host_class
        if intent.source is WriteSource.GC:
            return self.gc_class
        return self.metadata_class

    def prefers_fast_superpage(self, intent: WriteIntent) -> bool:
        """In-superblock steering: small random host writes first.

        The paper's optional refinement — small random data goes to the
        high-speed superpages of a fast superblock, large batch data to its
        slower superpages.
        """
        return (
            intent.source is WriteSource.HOST
            and not intent.sequential
            and intent.pages <= self.small_write_page_limit
        )


#: The paper's default routing: host -> fast, GC -> slow.
DEFAULT_POLICY = PlacementPolicy()

#: A routing that ignores write origin (the baseline FTLs use this).
UNIFORM_POLICY = PlacementPolicy(
    host_class=SpeedClass.FAST,
    gc_class=SpeedClass.FAST,
    metadata_class=SpeedClass.FAST,
)
