"""Overhead accounting (Sections V, VI-B2 and VI-D1).

Two costs decide whether a scheme fits in a real controller:

* **Computing** — how many block-pair similarity checks one superblock
  assembly needs.  STR-MED at window W over N lanes scores all ``W**N``
  combinations, each costing ``C(N, 2)`` pair distances; QSTR-MED anchors on
  one reference and checks ``(N-1) * depth`` pairs.  For W = depth = 4 and
  N = 4 that is 1,536 vs 12 — the paper's 99.22% reduction.
* **Space** — Equation 2: per block one latency integer plus one eigen bit
  per logical word-line; 52 bytes for a 384-LWL block, ~6.5 MB for a 1 TB
  SSD of 8 MB blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.records import PGM_LATENCY_BYTES
from repro.nand.geometry import NandGeometry
from repro.utils.units import GIB, TIB


def lane_pairs(lanes: int) -> int:
    """C(lanes, 2) — block pairs per candidate combination."""
    if lanes < 2:
        raise ValueError("need at least two lanes")
    return lanes * (lanes - 1) // 2


def str_med_pair_checks(window: int, lanes: int) -> int:
    """Pair checks STR-MED needs for ONE superblock (Section IV-B).

    Every one of the ``window**lanes`` combinations is scored with
    ``C(lanes, 2)`` pairwise distances; 1,536 for window 4 over 4 chips.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    return window**lanes * lane_pairs(lanes)


def qstr_med_pair_checks(lanes: int, candidate_depth: int = 4) -> int:
    """Pair checks QSTR-MED needs for one superblock: (lanes-1) * depth."""
    if lanes < 2:
        raise ValueError("need at least two lanes")
    if candidate_depth < 1:
        raise ValueError("candidate_depth must be >= 1")
    return (lanes - 1) * candidate_depth


def overhead_reduction_pct(window: int = 4, lanes: int = 4, candidate_depth: int = 4) -> float:
    """The headline computing-overhead reduction (99.22% for the defaults)."""
    baseline = str_med_pair_checks(window, lanes)
    ours = qstr_med_pair_checks(lanes, candidate_depth)
    return (baseline - ours) / baseline * 100.0


@dataclass(frozen=True)
class FootprintModel:
    """Equation 2's memory footprint of QSTR-MED metadata."""

    geometry: NandGeometry

    @property
    def eigen_bytes_per_block(self) -> int:
        """One bit per logical word-line, rounded up to bytes (48 B at 384 LWLs)."""
        return (self.geometry.lwls_per_block + 7) // 8

    @property
    def bytes_per_block(self) -> int:
        """S_PGM_LTN + S_Eigen — 52 bytes for the paper's block geometry."""
        return PGM_LATENCY_BYTES + self.eigen_bytes_per_block

    def block_count_for_capacity(self, capacity_bytes: int) -> int:
        """How many blocks an SSD of ``capacity_bytes`` user capacity has."""
        block_bytes = self.geometry.block_user_bytes
        return math.ceil(capacity_bytes / block_bytes)

    def footprint_bytes(self, capacity_bytes: int = TIB) -> int:
        """M_footprint = N_block x (S_PGM_LTN + S_Eigen) for a drive size."""
        return self.block_count_for_capacity(capacity_bytes) * self.bytes_per_block

    def footprint_fraction_of_dram(self, capacity_bytes: int = TIB, dram_bytes: int = GIB) -> float:
        """Footprint relative to a typical 1 GB-per-1 TB DRAM budget."""
        return self.footprint_bytes(capacity_bytes) / dram_bytes
