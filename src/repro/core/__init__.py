"""The paper's contribution: the QSTR-MED process-variation check scheme.

Components (Figure 8): runtime similarity gathering (`gathering`), per-chip
sorted catalogs (`catalog`), on-demand reference-anchored assembly
(`assembler`), function-based placement (`placement`), plus the eigen
sequence primitives (`eigen`), metadata records (`records`) and overhead
accounting (`overhead`).  `scheme` ties them together.
"""

from repro.core.assembler import (
    AssemblyError,
    OnDemandAssembler,
    SpeedClass,
    SuperblockChoice,
)
from repro.core.catalog import BlockCatalog, CatalogError
from repro.core.eigen import (
    eigen_bits_for_geometry,
    eigen_distance,
    eigen_sequence,
    layer_eigen_bits,
)
from repro.core.gathering import GatheringError, GatheringUnit
from repro.core.overhead import (
    FootprintModel,
    lane_pairs,
    overhead_reduction_pct,
    qstr_med_pair_checks,
    str_med_pair_checks,
)
from repro.core.placement import (
    DEFAULT_POLICY,
    UNIFORM_POLICY,
    PlacementPolicy,
    WriteIntent,
    WriteSource,
)
from repro.core.records import PGM_LATENCY_BYTES, BlockRecord
from repro.core.superpage import SuperpagePredictor
from repro.core.scheme import QstrMedAssembler, QstrMedScheme

__all__ = [
    "SpeedClass",
    "SuperblockChoice",
    "OnDemandAssembler",
    "AssemblyError",
    "BlockCatalog",
    "CatalogError",
    "eigen_sequence",
    "layer_eigen_bits",
    "eigen_distance",
    "eigen_bits_for_geometry",
    "GatheringUnit",
    "GatheringError",
    "FootprintModel",
    "lane_pairs",
    "str_med_pair_checks",
    "qstr_med_pair_checks",
    "overhead_reduction_pct",
    "PlacementPolicy",
    "WriteIntent",
    "WriteSource",
    "DEFAULT_POLICY",
    "UNIFORM_POLICY",
    "BlockRecord",
    "PGM_LATENCY_BYTES",
    "SuperpagePredictor",
    "QstrMedScheme",
    "QstrMedAssembler",
]
