"""Superpage speed prediction (Section V-D's in-superblock steering).

A fast superblock still contains faster and slower super word-lines: the
common layer shape makes some layers quick, and each member block's eigen
sequence says which of its strings run fast.  The paper suggests writing
"small random data to a high-speed superpage and large batch data to a slow
superpage" — to do that at runtime the controller must *predict* how fast
the next super word-line of each open superblock will program.

:class:`SuperpagePredictor` learns, per lane, the average program latency of
every LWL position (the layer shape plus chip profile, which the controller
cannot know a priori) and the average speed gap between eigen-bit-0 (fast)
and eigen-bit-1 (slow) word-lines.  Prediction for a member block at a given
LWL is then ``lane_curve[lwl] + bit_adjustment(eigen[lwl])``; a super
word-line's predicted completion is the max over members (MP semantics).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.records import BlockRecord
from repro.nand.geometry import NandGeometry


class SuperpagePredictor:
    """Online per-lane LWL latency model with eigen-bit adjustment."""

    def __init__(self, geometry: NandGeometry, lanes: Sequence[int]) -> None:
        self._geometry = geometry
        lwls = geometry.lwls_per_block
        self._sum: Dict[int, np.ndarray] = {lane: np.zeros(lwls) for lane in lanes}
        self._count: Dict[int, np.ndarray] = {lane: np.zeros(lwls) for lane in lanes}
        # bit-conditioned accumulators: [bit0, bit1] per lane
        self._bit_sum: Dict[int, np.ndarray] = {lane: np.zeros(2) for lane in lanes}
        self._bit_count: Dict[int, np.ndarray] = {lane: np.zeros(2) for lane in lanes}
        self.observations = 0

    # -- learning -----------------------------------------------------------

    def observe(self, lane: int, lwl: int, latency_us: float, eigen_bit: int) -> None:
        """Feed one measured word-line program (with the block's eigen bit)."""
        self._geometry.check_lwl(lwl)
        if eigen_bit not in (0, 1):
            raise ValueError(f"eigen_bit must be 0/1, got {eigen_bit}")
        self._sum[lane][lwl] += latency_us
        self._count[lane][lwl] += 1
        self._bit_sum[lane][eigen_bit] += latency_us
        self._bit_count[lane][eigen_bit] += 1
        self.observations += 1

    def observe_record(self, record: BlockRecord, wl_latencies: np.ndarray) -> None:
        """Bulk-learn from a fully measured block (e.g. at format time)."""
        flat = np.asarray(wl_latencies, dtype=float).reshape(-1)
        for lwl, latency in enumerate(flat):
            self.observe(record.lane, lwl, float(latency), record.eigen[lwl])

    # -- prediction --------------------------------------------------------------

    def _lane_mean(self, lane: int) -> float:
        total = self._count[lane].sum()
        if total == 0:
            return 0.0
        return float(self._sum[lane].sum() / total)

    def lane_curve_value(self, lane: int, lwl: int) -> float:
        """Learned mean latency of this LWL position on this lane."""
        self._geometry.check_lwl(lwl)
        count = self._count[lane][lwl]
        if count == 0:
            return self._lane_mean(lane)
        return float(self._sum[lane][lwl] / count)

    def bit_adjustment(self, lane: int, eigen_bit: int) -> float:
        """Learned offset of bit-0 (fast) / bit-1 (slow) word-lines vs the mean."""
        counts = self._bit_count[lane]
        if counts[eigen_bit] == 0 or counts.sum() == 0:
            return 0.0
        bit_mean = self._bit_sum[lane][eigen_bit] / counts[eigen_bit]
        overall = self._bit_sum[lane].sum() / counts.sum()
        return float(bit_mean - overall)

    def predict_member(self, record: BlockRecord, lwl: int) -> float:
        """Predicted tPROG of one member block's word-line."""
        return self.lane_curve_value(record.lane, lwl) + self.bit_adjustment(
            record.lane, record.eigen[lwl]
        )

    def predict_superwl(self, members: Sequence[BlockRecord], lwl: int) -> float:
        """Predicted completion (max over members) of one super word-line."""
        if not members:
            raise ValueError("empty superblock")
        return max(self.predict_member(record, lwl) for record in members)

    def ready(self) -> bool:
        """True once every lane has at least some observations."""
        return all(counts.sum() > 0 for counts in self._count.values())
