"""Vectorized batch kernels for the simulator's hot paths.

Every kernel here is the struct-of-arrays twin of a scalar reference
implementation that lives in its home layer (``assembly.signatures``,
``nand.variation``, ``nand.reliability``, ``ftl.mapping``).  The scalar
path stays the reference; the vector path must agree with it *exactly*
(bit-for-bit on floats, element-for-element on ints) — the equivalence
contract DESIGN.md §13 spells out and ``tests/test_kernels_differential.py``
enforces.

The :mod:`repro.kernels.engine` module composes the kernels into the
``backend="vector"`` simulation engine (:class:`VectorFtl`,
:class:`VectorSsd`) that ``build_stack`` swaps in behind
``SimConfig.backend``.
"""

from repro.kernels.engine import VectorFtl, VectorSsd
from repro.kernels.mapping import ArrayPageMapper
from repro.kernels.reliability import EccBatchResult, ecc_read_batch, rber_batch
from repro.kernels.signatures import (
    batch_lwl_rank,
    batch_pwl_rank,
    batch_str_median,
    batch_str_rank,
    eigen_bitvectors,
    eigen_distance_matrix,
    pack_eigen_bits,
    signature_distance_matrix,
)
from repro.kernels.variation import (
    SuperwlStats,
    batch_erase_latencies,
    block_latency_stack,
    block_program_totals,
    superwl_stats,
)
from repro.kernels.workload import fill_request_count, sequential_fill_prefix

BATCH_SIGNATURE_BUILDERS = {
    "lwl_rank": batch_lwl_rank,
    "pwl_rank": batch_pwl_rank,
    "str_rank": batch_str_rank,
    "str_median": batch_str_median,
}

__all__ = [
    "ArrayPageMapper",
    "BATCH_SIGNATURE_BUILDERS",
    "EccBatchResult",
    "SuperwlStats",
    "VectorFtl",
    "VectorSsd",
    "batch_erase_latencies",
    "batch_lwl_rank",
    "batch_pwl_rank",
    "batch_str_median",
    "batch_str_rank",
    "block_latency_stack",
    "block_program_totals",
    "ecc_read_batch",
    "eigen_bitvectors",
    "eigen_distance_matrix",
    "fill_request_count",
    "pack_eigen_bits",
    "rber_batch",
    "sequential_fill_prefix",
    "signature_distance_matrix",
    "superwl_stats",
]
