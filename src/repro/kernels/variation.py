"""Batch twins of the per-page latency/variation model (Section III).

The scalar reference is :class:`repro.nand.variation.ChipVariationProfile`:
one ``(layers, strings)`` latency matrix per ``(plane, block, pe)``, one
erase latency per block.  The kernels here assemble *stacks* of those
matrices and reduce them the way the FTL's MP-program hot path does:

* completion of super word-line ``lwl`` = max over member latencies,
* extra latency = max - min (the gap the paper optimizes),
* slowest/fastest member = first argmax/argmin (Python ``max(range, key)``
  tie-break),
* block program total = the *sequential* left-to-right sum the gathering
  unit accumulates (``np.cumsum`` pairs operands in exactly that order,
  unlike ``np.sum``'s pairwise reduction — see DESIGN.md §13).

Erase latencies batch the scalar chain with the identical binary-operation
order, elementwise, so results are bit-identical to
:meth:`ChipVariationProfile.erase_latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.nand.variation import ChipVariationProfile, _quantize


def block_latency_stack(
    profile: ChipVariationProfile,
    plane: int,
    blocks: Sequence[int],
    pe: Union[int, Sequence[int]] = 0,
) -> np.ndarray:
    """Program-latency matrices of several blocks, shape ``(k, layers, strings)``.

    ``pe`` is one cycle count for all blocks or one per block.  Rows are the
    profile's own cached (read-only) matrices stacked, so each row is
    *exactly* ``block_program_latencies(plane, block, pe)``.
    """
    pe_list = [pe] * len(blocks) if isinstance(pe, int) else list(pe)
    if len(pe_list) != len(blocks):
        raise ValueError("pe must be an int or match blocks in length")
    if not blocks:
        geometry = profile._geometry
        return np.zeros(
            (0, geometry.layers_per_block, geometry.strings_per_layer)
        )
    return np.stack(
        [
            profile.block_program_latencies(plane, block, cycles)
            for block, cycles in zip(blocks, pe_list)
        ]
    )


@dataclass(frozen=True)
class SuperwlStats:
    """Per-super-word-line MP reductions over one member latency table.

    All arrays have length ``lwls``; ``completion_us[lwl]`` is the max over
    members, ``extra_us`` the max-min gap, ``slowest``/``fastest`` the first
    arg-extreme member index (the scalar ``max(range(n), key=...)``
    tie-break).
    """

    completion_us: np.ndarray
    extra_us: np.ndarray
    slowest: np.ndarray
    fastest: np.ndarray


def superwl_stats(member_latencies: np.ndarray) -> SuperwlStats:
    """MP-completion statistics of a ``(members, lwls)`` latency table."""
    table = np.asarray(member_latencies, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"expected a (members, lwls) table, got {table.shape}")
    if table.shape[0] == 0:
        raise ValueError("need at least one member lane")
    completion = table.max(axis=0)
    extra = completion - table.min(axis=0)
    return SuperwlStats(
        completion_us=completion,
        extra_us=extra,
        slowest=table.argmax(axis=0),
        fastest=table.argmin(axis=0),
    )


def block_program_totals(member_latencies: np.ndarray) -> np.ndarray:
    """Sequential per-member latency sums of a ``(members, lwls)`` table.

    Matches the gathering unit's running ``latency_sum += latency_us`` in
    LWL order bit-for-bit: ``np.cumsum`` is a strict left fold, whereas
    ``np.sum`` would pair operands differently and drift in the last ulp.
    """
    table = np.asarray(member_latencies, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"expected a (members, lwls) table, got {table.shape}")
    if table.shape[1] == 0:
        return np.zeros(table.shape[0])
    return np.cumsum(table, axis=1)[:, -1]


def batch_erase_latencies(
    profile: ChipVariationProfile,
    plane: int,
    blocks: Sequence[int],
    pe: Union[int, Sequence[int]] = 0,
) -> np.ndarray:
    """tBERS of several blocks at once, bit-identical to the scalar chain.

    Gathers each block's static draws (identical cached values the scalar
    accessor uses), then applies the scalar accessor's sum in the same
    left-to-right binary-operation order, elementwise — every IEEE-754
    rounding step matches, so ``out[i] == erase_latency(plane, blocks[i])``.
    """
    pe_list = [pe] * len(blocks) if isinstance(pe, int) else list(pe)
    if len(pe_list) != len(blocks):
        raise ValueError("pe must be an int or match blocks in length")
    if not blocks:
        return np.zeros(0)
    geometry = profile._geometry
    geometry.check_plane(plane)
    for block in blocks:
        geometry.check_block(block)
    params = profile._params
    shared = profile._shared
    statics = [profile._block_statics(plane, block) for block in blocks]
    resid = np.array([s.resid_offset for s in statics])
    # keep the per-block dot product scalar, exactly as the reference does
    latent_dot = np.array(
        [float(s.latent @ shared.ers_latent_dir) for s in statics]
    )
    noise = np.array([s.ers_noise for s in statics])
    slope = np.array([s.ers_pe_slope for s in statics])
    cycles = np.array(pe_list, dtype=float)
    raw = (
        params.base_ers_us
        + profile._chip_ers_offset
        + params.ers_resid_coupling * resid
        + params.ers_latent_coupling_us * latent_dot
        + noise
        + slope * cycles
    )
    return _quantize(raw, params.ers_quant_us)
