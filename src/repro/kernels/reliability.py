"""Batch twins of the RBER model and the ECC read-retry ladder.

``rber_batch`` vectorizes the log-space accumulation of
:func:`repro.nand.reliability.rber` in the scalar function's exact
binary-operation order, then applies ``math.exp`` *elementwise* — numpy's
SIMD ``np.exp`` may differ from libm's ``math.exp`` in the last ulp, and the
equivalence contract (DESIGN.md §13) demands bit-identity, so the final
transcendental step stays scalar.

``ecc_read_batch`` is a struct-of-arrays facade over
:meth:`repro.nand.reliability.EccEngine.read_page`.  It deliberately loops
pages: the retry ladder draws a *variable* number of binomial samples from
one shared RNG stream per page, so any reordering or batching of the draws
would change every subsequent sample.  Draw-order fidelity beats
vectorization here; the payoff is the columnar result layout downstream
analysis wants, not a faster inner loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.nand.geometry import PageType
from repro.nand.reliability import EccEngine, ReliabilityParams


def rber_batch(
    params: ReliabilityParams,
    pe: Union[np.ndarray, Sequence[int]],
    retention_hours: Union[np.ndarray, Sequence[float]],
    page_types: Union[np.ndarray, Sequence[PageType], Sequence[int]],
    layer_factor_log: Union[np.ndarray, Sequence[float], float] = 0.0,
    block_factor_log: Union[np.ndarray, Sequence[float], float] = 0.0,
) -> np.ndarray:
    """Raw bit error rates of many pages at once.

    ``page_types`` accepts :class:`PageType` members or their integer
    values.  Every element equals the scalar :func:`rber` of the same
    inputs exactly.
    """
    pe_arr = np.asarray(pe, dtype=float)
    ret_arr = np.asarray(retention_hours, dtype=float)
    type_values = np.asarray(
        [p.value if isinstance(p, PageType) else int(p) for p in page_types],
        dtype=float,
    )
    layer_arr = np.asarray(layer_factor_log, dtype=float)
    block_arr = np.asarray(block_factor_log, dtype=float)
    if np.any(pe_arr < 0) or np.any(ret_arr < 0):
        raise ValueError("pe and retention must be non-negative")
    log_rate = (
        math.log(params.base_rber)
        + pe_arr / params.pe_scale_cycles
        + ret_arr / params.retention_scale_hours
        + type_values * math.log(params.page_type_factor_step)
        + layer_arr
        + block_arr
    )
    flat = np.atleast_1d(np.asarray(log_rate, dtype=float))
    # elementwise math.exp: keeps the scalar reference's libm rounding
    rates = np.array([min(0.5, math.exp(v)) for v in flat.tolist()])
    return rates.reshape(np.shape(log_rate))


@dataclass(frozen=True)
class EccBatchResult:
    """Columnar outcome of pushing a page batch through the ECC engine."""

    corrected_bits: np.ndarray
    retries: np.ndarray
    extra_latency_us: np.ndarray
    uncorrectable: np.ndarray


def ecc_read_batch(
    engine: EccEngine,
    page_rbers: Union[np.ndarray, Sequence[float]],
    rng: np.random.Generator,
) -> EccBatchResult:
    """Run pages through the retry ladder in order, returning column arrays.

    Pages are processed strictly in sequence against the shared ``rng`` so
    the draw order — and therefore every sampled error count — matches a
    loop of scalar :meth:`EccEngine.read_page` calls bit for bit.
    """
    rbers = np.asarray(page_rbers, dtype=float)
    corrections = [engine.read_page(float(value), rng) for value in rbers]
    return EccBatchResult(
        corrected_bits=np.array(
            [c.corrected_bits for c in corrections], dtype=np.int64
        ),
        retries=np.array([c.retries for c in corrections], dtype=np.int64),
        extra_latency_us=np.array([c.extra_latency_us for c in corrections]),
        uncorrectable=np.array([c.uncorrectable for c in corrections], dtype=bool),
    )
