"""Array-backed L2P mapping tables (the vector backend's page mapper).

:class:`ArrayPageMapper` is a drop-in :class:`~repro.ftl.mapping.PageMapper`
replacement that stores the forward map as two dense ``int64`` numpy arrays
(superblock id and slot per LPN, ``-1`` = unmapped) and the reverse map as
one ``int64`` array per superblock — the struct-of-arrays layout full-device
FTL simulators use.  Every method matches the scalar mapper's observable
behavior exactly, including :class:`MappingError` messages; the one
documented divergence is :meth:`iter_mapped`, which yields in ascending LPN
order instead of insertion order (no production caller depends on the
order — the layout simply has no insertion history to replay).

:meth:`map_batch` is the vector engine's hot path: it maps one flush batch
of LPNs onto consecutive slots of a superblock with three array stores plus
a per-stale fix-up loop, instead of one ``map_page`` call per page.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ftl.mapping import MappingError, PageMapper, PhysicalSlot

_GROW_MIN = 64


class ArrayPageMapper(PageMapper):
    """L2P map over dense numpy arrays; see the module docstring."""

    def __init__(
        self, logical_pages: int, slots_per_superblock: Optional[int] = None
    ) -> None:
        super().__init__(logical_pages)
        if slots_per_superblock is not None and slots_per_superblock < 1:
            raise ValueError("slots_per_superblock must be >= 1")
        self._slots_hint = slots_per_superblock
        self._l2p_sb = np.full(logical_pages, -1, dtype=np.int64)
        self._l2p_slot = np.full(logical_pages, -1, dtype=np.int64)
        # sb id -> slot-indexed lpn array (-1 = invalid slot)
        self._sb_slots: Dict[int, np.ndarray] = {}
        self._mapped = 0
        # 1 + highest LPN ever mapped: ranges at or above it are fresh, so
        # the contiguous flush path can skip its stale scan (sequential
        # fills always land here); never lowered — a conservative bound
        self._hwm = 0

    # -- reverse-map storage ---------------------------------------------------

    def _slots_of(self, superblock_id: int, min_slots: int) -> np.ndarray:
        arr = self._sb_slots.get(superblock_id)
        if arr is None:
            size = self._slots_hint if self._slots_hint is not None else _GROW_MIN
            arr = np.full(max(size, min_slots), -1, dtype=np.int64)
            self._sb_slots[superblock_id] = arr
        elif len(arr) < min_slots:
            grown = np.full(max(min_slots, 2 * len(arr)), -1, dtype=np.int64)
            grown[: len(arr)] = arr
            arr = grown
            self._sb_slots[superblock_id] = arr
        return arr

    def _bump_valid(self, superblock_id: int, delta: int) -> None:
        remaining = self._valid_count.get(superblock_id, 0) + delta
        if remaining < 0:
            raise MappingError(f"negative valid count for sb {superblock_id}")
        if remaining == 0:
            self._valid_count.pop(superblock_id, None)
        else:
            self._valid_count[superblock_id] = remaining

    # -- updates --------------------------------------------------------------

    def map_page(self, lpn: int, location: PhysicalSlot) -> Optional[PhysicalSlot]:
        """Point ``lpn`` at a new physical slot; returns the stale slot if any."""
        self.check_lpn(lpn)
        stale: Optional[PhysicalSlot] = None
        stale_sb = int(self._l2p_sb[lpn])
        if stale_sb >= 0:
            stale = PhysicalSlot(stale_sb, int(self._l2p_slot[lpn]))
            self._invalidate_slot(stale)
        else:
            self._mapped += 1
        sb_id, slot = location.superblock_id, location.slot
        slots = self._slots_of(sb_id, slot + 1)
        if slots[slot] >= 0:
            key = (sb_id, slot)
            raise MappingError(f"slot {key} already holds lpn {int(slots[slot])}")
        self._l2p_sb[lpn] = sb_id
        self._l2p_slot[lpn] = slot
        slots[slot] = lpn
        if lpn >= self._hwm:
            self._hwm = lpn + 1
        self._bump_valid(sb_id, 1)
        return stale

    def map_batch(self, lpns: Sequence[int], superblock_id: int, first_slot: int) -> None:
        """Map ``lpns[i]`` to slot ``first_slot + i`` of one superblock.

        Exactly equivalent to ``map_page`` per page (stale copies of
        rewritten LPNs are invalidated), for batches of *distinct* LPNs on
        freshly claimed consecutive slots — the flush path's shape.
        """
        n = len(lpns)
        if n == 0:
            return
        idx = np.fromiter(lpns, dtype=np.int64, count=n)
        if ((idx < 0) | (idx >= self.logical_pages)).any():
            bad = int(idx[(idx < 0) | (idx >= self.logical_pages)][0])
            raise MappingError(
                f"lpn {bad} out of range [0, {self.logical_pages})"
            )
        slots = self._slots_of(superblock_id, first_slot + n)
        segment = slots[first_slot : first_slot + n]
        if (segment >= 0).any():
            offset = int(np.flatnonzero(segment >= 0)[0])
            key = (superblock_id, first_slot + offset)
            raise MappingError(
                f"slot {key} already holds lpn {int(segment[offset])}"
            )
        stale_sb = self._l2p_sb[idx]
        stale_positions = np.flatnonzero(stale_sb >= 0)
        for position in stale_positions:
            self._invalidate_slot(
                PhysicalSlot(
                    int(stale_sb[position]), int(self._l2p_slot[idx[position]])
                )
            )
        self._l2p_sb[idx] = superblock_id
        self._l2p_slot[idx] = first_slot + np.arange(n, dtype=np.int64)
        segment[:] = idx
        top = max(lpns)
        if top >= self._hwm:
            self._hwm = top + 1
        self._mapped += n - len(stale_positions)
        self._bump_valid(superblock_id, n)

    def map_superwl(
        self, lpns: Sequence[int], superblock_id: int, first_slot: int
    ) -> None:
        """:meth:`map_batch` minus re-validation — the flush inner loop.

        Preconditions the vector engine guarantees (and :meth:`map_batch`
        checks): every LPN already passed ``check_lpn``, the LPNs are
        distinct, and ``first_slot`` onward was freshly claimed from an open
        superblock so the target slots are empty.
        """
        n = len(lpns)
        idx = np.asarray(lpns, dtype=np.int64)
        slots = self._sb_slots.get(superblock_id)
        if slots is None or len(slots) < first_slot + n:
            slots = self._slots_of(superblock_id, first_slot + n)
        stale_sb = self._l2p_sb[idx]
        stale = 0
        if (stale_sb >= 0).any():
            for position in np.flatnonzero(stale_sb >= 0):
                self._invalidate_slot(
                    PhysicalSlot(
                        int(stale_sb[position]),
                        int(self._l2p_slot[idx[position]]),
                    )
                )
                stale += 1
        self._l2p_sb[idx] = superblock_id
        self._l2p_slot[idx] = np.arange(
            first_slot, first_slot + n, dtype=np.int64
        )
        slots[first_slot : first_slot + n] = idx
        top = max(lpns)
        if top >= self._hwm:
            self._hwm = top + 1
        self._mapped += n - stale
        self._bump_valid(superblock_id, n)

    def map_superwl_contig(
        self, first: int, n: int, superblock_id: int, first_slot: int
    ) -> None:
        """:meth:`map_superwl` for ``range(first, first + n)`` LPNs.

        Sequential fills produce contiguous flush queues, where slice
        stores beat fancy indexing; same preconditions as
        :meth:`map_superwl`.
        """
        slots = self._sb_slots.get(superblock_id)
        if slots is None or len(slots) < first_slot + n:
            slots = self._slots_of(superblock_id, first_slot + n)
        stale = 0
        if first < self._hwm:
            stale_sb = self._l2p_sb[first : first + n]
            if int(stale_sb.max()) >= 0:
                for offset in np.flatnonzero(stale_sb >= 0):
                    self._invalidate_slot(
                        PhysicalSlot(
                            int(stale_sb[offset]),
                            int(self._l2p_slot[first + offset]),
                        )
                    )
                    stale += 1
        if first + n > self._hwm:
            self._hwm = first + n
        self._l2p_sb[first : first + n] = superblock_id
        self._l2p_slot[first : first + n] = np.arange(
            first_slot, first_slot + n, dtype=np.int64
        )
        slots[first_slot : first_slot + n] = np.arange(
            first, first + n, dtype=np.int64
        )
        self._mapped += n - stale
        self._bump_valid(superblock_id, n)

    def unmap_page(self, lpn: int) -> Optional[PhysicalSlot]:
        """TRIM: drop the mapping; returns the now-invalid slot if one existed."""
        self.check_lpn(lpn)
        sb = int(self._l2p_sb[lpn])
        if sb < 0:
            return None
        location = PhysicalSlot(sb, int(self._l2p_slot[lpn]))
        self._invalidate_slot(location)
        self._l2p_sb[lpn] = -1
        self._l2p_slot[lpn] = -1
        self._mapped -= 1
        return location

    def _invalidate_slot(self, location: PhysicalSlot) -> None:
        slots = self._sb_slots.get(location.superblock_id)
        if (
            slots is None
            or location.slot >= len(slots)
            or slots[location.slot] < 0
        ):
            key = (location.superblock_id, location.slot)
            raise MappingError(f"slot {key} is not valid")
        slots[location.slot] = -1
        self._bump_valid(location.superblock_id, -1)

    def drop_superblock(self, superblock_id: int) -> None:
        """Forget accounting for an erased superblock (must hold no valid pages)."""
        if self._valid_count.get(superblock_id, 0) != 0:
            raise MappingError(
                f"superblock {superblock_id} still holds "
                f"{self._valid_count[superblock_id]} valid pages"
            )
        self._sb_slots.pop(superblock_id, None)

    # -- lookups ---------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[PhysicalSlot]:
        self.check_lpn(lpn)
        sb = int(self._l2p_sb[lpn])
        if sb < 0:
            return None
        return PhysicalSlot(sb, int(self._l2p_slot[lpn]))

    def lpn_at(self, superblock_id: int, slot: int) -> Optional[int]:
        slots = self._sb_slots.get(superblock_id)
        if slots is None or slot < 0 or slot >= len(slots) or slots[slot] < 0:
            return None
        return int(slots[slot])

    def valid_slots(self, superblock_id: int) -> List[Tuple[int, int]]:
        """``(slot, lpn)`` pairs still valid in a superblock, slot order."""
        slots = self._sb_slots.get(superblock_id)
        if slots is None:
            return []
        valid = np.flatnonzero(slots >= 0)
        return [(int(slot), int(slots[slot])) for slot in valid]

    @property
    def mapped_pages(self) -> int:
        return self._mapped

    def iter_mapped(self) -> Iterator[Tuple[int, PhysicalSlot]]:
        """Mapped pages in ascending-LPN order (see the module docstring)."""
        for lpn in np.flatnonzero(self._l2p_sb >= 0):
            yield int(lpn), PhysicalSlot(
                int(self._l2p_sb[lpn]), int(self._l2p_slot[lpn])
            )
