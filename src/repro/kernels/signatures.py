"""Batch twins of the block-signature kernels (Section IV-A).

Each function takes a *stack* of per-block latency matrices, shape
``(k, layers, strings)``, and returns all ``k`` signatures at once.  The
scalar references in :mod:`repro.assembly.signatures` operate on one
:class:`~repro.characterization.datasets.BlockMeasurement`; these operate on
``measurement.wl_latencies_us`` arrays stacked along a new leading axis.

Equivalence contract (DESIGN.md §13): ranks are pure integer permutations
derived from ``np.argsort(kind="stable")`` — the identical primitive the
scalar kernels use — so batch row ``i`` equals the scalar signature of block
``i`` exactly, including tie-breaks (first-come, lower index wins).

The eigen path packs the STR-median bits with
``np.packbits(bitorder="little")`` so bit ``j`` of the packed bytes is LWL
``j``, matching :class:`~repro.utils.bitvec.BitVector` indexing; pairwise
similarity (Equation 1's XOR-popcount) then reduces to
``np.bitwise_count`` over an XOR of the packed matrices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.bitvec import BitVector


def _as_stack(stacks: np.ndarray) -> np.ndarray:
    arr = np.asarray(stacks, dtype=float)
    if arr.ndim != 3:
        raise ValueError(
            f"expected a (k, layers, strings) stack, got shape {arr.shape}"
        )
    return arr


def batch_lwl_rank(stacks: np.ndarray) -> np.ndarray:
    """All-LWL latency ranks per block (direction 5), shape ``(k, L)``."""
    arr = _as_stack(stacks)
    k, layers, strings = arr.shape
    flat = arr.reshape(k, layers * strings)
    order = np.argsort(flat, axis=1, kind="stable")
    ranks = np.empty((k, layers * strings), dtype=np.uint16)
    np.put_along_axis(
        ranks, order, np.arange(layers * strings, dtype=np.uint16)[None, :], axis=1
    )
    return ranks


def batch_pwl_rank(stacks: np.ndarray) -> np.ndarray:
    """Per-string layer ranks per block (direction 6), shape ``(k, L)``."""
    arr = _as_stack(stacks)
    k, layers, strings = arr.shape
    order = np.argsort(arr, axis=1, kind="stable")
    ranks = np.empty((k, layers, strings), dtype=np.uint16)
    np.put_along_axis(
        ranks, order, np.arange(layers, dtype=np.uint16)[None, :, None], axis=1
    )
    return ranks.reshape(k, layers * strings)


def batch_str_rank(stacks: np.ndarray) -> np.ndarray:
    """Per-layer string ranks per block (direction 7), shape ``(k, L)``."""
    arr = _as_stack(stacks)
    k, layers, strings = arr.shape
    order = np.argsort(arr, axis=2, kind="stable")
    ranks = np.empty((k, layers, strings), dtype=np.uint16)
    np.put_along_axis(
        ranks, order, np.arange(strings, dtype=np.uint16)[None, None, :], axis=2
    )
    return ranks.reshape(k, layers * strings)


def batch_str_median(stacks: np.ndarray) -> np.ndarray:
    """Per-layer speed bits per block (direction 8), shape ``(k, L)``.

    The fastest ``strings // 2`` strings of each layer get bit 0, the rest
    bit 1; ties resolve first-come exactly as the scalar kernel and
    :func:`repro.core.eigen.layer_eigen_bits` do.
    """
    arr = _as_stack(stacks)
    k, layers, strings = arr.shape
    fast_slots = strings // 2
    order = np.argsort(arr, axis=2, kind="stable")
    bits = np.ones((k, layers, strings), dtype=np.uint16)
    np.put_along_axis(bits, order[:, :, :fast_slots], np.uint16(0), axis=2)
    return bits.reshape(k, layers * strings)


def pack_eigen_bits(stacks: np.ndarray) -> np.ndarray:
    """STR-median eigen bits of every block, packed little-bit-first.

    Returns ``(k, ceil(L / 8))`` ``uint8``; bit ``j`` (LSB-first within each
    byte) is the eigen bit of LWL ``j``, i.e. ``BitVector`` bit ``j``.
    """
    bits = batch_str_median(stacks).astype(np.uint8)
    return np.packbits(bits, axis=1, bitorder="little")


def eigen_bitvectors(packed: np.ndarray, length: int) -> List[BitVector]:
    """Unpack rows of :func:`pack_eigen_bits` into :class:`BitVector` values."""
    return [
        BitVector(length=length, value=int.from_bytes(row.tobytes(), "little"))
        for row in np.asarray(packed, dtype=np.uint8)
    ]


def signature_distance_matrix(signatures: np.ndarray) -> np.ndarray:
    """Pairwise Equation-1 distances of ``(k, L)`` stacked signatures.

    ``out[i, j]`` equals ``signature_distance(signatures[i], signatures[j])``
    from the scalar module; the matrix is symmetric with a zero diagonal.
    """
    sig = np.asarray(signatures)
    if sig.ndim != 2:
        raise ValueError(f"expected a (k, L) signature stack, got {sig.shape}")
    diff = sig[:, None, :] != sig[None, :, :]
    return diff.sum(axis=2, dtype=np.int64)


def eigen_distance_matrix(packed: np.ndarray) -> np.ndarray:
    """Pairwise XOR-popcount distances of packed eigen matrices.

    ``out[i, j]`` equals ``BitVector.hamming_distance`` of blocks ``i`` and
    ``j`` when both rows came from :func:`pack_eigen_bits` (padding bits are
    zero in every row, so they never contribute to the XOR).
    """
    arr = np.asarray(packed, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"expected a (k, nbytes) packed stack, got {arr.shape}")
    xor = arr[:, None, :] ^ arr[None, :, :]
    return np.bitwise_count(xor).sum(axis=2, dtype=np.int64)
