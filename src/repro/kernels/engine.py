"""The vector backend's FTL/SSD: batched hot paths, byte-identical outputs.

:class:`VectorFtl`/:class:`VectorSsd` subclass the scalar reference and
replace the three dominant costs of a fault-free device run — format-time
burn-in, the per-page write path, and super-word-line flushing — with
struct-of-arrays kernels from :mod:`repro.kernels`.  The equivalence
contract (DESIGN.md §13) is *exact*: every mapped page, chip state
transition, metric sample, RNG draw and trace event matches the scalar
backend bit for bit, which the differential and end-to-end identity tests
pin down.

How the fast write path stays identical:

* Per-super-word-line latencies come from the same cached
  ``block_program_latencies`` matrices the scalar ``program_wordline``
  indexes, stacked once per superblock; completion/extra/argmax rows are
  precomputed with :func:`~repro.kernels.variation.superwl_stats` semantics.
* Gathering is *deferred*: instead of feeding every word-line's latency to
  the QSTR-MED gatherer, the block totals (a strict-left-fold ``cumsum``)
  and eigen bits (:func:`~repro.kernels.signatures.pack_eigen_bits`) are
  bulk-ingested at seal time via
  :meth:`~repro.core.scheme.QstrMedScheme.ingest_block_record` — cumulative
  counters and the resulting :class:`BlockRecord` are identical.
* GC, wear rotation, repair, reads, parity — everything stateful beyond
  the fault-free fast write path — run the inherited scalar code on the
  same underlying state, so they behave identically by construction.

The fast path self-gates: any configuration it cannot reproduce exactly
(fault injectors, steering, parity, wear leveling, non-static policies, a
non-default placement) falls back to scalar behavior at construction, and
:meth:`VectorFtl.flush` (the drain at end of replay) synchronizes the
deferred state and permanently reverts to scalar — a perf-only fallback,
not a correctness one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.assembler import SpeedClass
from repro.core.placement import DEFAULT_POLICY, PlacementPolicy, WriteIntent, WriteSource
from repro.core.records import BlockRecord
from repro.ftl.allocator import QstrAllocator
from repro.ftl.config import FtlConfig
from repro.ftl.ftl import FlushReport, Ftl, ReadResult
from repro.ftl.superblock import ManagedSuperblock
from repro.ftl.writebuffer import BufferedPage, WriteStream
from repro.kernels.mapping import ArrayPageMapper
from repro.kernels.signatures import eigen_bitvectors, pack_eigen_bits
from repro.kernels.variation import block_program_totals
from repro.nand.chip import FlashChip
from repro.nand.errors import EnduranceExceededError
from repro.nand.geometry import PageType
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.policy.resolve import ResolvedPolicies
from repro.policy.static import QstrAssemblyPolicy, StaticAllocationPolicy
from repro.ssd.device import Ssd
from repro.ssd.timing import TimingConfig
from repro.workloads.model import Request


class _FastSuperblock:
    """Precomputed per-open-superblock state for the fast flush path."""

    __slots__ = (
        "sb",
        "members",
        "chips",
        "states",
        "pages",
        "pe",
        "stack",
        "lat",
        "completion",
        "extra",
        "slowest",
        "by_lwl",
        "next_lwl",
    )

    def __init__(self, sb: ManagedSuperblock, ftl: "VectorFtl") -> None:
        self.sb = sb
        self.members = sb.members
        self.chips = [ftl.chips[r.lane] for r in sb.members]
        self.states = []
        self.pe = []
        matrices = []
        for record, chip in zip(sb.members, self.chips):
            state = chip._state(record.plane, record.block)
            if not state.erased or state.next_lwl != 0:
                raise RuntimeError(
                    f"fast path allocated a non-erased block "
                    f"({record.lane}, {record.plane}, {record.block})"
                )
            self.states.append(state)
            self.pe.append(state.pe_cycles)
            matrices.append(
                chip.profile.block_program_latencies(
                    record.plane, record.block, state.pe_cycles
                )
            )
        # (lanes, layers, strings) and its (lanes, lwls) flat view: row i is
        # exactly what scalar program_wordline would return per LWL.
        self.stack = np.stack(matrices)
        self.lat = self.stack.reshape(len(sb.members), -1)
        completion = self.lat.max(axis=0)
        # .tolist() yields Python floats so nothing numpy-typed ever reaches
        # the tracer, the metrics accumulators, or FlushReport.
        self.completion = completion.tolist()
        self.extra = (completion - self.lat.min(axis=0)).tolist()
        self.slowest = self.lat.argmax(axis=0).tolist()
        # rows as tuples: each flush hands its row to FlushReport unchanged
        self.by_lwl = [tuple(row) for row in self.lat.T.tolist()]
        self.pages = [state.pages for state in self.states]
        self.next_lwl = sb.next_slot // sb.pages_per_superwl


class VectorFtl(Ftl):
    """The scalar FTL with numpy-batched format and host-write hot paths."""

    def __init__(
        self,
        chips: Sequence[FlashChip],
        config: FtlConfig = FtlConfig(),
        allocator_kind: str = "qstr",
        placement: PlacementPolicy = DEFAULT_POLICY,
        seed: int = 0,
        tracer: NullTracer = NULL_TRACER,
        registry: Optional[MetricsRegistry] = None,
        policies: Optional[ResolvedPolicies] = None,
    ) -> None:
        super().__init__(
            chips,
            config,
            allocator_kind=allocator_kind,
            placement=placement,
            seed=seed,
            tracer=tracer,
            registry=registry,
            policies=policies,
        )
        data_lanes = len(self.lanes) - (1 if config.parity_protection else 0)
        self.mapper = ArrayPageMapper(
            self.logical_pages,
            slots_per_superblock=self.geometry.pages_per_block * data_lanes,
        )
        self._per_swl = self.buffer.superwl_pages
        self._lwls_per_block = self.geometry.lwls_per_block
        # slot -> (lane index, page type): the lwl-independent part of
        # ManagedSuperblock.slot_location over one super word-line
        self._slot_pattern: List[Tuple[int, PageType]] = []
        for within in range(self._per_swl):
            page_index, lane_index = divmod(within, data_lanes)
            self._slot_pattern.append(
                (lane_index, self.geometry.page_types[page_index])
            )
        # the same pattern with the per-lwl dict keys prebuilt, so a flush
        # does no tuple construction in its chip-state store loop
        self._key_pattern: List[List[Tuple[int, Tuple[int, PageType]]]] = [
            [
                (lane_index, (lwl, page_type))
                for lane_index, page_type in self._slot_pattern
            ]
            for lwl in range(self.geometry.lwls_per_block)
        ]
        self._fast_queue: List[int] = []
        self._fast_times: List[float] = []
        self._fast_set: Set[int] = set()
        # whether the queue currently holds one ascending contiguous LPN
        # run (sequential fills always do) — picks the slice-store mapper path
        self._fast_contig = True
        self._fast_sb: Optional[_FastSuperblock] = None
        self._gc_low = config.gc_low_watermark
        self._host_write_add = self.metrics.host_write_us.add
        self._extra_add = self.metrics.extra_program_us.add
        # bound lazily on the first flush so an empty run leaves the
        # per-stream stats dict empty, exactly like the scalar FTL
        self._stream_fast_add: Optional[Callable[[float], None]] = None
        # 0 forces a (no-op, scalar-identical) _maybe_collect + recompute on
        # the first write; afterwards the cache is refreshed after every
        # event that can lower a lane's free count.
        self._min_free_cached = 0
        self._fast_gathering = isinstance(self.allocator, QstrAllocator)
        injectors_off = all(
            not chip.injector.enabled for chip in self.chips.values()
        )
        self._fast_format_ok = injectors_off and self.predictor is None
        #: the construction-time gate: every feature the fast write path
        #: cannot reproduce exactly reverts this FTL to scalar behavior
        self._fast_enabled = (
            injectors_off
            and self.predictor is None
            and config.wear_leveling is None
            and not config.superpage_steering
            and not config.parity_protection
            and placement is DEFAULT_POLICY
            and type(self.policies.allocation) is StaticAllocationPolicy
            and type(self.policies.assembly) is QstrAssemblyPolicy
        )

    # -- format ----------------------------------------------------------------

    def format(self) -> None:
        """Burn-in without per-word-line programming.

        The scalar format programs every word-line once purely to *measure*
        it; the latencies are deterministic functions of the variation
        profile, so the fast path reads the cached latency matrix directly,
        reduces it with the batch kernels, and performs only the two real
        erases (P/E accounting, endurance, state machine are the chip's
        own).
        """
        if not self._fast_format_ok:
            super().format()
            return
        if self._formatted:
            raise RuntimeError("already formatted")
        lwls = self._lwls_per_block
        survivors: List[Tuple[int, int, int, int]] = []
        matrices: List[np.ndarray] = []
        for lane, chip in self.chips.items():
            profile = chip.profile
            for plane in range(self.config.planes_used):
                for block in range(self.config.usable_blocks_per_plane):
                    if chip.is_bad(plane, block):
                        continue
                    try:
                        if not chip.erase_block(plane, block).ok:
                            continue
                        pe = chip.pe_cycles(plane, block)
                        matrix = profile.block_program_latencies(plane, block, pe)
                        if not chip.erase_block(plane, block).ok:
                            continue
                    except EnduranceExceededError:
                        continue
                    survivors.append((lane, plane, block, pe))
                    matrices.append(matrix)
        # one batched reduction over every surviving block, registered in
        # the same (lane, plane, block) order scalar format visits them
        if survivors:
            stack = np.stack(matrices)
            totals = block_program_totals(stack.reshape(len(survivors), -1))
            eigens = eigen_bitvectors(pack_eigen_bits(stack), lwls)
            for i, (lane, plane, block, pe) in enumerate(survivors):
                self.allocator.register_free(
                    BlockRecord(
                        lane=lane,
                        plane=plane,
                        block=block,
                        pgm_total_us=float(totals[i]),
                        eigen=eigens[i],
                        pe_cycles=pe,
                    )
                )
        self._formatted = True

    # -- fast write path ----------------------------------------------------------

    def _refresh_min_free(self) -> None:
        self._min_free_cached = self.allocator.min_free()

    def _fast_open_superblock(self) -> ManagedSuperblock:
        # mirrors _open_superblock(FAST), plus the free-count cache refresh
        sb = self.table.open_superblock(SpeedClass.FAST)
        if sb is not None and not sb.is_full:
            return sb
        sb = self._allocate_superblock(SpeedClass.FAST)
        self.table.set_open(SpeedClass.FAST, sb)
        self._refresh_min_free()
        return sb

    def _fast_write_page(self, lpn: int) -> Optional[FlushReport]:
        """One buffered host-page write; returns the flush it triggered.

        Exactly ``Ftl.write(lpn, HOST)`` for the fast-gated configuration:
        coalesce in the FAST queue, flush a full super word-line, then run
        GC only when the cached min-free count says the scalar
        ``_maybe_collect`` would actually do something.
        """
        if not self._formatted:
            self._require_format()
        self.mapper.check_lpn(lpn)
        queue = self._fast_queue
        fast_set = self._fast_set
        if lpn in fast_set:
            index = queue.index(lpn)
            del queue[index]
            del self._fast_times[index]
            self._fast_contig = False
        else:
            fast_set.add(lpn)
            if self._fast_contig and queue and queue[-1] + 1 != lpn:
                self._fast_contig = False
        queue.append(lpn)
        self._fast_times.append(self.tracer.now_us)
        report = None
        if len(queue) == self._per_swl:
            report = self._fast_flush()
        if self._min_free_cached < self._gc_low:
            self._maybe_collect()
            self._refresh_min_free()
        return report

    def _fast_flush(self) -> FlushReport:
        """Program one full FAST super word-line from precomputed tables."""
        sb_id, lwl, completion, extra, lane_lats = self._fast_flush_core()
        return FlushReport(
            superblock_id=sb_id,
            lwl=lwl,
            pages=self._per_swl,
            completion_us=completion,
            extra_us=extra,
            speed_class=SpeedClass.FAST,
            lane_latencies_us=lane_lats,
        )

    def _fast_flush_core(
        self,
    ) -> Tuple[int, int, float, float, Tuple[float, ...]]:
        """One FAST super-word-line program; ``(sb_id, lwl, completion_us,
        extra_us, lane_latencies_us)`` without the FlushReport wrapper (the
        bulk service path consumes the fields directly)."""
        st = self._fast_sb
        if st is None:
            st = _FastSuperblock(self._fast_open_superblock(), self)
            self._fast_sb = st
        sb = st.sb
        lwl = st.next_lwl
        queue = self._fast_queue
        per_swl = self._per_swl

        # claim_slots + map_page per page, batched (the queue is dedup'd and
        # the slots freshly claimed, so the trusted superwl paths apply)
        first_slot = sb.next_slot
        sb.next_slot = first_slot + per_swl
        if self._fast_contig:
            self.mapper.map_superwl_contig(queue[0], per_swl, sb.sb_id, first_slot)
        else:
            self.mapper.map_superwl(queue, sb.sb_id, first_slot)

        # the chip-state transitions scalar program_wordline performs
        states = st.states
        pages = st.pages
        for (lane_index, key), lpn in zip(self._key_pattern[lwl], queue):
            pages[lane_index][key] = lpn
        if lwl == 0:
            for chip, state in zip(st.chips, states):
                state.programmed_at_hours = chip.clock_hours
        next_lwl = lwl + 1
        for state in states:
            state.next_lwl = next_lwl

        completion = st.completion[lwl]
        extra = st.extra[lwl]
        metrics = self.metrics
        metrics.host_pages_written += per_swl
        self._host_write_add(completion)
        self._extra_add(extra)
        stream_add = self._stream_fast_add
        if stream_add is None:
            metrics.record_stream_write("fast", completion)
            self._stream_fast_add = metrics.stream_write_us["fast"].add
        else:
            stream_add(completion)

        lane_lats = st.by_lwl[lwl]
        if self.tracer.enabled:
            self._trace_fast_flush(st, lwl, completion, extra, lane_lats)

        st.next_lwl = next_lwl
        self._fast_queue = []
        self._fast_times = []
        self._fast_set = set()
        self._fast_contig = True

        if next_lwl == self._lwls_per_block:
            sb.seal()
            self.table.set_open(SpeedClass.FAST, None)
            self._fast_seal(st)
            self._fast_sb = None
        return sb.sb_id, lwl, completion, extra, lane_lats

    def _fast_seal(self, st: _FastSuperblock) -> None:
        """Bulk-deliver the deferred gathering metadata of a sealed superblock."""
        if not self._fast_gathering:
            return
        totals = block_program_totals(st.lat)
        lwls = self._lwls_per_block
        eigens = eigen_bitvectors(pack_eigen_bits(st.stack), lwls)
        scheme = self.allocator.scheme  # type: ignore[attr-defined]
        for i, record in enumerate(st.members):
            scheme.ingest_block_record(
                BlockRecord(
                    lane=record.lane,
                    plane=record.plane,
                    block=record.block,
                    pgm_total_us=float(totals[i]),
                    eigen=eigens[i],
                    pe_cycles=st.pe[i],
                ),
                lwls,
            )

    def _trace_fast_flush(
        self,
        st: _FastSuperblock,
        lwl: int,
        completion: float,
        extra: float,
        lane_lats: Sequence[float],
    ) -> None:
        # byte-for-byte the events (and kwarg order) of Ftl._trace_flush
        sb = st.sb
        tracer = self.tracer
        now = tracer.now_us
        waits = [now - enqueued for enqueued in self._fast_times]
        tracer.complete(
            "superpage_program",
            "ftl.program",
            now,
            completion,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            stream=WriteStream.FAST.value,
            pages=len(waits),
            buffer_wait_mean_us=sum(waits) / len(waits),
            buffer_wait_max_us=max(waits),
        )
        lat = lane_lats
        slowest_index = st.slowest[lwl]
        fastest_index = min(range(len(lat)), key=lambda i: lat[i])
        slowest = sb.members[slowest_index]
        fastest = sb.members[fastest_index]
        tracer.instant(
            "mp_program",
            "ftl.attribution",
            ts_us=now,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            speed_class=SpeedClass.FAST.name.lower(),
            completion_us=completion,
            extra_us=extra,
            slowest={
                "chip": slowest.lane,
                "plane": slowest.plane,
                "block": slowest.block,
                "lwl": lwl,
            },
            fastest={
                "chip": fastest.lane,
                "plane": fastest.plane,
                "block": fastest.block,
            },
            lane_latencies_us=[round(value, 3) for value in lat],
        )

    # -- scalar API parity ----------------------------------------------------------

    def write(
        self,
        lpn: int,
        source: WriteSource = WriteSource.HOST,
        intent: Optional[WriteIntent] = None,
    ) -> List[FlushReport]:
        if not self._fast_enabled:
            return super().write(lpn, source, intent)
        self._require_format()
        self.mapper.check_lpn(lpn)
        if intent is not None and intent.source is not source:
            raise ValueError("intent.source must match source")
        if source is not WriteSource.HOST:
            # non-host writes through the public API are not worth a fast
            # path: sync the deferred state and continue scalar
            self._fast_desync()
            return super().write(lpn, source, intent)
        report = self._fast_write_page(lpn)
        return [] if report is None else [report]

    def read(self, lpn: int) -> ReadResult:
        if self._fast_enabled:
            self._require_format()
            self.mapper.check_lpn(lpn)
            if lpn in self._fast_set:
                return ReadResult(lpn=lpn, located=True, latency_us=0.0, buffer_hit=True)
        return super().read(lpn)

    def trim(self, lpn: int) -> None:
        if not self._fast_enabled:
            super().trim(lpn)
            return
        self._require_format()
        if lpn in self._fast_set:
            index = self._fast_queue.index(lpn)
            del self._fast_queue[index]
            del self._fast_times[index]
            self._fast_set.discard(lpn)
            self._fast_contig = False
        self.mapper.unmap_page(lpn)

    def flush(self) -> List[FlushReport]:
        if self._fast_enabled:
            self._fast_desync()
        return super().flush()

    def _fast_desync(self) -> None:
        """Hand the deferred fast-path state back to the scalar machinery.

        Queued pages return to the scalar write buffer (FIFO order and
        enqueue timestamps intact) and the partially-written open fast
        superblock replays its per-word-line latency reports so the
        gatherer's staging state matches a scalar run exactly.  Fast mode
        stays off afterwards — this runs once, at the drain that ends a
        replay, and the scalar code continues correctly from the synced
        state.
        """
        self._fast_enabled = False
        for lpn, enqueued in zip(self._fast_queue, self._fast_times):
            self.buffer.push(
                WriteStream.FAST,
                BufferedPage(lpn=lpn, source=WriteSource.HOST, enqueued_us=enqueued),
            )
        self._fast_queue = []
        self._fast_times = []
        self._fast_set = set()
        self._fast_contig = True
        st = self._fast_sb
        self._fast_sb = None
        if st is not None and st.next_lwl > 0:
            lat = st.lat
            for lwl in range(st.next_lwl):
                for i, record in enumerate(st.members):
                    self.allocator.on_wordline_programmed(
                        record.lane,
                        record.plane,
                        record.block,
                        lwl,
                        float(lat[i, lwl]),
                    )


class VectorSsd(Ssd):
    """The scalar SSD with an inlined fast host-write service path."""

    def __init__(
        self,
        ftl: Ftl,
        timing: TimingConfig = TimingConfig(),
        lane_channel_map: Optional[Dict[int, int]] = None,
        tracer: Optional[NullTracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(ftl, timing, lane_channel_map, tracer, registry)
        # insertion order of self.channels is sorted channel id — the same
        # iteration order scalar min(..., key=busy_until_us) sees, so the
        # inlined first-minimal scan picks the identical clock
        self._channel_list = tuple(self.channels.values())
        self._swl_transfer_us = self._page_transfer_us * ftl.geometry.bits_per_cell
        self._fast = isinstance(ftl, VectorFtl)
        self._route: Optional[Tuple] = None
        self._route_sb_id = -1
        # timelines attach at construction (registry); with none attached
        # the bulk path can run channel clocks on local floats
        self._plain_channels = all(
            channel.timeline is None for channel in self._channel_list
        )
        self._busys = [0.0] * len(self._channel_list)
        self._btimes = [0.0] * len(self._channel_list)

    def _service_write(self, request: Request, now: float) -> float:
        ftl = self.ftl
        if not (self._fast and ftl._fast_enabled):
            return super()._service_write(request, now)
        if (
            self.tracer.enabled
            or not self._plain_channels
            or not ftl._formatted
            or request.lpn < 0
            or request.lpn + request.pages > ftl.logical_pages
        ):
            # event-emitting (or error-raising) requests replay the exact
            # per-page scalar sequence
            return self._service_write_events(request, now)
        if len(self._channel_list) == 2:
            return self._service_write_bulk2(request, now)
        return self._service_write_bulk(request, now)

    def _service_write_bulk(self, request: Request, now: float) -> float:
        """The untraced host-write fast path: whole chunks at a time.

        Between two flush boundaries the channel clocks interact with
        nothing else, so the per-page first-minimal scans run on a local
        float list and the FTL queue grows by C-speed bulk extends.  The
        resulting clock values, queue order and flush points are identical
        to the per-page path — ``isdisjoint`` drops any window that would
        coalesce an overwrite back onto the exact dedup sequence.
        """
        ftl = self.ftl
        finish = now + self.timing.command_overhead_us
        ptu = self._page_transfer_us
        channels = self._channel_list
        nch = len(channels)
        # local clock copies; btimes takes one add per pick so the float
        # accumulation order matches scalar's per-acquire `+= ptu` exactly
        busys = self._busys
        btimes = self._btimes
        for i in range(nch):
            busys[i] = channels[i].busy_until_us
            btimes[i] = channels[i].busy_time_us
        queue = ftl._fast_queue
        times = ftl._fast_times
        fast_set = ftl._fast_set
        per_swl = ftl._per_swl
        now_ts = ftl.tracer.now_us
        gc_low = ftl._gc_low
        lpn = request.lpn
        end = lpn + request.pages
        while lpn < end:
            # min-free only changes at flush/GC boundaries, so checking per
            # chunk hits the same trigger points as scalar's per-page check
            if ftl._min_free_cached < gc_low:
                ftl._maybe_collect()
                ftl._refresh_min_free()
            k = per_swl - len(queue)
            if k > end - lpn:
                k = end - lpn
            chunk = range(lpn, lpn + k)
            if fast_set.isdisjoint(chunk):
                if ftl._fast_contig and queue and queue[-1] + 1 != lpn:
                    ftl._fast_contig = False
                fast_set.update(chunk)
                queue.extend(chunk)
                times.extend([now_ts] * k)
                transfer_done = finish
                for _ in range(k):
                    ci = 0
                    busy = busys[0]
                    for i in range(1, nch):
                        value = busys[i]
                        if value < busy:
                            busy = value
                            ci = i
                    start = now if now > busy else busy
                    transfer_done = start + ptu
                    busys[ci] = transfer_done
                    btimes[ci] += ptu
                # successive transfer_done values never decrease: each pick
                # replaces the minimum clock with a larger one
                if transfer_done > finish:
                    finish = transfer_done
            else:
                for one in chunk:
                    ci = 0
                    busy = busys[0]
                    for i in range(1, nch):
                        value = busys[i]
                        if value < busy:
                            busy = value
                            ci = i
                    start = now if now > busy else busy
                    transfer_done = start + ptu
                    busys[ci] = transfer_done
                    btimes[ci] += ptu
                    if transfer_done > finish:
                        finish = transfer_done
                    if one in fast_set:
                        index = queue.index(one)
                        del queue[index]
                        del times[index]
                        ftl._fast_contig = False
                    else:
                        fast_set.add(one)
                        if ftl._fast_contig and queue and queue[-1] + 1 != one:
                            ftl._fast_contig = False
                    queue.append(one)
                    times.append(now_ts)
            lpn += k
            if len(queue) == per_swl:
                # write the local clocks back before the flush acquires them
                for i in range(nch):
                    channel = channels[i]
                    channel.busy_until_us = busys[i]
                    channel.busy_time_us = btimes[i]
                sb_id, _, completion, _, _ = ftl._fast_flush_core()
                done = self._apply_fast_program(sb_id, completion, now)
                if done > finish:
                    finish = done
                for i in range(nch):
                    busys[i] = channels[i].busy_until_us
                    btimes[i] = channels[i].busy_time_us
                queue = ftl._fast_queue
                times = ftl._fast_times
                fast_set = ftl._fast_set
        for i in range(nch):
            channel = channels[i]
            channel.busy_until_us = busys[i]
            channel.busy_time_us = btimes[i]
        return finish

    def _service_write_bulk2(self, request: Request, now: float) -> float:
        """:meth:`_service_write_bulk` for exactly two channels.

        The first-minimal scan collapses to one compare on plain local
        floats (``b1 < b0`` picks channel 1, ties go to the lower index
        just like the strictly-less scan), which is worth ~10% of the
        replay phase on the stock two-channel bench device.
        """
        ftl = self.ftl
        finish = now + self.timing.command_overhead_us
        ptu = self._page_transfer_us
        c0, c1 = self._channel_list
        b0 = c0.busy_until_us
        t0 = c0.busy_time_us
        b1 = c1.busy_until_us
        t1 = c1.busy_time_us
        queue = ftl._fast_queue
        times = ftl._fast_times
        fast_set = ftl._fast_set
        per_swl = ftl._per_swl
        now_ts = ftl.tracer.now_us
        gc_low = ftl._gc_low
        lpn = request.lpn
        end = lpn + request.pages
        while lpn < end:
            if ftl._min_free_cached < gc_low:
                ftl._maybe_collect()
                ftl._refresh_min_free()
            k = per_swl - len(queue)
            if k > end - lpn:
                k = end - lpn
            chunk = range(lpn, lpn + k)
            if fast_set.isdisjoint(chunk):
                if ftl._fast_contig and queue and queue[-1] + 1 != lpn:
                    ftl._fast_contig = False
                fast_set.update(chunk)
                queue.extend(chunk)
                times.extend([now_ts] * k)
                transfer_done = finish
                for _ in range(k):
                    if b1 < b0:
                        start = now if now > b1 else b1
                        transfer_done = start + ptu
                        b1 = transfer_done
                        t1 += ptu
                    else:
                        start = now if now > b0 else b0
                        transfer_done = start + ptu
                        b0 = transfer_done
                        t0 += ptu
                if transfer_done > finish:
                    finish = transfer_done
            else:
                for one in chunk:
                    if b1 < b0:
                        start = now if now > b1 else b1
                        transfer_done = start + ptu
                        b1 = transfer_done
                        t1 += ptu
                    else:
                        start = now if now > b0 else b0
                        transfer_done = start + ptu
                        b0 = transfer_done
                        t0 += ptu
                    if transfer_done > finish:
                        finish = transfer_done
                    if one in fast_set:
                        index = queue.index(one)
                        del queue[index]
                        del times[index]
                        ftl._fast_contig = False
                    else:
                        fast_set.add(one)
                        if ftl._fast_contig and queue and queue[-1] + 1 != one:
                            ftl._fast_contig = False
                    queue.append(one)
                    times.append(now_ts)
            lpn += k
            if len(queue) == per_swl:
                c0.busy_until_us = b0
                c0.busy_time_us = t0
                c1.busy_until_us = b1
                c1.busy_time_us = t1
                sb_id, _, completion, _, _ = ftl._fast_flush_core()
                done = self._apply_fast_program(sb_id, completion, now)
                if done > finish:
                    finish = done
                b0 = c0.busy_until_us
                t0 = c0.busy_time_us
                b1 = c1.busy_until_us
                t1 = c1.busy_time_us
                queue = ftl._fast_queue
                times = ftl._fast_times
                fast_set = ftl._fast_set
        c0.busy_until_us = b0
        c0.busy_time_us = t0
        c1.busy_until_us = b1
        c1.busy_time_us = t1
        return finish

    def _service_write_events(self, request: Request, now: float) -> float:
        ftl = self.ftl
        finish = now + self.timing.command_overhead_us
        ptu = self._page_transfer_us
        channels = self._channel_list
        tracer = self.tracer
        traced = tracer.enabled
        write_page = ftl._fast_write_page  # type: ignore[attr-defined]
        for lpn in range(request.lpn, request.lpn + request.pages):
            channel = channels[0]
            for other in channels[1:]:
                if other.busy_until_us < channel.busy_until_us:
                    channel = other
            # ResourceClock.acquire, inlined
            busy = channel.busy_until_us
            start = now if now > busy else busy
            transfer_done = start + ptu
            channel.busy_until_us = transfer_done
            channel.busy_time_us += ptu
            if channel.timeline is not None:
                channel.timeline.record(start, ptu)
            if transfer_done > finish:
                finish = transfer_done
            if traced:
                tracer.complete(
                    "bus_transfer",
                    "ssd.bus",
                    transfer_done - ptu,
                    ptu,
                    track=channel.name,
                    lpn=lpn,
                )
            report = write_page(lpn)
            if report is not None:
                done = self._apply_fast_flush(report, now)
                if done > finish:
                    finish = done
        return finish

    def _route_for(self, sb_id: int) -> Tuple:
        # the per-member channel/die route, cached per superblock
        route = self._route
        if route is None or self._route_sb_id != sb_id:
            sb = self.ftl.table.get(sb_id)
            route = tuple(
                (
                    self.channels[self.lane_channel[record.lane]],
                    self.dies[record.lane],
                    record.lane,
                    record.block,
                )
                for record in sb.members
            )
            self._route = route
            self._route_sb_id = sb_id
        return route

    def _apply_fast_program(
        self, sb_id: int, completion_us: float, now: float
    ) -> float:
        # the untraced Ssd._apply_flush (fault-free fast flushes carry no
        # repair time)
        route = self._route_for(sb_id)
        completion = now
        transfer_us = self._swl_transfer_us
        # scalar adds a zero lane_repair_us before occupying the die
        program_us = completion_us + 0.0
        for channel, die, lane, block in route:
            busy = channel.busy_until_us
            start = now if now > busy else busy
            transfer_done = start + transfer_us
            channel.busy_until_us = transfer_done
            channel.busy_time_us += transfer_us
            if channel.timeline is not None:
                channel.timeline.record(start, transfer_us)
            die_busy = die.busy_until_us
            die_start = transfer_done if transfer_done > die_busy else die_busy
            die_done = die_start + program_us
            die.busy_until_us = die_done
            die.busy_time_us += program_us
            if die.timeline is not None:
                die.timeline.record(die_start, program_us)
            if die_done > completion:
                completion = die_done
        return completion

    def _apply_fast_flush(self, report: FlushReport, now: float) -> float:
        tracer = self.tracer
        if not tracer.enabled:
            return self._apply_fast_program(
                report.superblock_id, report.completion_us, now
            )
        sb_id = report.superblock_id
        route = self._route_for(sb_id)
        completion = now
        transfer_us = self._swl_transfer_us
        # scalar adds a zero lane_repair_us before occupying the die
        program_us = report.completion_us + 0.0
        for lane_index, (channel, die, lane, block) in enumerate(route):
            busy = channel.busy_until_us
            start = now if now > busy else busy
            transfer_done = start + transfer_us
            channel.busy_until_us = transfer_done
            channel.busy_time_us += transfer_us
            if channel.timeline is not None:
                channel.timeline.record(start, transfer_us)
            die_busy = die.busy_until_us
            die_start = transfer_done if transfer_done > die_busy else die_busy
            die_done = die_start + program_us
            die.busy_until_us = die_done
            die.busy_time_us += program_us
            if die.timeline is not None:
                die.timeline.record(die_start, program_us)
            if die_done > completion:
                completion = die_done
            tracer.complete(
                "data_in",
                "ssd.bus",
                transfer_done - transfer_us,
                transfer_us,
                track=channel.name,
                superblock=sb_id,
                chip=lane,
            )
            tracer.complete(
                "chip_program",
                "ssd.die",
                transfer_done,
                report.completion_us,
                track=die.name,
                superblock=sb_id,
                lwl=report.lwl,
                chip=lane,
                block=block,
                own_latency_us=round(report.lane_latencies_us[lane_index], 3),
            )
        return completion
