"""Cap-aware synthetic workload generation for the vector backend.

``Stack.requests()`` builds the *entire* fill + zipf request list and then
truncates to ``workload.requests``.  On the scaled bench that means drawing
~9,000 fill requests plus a zipf permutation of the whole logical space to
keep 4,000 requests.  :func:`sequential_fill_prefix` builds only the first
``count`` fill requests and is byte-identical to
``sequential_fill(...)[:count]`` because numpy's ``Generator`` draws arrays
element-sequentially from the bit stream: the first ``k`` values of a
size-``n`` ``exponential`` draw equal a size-``k`` draw from a freshly
seeded generator, and ``np.cumsum`` is a strict left fold so the arrival
prefix matches too (``tests/test_kernels_differential.py`` pins both
properties).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import derive_seed
from repro.workloads.model import OpKind, Request
from repro.workloads.synthetic import ArrivalProcess


def sequential_fill_prefix(
    logical_pages: int,
    count: int,
    *,
    start: int = 0,
    pages_per_request: int = 8,
    arrivals: ArrivalProcess = ArrivalProcess(),
    seed: int = 0,
) -> List[Request]:
    """The first ``count`` requests of :func:`~repro.workloads.sequential_fill`."""
    # Reusing sequential_fill's ("seq") stream is the point: the prefix is
    # byte-identical only if both consumers draw from the same label.
    rng = np.random.default_rng(derive_seed(seed, "seq"))  # reprolint: disable=RNG010
    lpns = list(range(start, logical_pages, pages_per_request))[:count]
    times = arrivals.times(len(lpns), rng)
    return [
        Request(
            time_us=float(t),
            op=OpKind.WRITE,
            lpn=lpn,
            pages=min(pages_per_request, logical_pages - lpn),
        )
        for lpn, t in zip(lpns, times)
    ]


def fill_request_count(
    logical_pages: int, start: int = 0, pages_per_request: int = 8
) -> int:
    """How many requests a full :func:`sequential_fill` would emit."""
    return len(range(start, logical_pages, pages_per_request))
