"""Static wear leveling.

The PV-aware allocator optimizes for *speed*; left alone it will happily
keep recycling the same fast blocks while cold data parks on others — the
classic skew static wear leveling corrects.  This module implements the
standard threshold scheme (Chang et al., DAC'07 flavor): when the gap
between the hottest and coldest usable block exceeds a threshold, the
coldest sealed superblock is relocated so its little-erased blocks return
to the free pool.

The leveler is advisory: it watches erase counts through the chips (the
same interface the FTL uses) and nominates victims; the FTL executes the
relocation with its normal GC machinery, so all placement/metadata rules
keep holding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.nand.chip import FlashChip
from repro.policy.base import WearCandidate, WearContext, WearPolicy
from repro.policy.registry import make_policy
from repro.policy.spec import DEFAULT_SPECS


@dataclass(frozen=True)
class WearLevelingConfig:
    """Threshold policy knobs."""

    pe_gap_threshold: int = 64
    check_interval_erases: int = 16

    def __post_init__(self) -> None:
        if self.pe_gap_threshold < 1:
            raise ValueError("pe_gap_threshold must be >= 1")
        if self.check_interval_erases < 1:
            raise ValueError("check_interval_erases must be >= 1")


@dataclass(frozen=True)
class WearReport:
    """Snapshot of wear spread over the usable blocks."""

    min_pe: int
    max_pe: int
    mean_pe: float

    @property
    def gap(self) -> int:
        return self.max_pe - self.min_pe


class WearLeveler:
    """Tracks erase-count spread and nominates cold superblocks for rotation."""

    def __init__(
        self,
        chips: Dict[int, FlashChip],
        usable: Sequence[Tuple[int, int, int]],
        config: WearLevelingConfig = WearLevelingConfig(),
    ) -> None:
        """``usable`` lists every managed (lane, plane, block)."""
        if not usable:
            raise ValueError("no usable blocks to level")
        self._chips = chips
        self._usable = list(usable)
        self.config = config
        self._erases_since_check = 0
        #: how many times the leveler nominated a rotation
        self.rotations_triggered = 0

    # -- observation ---------------------------------------------------------

    def note_erase(self) -> bool:
        """Count one erase; returns True when a wear check is due."""
        self._erases_since_check += 1
        if self._erases_since_check >= self.config.check_interval_erases:
            self._erases_since_check = 0
            return True
        return False

    def pe_of(self, lane: int, plane: int, block: int) -> int:
        return self._chips[lane].pe_cycles(plane, block)

    def report(self) -> WearReport:
        counts = [
            self.pe_of(lane, plane, block)
            for lane, plane, block in self._usable
            if not self._chips[lane].is_bad(plane, block)
        ]
        if not counts:
            raise ValueError("all usable blocks are bad")
        return WearReport(
            min_pe=min(counts), max_pe=max(counts), mean_pe=sum(counts) / len(counts)
        )

    def gap_exceeded(self) -> bool:
        report = self.report()
        return report.gap > self.config.pe_gap_threshold

    # -- victim nomination ---------------------------------------------------------

    def nominate(
        self,
        candidates: Iterable[Tuple[int, Sequence[Tuple[int, int, int]]]],
        policy: Optional[WearPolicy] = None,
    ) -> Optional[int]:
        """Ask ``policy`` which sealed superblock to rotate, if any.

        ``candidates`` yields ``(superblock_id, [(lane, plane, block), ...])``;
        the leveler scores each by mean member P/E and hands the scored set
        (plus the overall mean) to the policy.  Returns the chosen
        superblock id or None; a nomination counts toward
        ``rotations_triggered``.
        """
        scored = []
        for sb_id, members in candidates:
            members = list(members)
            if not members:
                continue
            mean_pe = sum(self.pe_of(*member) for member in members) / len(members)
            scored.append(WearCandidate(sb_id=sb_id, mean_pe=mean_pe))
        if not scored:
            return None
        if policy is None:
            policy = _default_wear_policy()
        victim = policy.pick(
            WearContext(
                candidates=tuple(scored), overall_mean_pe=self.report().mean_pe
            )
        )
        if victim is None:
            return None
        self.rotations_triggered += 1
        return victim

    def coldest_superblock(
        self, candidates: Iterable[Tuple[int, Sequence[Tuple[int, int, int]]]]
    ) -> Optional[int]:
        """Backward-compatible form of :meth:`nominate` (default policy)."""
        return self.nominate(candidates)


def _default_wear_policy() -> WearPolicy:
    """A fresh static ``wear.coldest`` instance (stateless, draws nothing)."""
    policy = make_policy(DEFAULT_SPECS["wear"], 0)
    assert isinstance(policy, WearPolicy)
    return policy
