"""The page-mapping FTL with superblock striping and PV-aware allocation.

Data path: host/GC page writes coalesce in the write buffer until one super
word-line's worth is ready, then a multi-plane-style program fires across
all lanes — its completion is the *slowest* member word-line, its extra
latency the max-min gap the paper optimizes.  Blocks come from a pluggable
allocator (QSTR-MED or a baseline), garbage collection relocates valid pages
into slow superblocks (function-based placement, Section V-D), and every
measured latency is reported back to the allocator so QSTR-MED's catalogs
refresh at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assembler import SpeedClass
from repro.core.gathering import GatheringUnit
from repro.core.placement import DEFAULT_POLICY, PlacementPolicy, WriteIntent, WriteSource
from repro.core.superpage import SuperpagePredictor
from repro.core.records import BlockRecord
from repro.ftl.allocator import AllocationError, BlockAllocator, make_allocator
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import MappingError, PageMapper, PhysicalSlot
from repro.ftl.metrics import FtlMetrics
from repro.ftl.superblock import ManagedSuperblock, SlotLocation, SuperblockTable
from repro.ftl.wear_leveling import WearLeveler
from repro.ftl.writebuffer import BufferedPage, WriteBuffer, WriteStream
from repro.nand.chip import FlashChip
from repro.nand.errors import EnduranceExceededError, UncorrectableReadError
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer


class OutOfSpaceError(Exception):
    """No free blocks left and garbage collection cannot reclaim any."""


class IntegrityError(Exception):
    """A read returned a payload that does not match its logical page."""


@dataclass(frozen=True)
class FlushReport:
    """Outcome of programming one super word-line.

    ``lane_latencies_us`` holds each member's own program latency in lane
    order; ``slowest_lane_index``/``fastest_lane_index`` name the members
    whose gap is the extra latency the paper studies.
    """

    superblock_id: int
    lwl: int
    pages: int
    completion_us: float
    extra_us: float
    speed_class: SpeedClass
    lane_latencies_us: Tuple[float, ...] = ()

    @property
    def slowest_lane_index(self) -> int:
        """Lane index of the member that bounded this MP command."""
        latencies = self.lane_latencies_us
        return max(range(len(latencies)), key=lambda i: latencies[i])

    @property
    def fastest_lane_index(self) -> int:
        latencies = self.lane_latencies_us
        return min(range(len(latencies)), key=lambda i: latencies[i])


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a page read."""

    lpn: int
    located: bool
    latency_us: float
    buffer_hit: bool = False


class Ftl:
    """Superblock FTL over a set of flash chips (one lane per chip)."""

    def __init__(
        self,
        chips: Sequence[FlashChip],
        config: FtlConfig = FtlConfig(),
        allocator_kind: str = "qstr",
        placement: PlacementPolicy = DEFAULT_POLICY,
        seed: int = 0,
        tracer: NullTracer = NULL_TRACER,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if len(chips) < 2:
            raise ValueError("need at least two chips (lanes)")
        self.geometry = chips[0].geometry
        for chip in chips[1:]:
            if chip.geometry != self.geometry:
                raise ValueError("all chips must share one geometry")
        if config.usable_blocks_per_plane > self.geometry.blocks_per_plane:
            raise ValueError("usable_blocks_per_plane exceeds the chip geometry")
        if config.planes_used > self.geometry.planes_per_chip:
            raise ValueError("planes_used exceeds the chip geometry")

        self.config = config
        self.placement = placement
        self.tracer = tracer
        self.registry = registry
        self.chips: Dict[int, FlashChip] = {lane: chip for lane, chip in enumerate(chips)}
        self.lanes = list(self.chips)
        self.allocator: BlockAllocator = make_allocator(
            allocator_kind,
            self.geometry,
            self.lanes,
            candidate_depth=config.candidate_depth,
            placement=placement,
            seed=seed,
            registry=registry,
        )
        self.allocator_kind = allocator_kind

        if config.parity_protection and len(self.lanes) < 3:
            raise ValueError("parity protection needs at least three lanes")
        data_lanes = len(self.lanes) - (1 if config.parity_protection else 0)
        pages_per_block = self.geometry.pages_per_block
        physical_pages = (
            data_lanes
            * config.planes_used
            * config.usable_blocks_per_plane
            * pages_per_block
        )
        self.logical_pages = int(physical_pages * (1.0 - config.overprovision_ratio))
        self.mapper = PageMapper(self.logical_pages)
        self.table = SuperblockTable(self.geometry)
        superwl_pages = data_lanes * self.geometry.bits_per_cell
        self.buffer = WriteBuffer(superwl_pages)
        self.metrics = FtlMetrics()
        self._formatted = False
        self._in_gc = False
        self._in_wear_rotation = False
        self.predictor: Optional[SuperpagePredictor] = (
            SuperpagePredictor(self.geometry, self.lanes)
            if config.superpage_steering
            else None
        )
        self._fast_pair: List[int] = []
        self.wear_leveler: Optional[WearLeveler] = None
        if config.wear_leveling is not None:
            usable = [
                (lane, plane, block)
                for lane in self.lanes
                for plane in range(config.planes_used)
                for block in range(config.usable_blocks_per_plane)
            ]
            self.wear_leveler = WearLeveler(self.chips, usable, config.wear_leveling)

    # -- format / bootstrap ------------------------------------------------------

    def format(self) -> None:
        """Burn-in pass: gather every usable block's metadata, list it free.

        Each block is erased, fully programmed once (feeding the gatherer),
        and erased again so it is ready for allocation — the two-P/E-cycle
        cost the config's ``bootstrap_pe_budget`` documents.
        """
        if self._formatted:
            raise RuntimeError("already formatted")
        gatherer = GatheringUnit(self.geometry)
        for lane, chip in self.chips.items():
            for plane in range(self.config.planes_used):
                for block in range(self.config.usable_blocks_per_plane):
                    if chip.is_bad(plane, block):
                        continue
                    try:
                        chip.erase_block(plane, block)
                        gatherer.open_block(lane, plane, block, chip.pe_cycles(plane, block))
                        record: Optional[BlockRecord] = None
                        latencies: List[float] = []
                        for lwl in range(self.geometry.lwls_per_block):
                            latency = chip.program_wordline(plane, block, lwl).latency_us
                            latencies.append(latency)
                            record = gatherer.report(lane, plane, block, lwl, latency)
                        chip.erase_block(plane, block)
                    except EnduranceExceededError:
                        gatherer.abandon_block(lane, plane, block)
                        continue
                    assert record is not None
                    self.allocator.register_free(record)
                    if self.predictor is not None:
                        # warm-start the superpage predictor from the burn-in
                        for lwl, latency in enumerate(latencies):
                            self.predictor.observe(
                                lane, lwl, latency, record.eigen[lwl]
                            )
        self._formatted = True

    def _require_format(self) -> None:
        if not self._formatted:
            raise RuntimeError("call format() first")

    # -- write path -------------------------------------------------------------------

    def _stream_for(self, intent: WriteIntent) -> WriteStream:
        speed_class = self.placement.classify(intent)
        if speed_class is SpeedClass.SLOW:
            return WriteStream.SLOW
        if (
            self.config.superpage_steering
            and intent.source is WriteSource.HOST
            and self.predictor is not None
            and self.predictor.ready()
        ):
            if self.placement.prefers_fast_superpage(intent):
                return WriteStream.FAST_EXPRESS
            return WriteStream.FAST_BULK
        return WriteStream.FAST

    def write(
        self,
        lpn: int,
        source: WriteSource = WriteSource.HOST,
        intent: Optional[WriteIntent] = None,
    ) -> List[FlushReport]:
        """Queue one page write; returns the flushes it triggered (may be []).

        ``intent`` carries the request shape (page count, sequentiality) the
        superpage-steering mode uses; it defaults to a bare single-page
        intent of the given source.
        """
        self._require_format()
        self.mapper.check_lpn(lpn)
        if intent is None:
            intent = WriteIntent(source=source)
        elif intent.source is not source:
            raise ValueError("intent.source must match source")
        stream = self._stream_for(intent)
        # Coalesce: an lpn rewritten while still buffered keeps only the
        # newest copy, like a real DRAM write buffer.
        self.buffer.drop_lpn(lpn)
        self.buffer.push(
            stream,
            BufferedPage(lpn=lpn, source=source, enqueued_us=self.tracer.now_us),
        )
        reports: List[FlushReport] = []
        while self.buffer.has_full_superwl(stream):
            reports.append(self._flush_superwl(stream))
        if source is not WriteSource.GC:
            self._maybe_collect()
        return reports

    def flush(self) -> List[FlushReport]:
        """Drain all buffered pages (padding final partial super word-lines)."""
        self._require_format()
        reports: List[FlushReport] = []
        for stream in list(WriteStream):
            while self.buffer.pending(stream):
                reports.append(self._flush_superwl(stream, allow_partial=True))
        self._maybe_collect()
        return reports

    def _allocate_superblock(self, speed_class: SpeedClass) -> ManagedSuperblock:
        try:
            members = self.allocator.allocate(speed_class)
        except AllocationError as error:
            raise OutOfSpaceError(str(error)) from error
        sb = self.table.create(speed_class, members, self.config.parity_protection)
        for record in members:
            chip = self.chips[record.lane]
            self.allocator.on_block_allocated(
                record.lane,
                record.plane,
                record.block,
                chip.pe_cycles(record.plane, record.block),
            )
        self.metrics.superblocks_opened += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "superblock_allocate",
                "ftl.allocate",
                track="ftl",
                superblock=sb.sb_id,
                speed_class=speed_class.name.lower(),
                members=[
                    {"chip": r.lane, "plane": r.plane, "block": r.block}
                    for r in members
                ],
            )
        return sb

    def _open_superblock(self, speed_class: SpeedClass) -> ManagedSuperblock:
        sb = self.table.open_superblock(speed_class)
        if sb is not None and not sb.is_full:
            return sb
        sb = self._allocate_superblock(speed_class)
        self.table.set_open(speed_class, sb)
        return sb

    def _open_steered_pair(self) -> List[ManagedSuperblock]:
        """The two open fast superblocks the express/bulk streams share."""
        self._fast_pair = [
            sb_id
            for sb_id in self._fast_pair
            if sb_id in {sb.sb_id for sb in self.table} and not self.table.get(sb_id).is_full
        ]
        while len(self._fast_pair) < 2:
            self._fast_pair.append(self._allocate_superblock(SpeedClass.FAST).sb_id)
        return [self.table.get(sb_id) for sb_id in self._fast_pair]

    def _pick_steered_superblock(self, stream: WriteStream) -> ManagedSuperblock:
        """Express takes the faster predicted next super word-line; bulk the other."""
        pair = self._open_steered_pair()
        assert self.predictor is not None
        per_swl = pair[0].pages_per_superwl
        predictions = [
            self.predictor.predict_superwl(sb.members, sb.next_slot // per_swl)
            for sb in pair
        ]
        express_index = int(predictions[0] > predictions[1])
        if stream is WriteStream.FAST_EXPRESS:
            return pair[express_index]
        return pair[1 - express_index]

    def _superblock_for(self, stream: WriteStream) -> ManagedSuperblock:
        if stream.steered:
            return self._pick_steered_superblock(stream)
        return self._open_superblock(stream.speed_class)

    def _flush_superwl(
        self, stream: WriteStream, allow_partial: bool = False
    ) -> FlushReport:
        speed_class = stream.speed_class
        sb = self._superblock_for(stream)
        batch = self.buffer.pop_superwl(stream, allow_partial)
        slots = sb.claim_slots(sb.pages_per_superwl)
        lwl = sb.slot_location(slots[0]).lwl

        # Assign buffered pages to slots in order; trailing slots stay unmapped.
        payload_by_lane: Dict[int, Dict] = {i: {} for i in range(sb.lane_count)}
        for page, slot in zip(batch, slots):
            location = sb.slot_location(slot)
            self.mapper.map_page(page.lpn, PhysicalSlot(sb.sb_id, slot))
            payload_by_lane[location.lane_index][location.page_type] = page.lpn
        if sb.parity:
            # RAID-4 row parity: the parity page of each page type records
            # the whole data row, enough to rebuild any single lane.
            parity_index = sb.parity_lane_index
            for page_type in self.geometry.page_types:
                row = tuple(
                    payload_by_lane[i].get(page_type)
                    for i in range(sb.data_lane_count)
                )
                payload_by_lane[parity_index][page_type] = ("PARITY", row)

        latencies: List[float] = []
        for lane_index, record in enumerate(sb.members):
            chip = self.chips[record.lane]
            result = chip.program_wordline(
                record.plane, record.block, lwl, payload_by_lane[lane_index]
            )
            latencies.append(result.latency_us)
            self.allocator.on_wordline_programmed(
                record.lane, record.plane, record.block, lwl, result.latency_us
            )
            if self.predictor is not None:
                self.predictor.observe(
                    record.lane, lwl, result.latency_us, record.eigen[lwl]
                )
        completion = max(latencies)
        extra = completion - min(latencies)

        host_pages = sum(1 for page in batch if page.source is not WriteSource.GC)
        gc_pages = len(batch) - host_pages
        self.metrics.host_pages_written += host_pages
        self.metrics.gc_pages_written += gc_pages
        if host_pages:
            self.metrics.host_write_us.add(completion)
        else:
            self.metrics.gc_write_us.add(completion)
        self.metrics.extra_program_us.add(extra)
        self.metrics.record_stream_write(stream.value, completion)

        if self.tracer.enabled:
            self._trace_flush(sb, stream, lwl, batch, latencies, completion, extra)

        if sb.is_full:
            sb.seal()
            if stream.steered:
                self._fast_pair = [
                    sb_id for sb_id in self._fast_pair if sb_id != sb.sb_id
                ]
            else:
                self.table.set_open(speed_class, None)
        return FlushReport(
            superblock_id=sb.sb_id,
            lwl=lwl,
            pages=len(batch),
            completion_us=completion,
            extra_us=extra,
            speed_class=speed_class,
            lane_latencies_us=tuple(latencies),
        )

    def _trace_flush(
        self,
        sb: ManagedSuperblock,
        stream: WriteStream,
        lwl: int,
        batch: List[BufferedPage],
        latencies: List[float],
        completion: float,
        extra: float,
    ) -> None:
        """Emit the MP-program span and its extra-latency attribution event.

        Pure observation: reads the already-computed latencies and member
        identities, draws nothing, changes nothing.
        """
        now = self.tracer.now_us
        slowest_index = max(range(len(latencies)), key=lambda i: latencies[i])
        fastest_index = min(range(len(latencies)), key=lambda i: latencies[i])
        slowest = sb.members[slowest_index]
        fastest = sb.members[fastest_index]
        waits = [now - page.enqueued_us for page in batch]
        self.tracer.complete(
            "superpage_program",
            "ftl.program",
            now,
            completion,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            stream=stream.value,
            pages=len(batch),
            buffer_wait_mean_us=sum(waits) / len(waits),
            buffer_wait_max_us=max(waits),
        )
        self.tracer.instant(
            "mp_program",
            "ftl.attribution",
            ts_us=now,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            speed_class=stream.speed_class.name.lower(),
            completion_us=completion,
            extra_us=extra,
            slowest={
                "chip": slowest.lane,
                "plane": slowest.plane,
                "block": slowest.block,
                "lwl": lwl,
            },
            fastest={
                "chip": fastest.lane,
                "plane": fastest.plane,
                "block": fastest.block,
            },
            lane_latencies_us=[round(value, 3) for value in latencies],
        )

    # -- read path -----------------------------------------------------------------------

    def read(self, lpn: int) -> ReadResult:
        """Read one page; verifies stored payload integrity.

        With parity protection on, an uncorrectable page read degrades to a
        row reconstruction instead of failing.
        """
        self._require_format()
        self.mapper.check_lpn(lpn)
        if lpn in self.buffer.buffered_lpns():
            return ReadResult(lpn=lpn, located=True, latency_us=0.0, buffer_hit=True)
        location = self.mapper.lookup(lpn)
        if location is None:
            return ReadResult(lpn=lpn, located=False, latency_us=0.0)
        sb = self.table.get(location.superblock_id)
        slot = sb.slot_location(location.slot)
        payload, latency = self._read_physical(sb, slot, location.slot)
        if payload != lpn:
            raise IntegrityError(
                f"lpn {lpn} at sb{sb.sb_id}/slot{location.slot} returned {payload!r}"
            )
        self.metrics.pages_read += 1
        self.metrics.host_read_us.add(latency)
        return ReadResult(lpn=lpn, located=True, latency_us=latency)

    def _read_physical(
        self, sb: ManagedSuperblock, slot: SlotLocation, slot_index: int
    ) -> Tuple[object, float]:
        """Read one data page, reconstructing from parity if ECC gives up."""
        record = sb.members[slot.lane_index]
        chip = self.chips[record.lane]
        try:
            result, payload = chip.read_page(
                record.plane, record.block, slot.lwl, slot.page_type
            )
            return payload, result.latency_us
        except UncorrectableReadError as error:
            if not sb.parity:
                raise
            return self._reconstruct(sb, slot, slot_index, wasted_us=error.latency_us)

    def _reconstruct(
        self,
        sb: ManagedSuperblock,
        slot: SlotLocation,
        slot_index: int,
        wasted_us: float = 0.0,
    ) -> Tuple[object, float]:
        """RAID-4 degraded read: rebuild one lane's page from the parity row.

        Charges the failed attempt (``wasted_us``) plus the parity page and
        every surviving data lane (those reads proceed in parallel across
        chips, so their cost is the maximum).
        """
        parity_record = sb.members[sb.parity_lane_index]
        parity_chip = self.chips[parity_record.lane]
        latencies = []
        try:
            result, parity_payload = parity_chip.read_page(
                parity_record.plane, parity_record.block, slot.lwl, slot.page_type
            )
        except UncorrectableReadError as error:
            raise IntegrityError(
                f"double failure: data and parity unreadable at "
                f"sb{sb.sb_id}/slot{slot_index}"
            ) from error
        latencies.append(result.latency_us)
        if not (isinstance(parity_payload, tuple) and parity_payload[0] == "PARITY"):
            raise IntegrityError(
                f"parity page at sb{sb.sb_id}/wl{slot.lwl} holds {parity_payload!r}"
            )
        # Touch the surviving data lanes (their content feeds the XOR on a
        # real drive; here the row snapshot already carries the answer).
        for index in range(sb.data_lane_count):
            if index == slot.lane_index:
                continue
            peer = sb.members[index]
            peer_chip = self.chips[peer.lane]
            try:
                peer_result, _ = peer_chip.read_page(
                    peer.plane, peer.block, slot.lwl, slot.page_type
                )
                latencies.append(peer_result.latency_us)
            except UncorrectableReadError as error:
                raise IntegrityError(
                    f"double failure during reconstruction at sb{sb.sb_id}"
                ) from error
        self.metrics.parity_reconstructions += 1
        value = parity_payload[1][slot.lane_index]
        return value, wasted_us + max(latencies)

    def trim(self, lpn: int) -> None:
        """Invalidate a logical page."""
        self._require_format()
        self.buffer.drop_lpn(lpn)
        self.mapper.unmap_page(lpn)

    # -- garbage collection --------------------------------------------------------------

    def _maybe_collect(self) -> None:
        if self._in_gc:
            return
        self._in_gc = True
        # Stall guard: on a device provisioned so tightly that the high
        # watermark is unreachable, GC must not spin forever making ~zero
        # net progress — give up after a few non-improving rounds and let
        # the write path proceed (or hit OutOfSpaceError honestly).
        stalled = 0
        best_free = self.allocator.min_free()
        try:
            while self.allocator.min_free() < self.config.gc_low_watermark:
                if not self._collect_once():
                    break
                current = self.allocator.min_free()
                if current > best_free:
                    best_free = current
                    stalled = 0
                else:
                    stalled += 1
                    if stalled >= 4:
                        break
                if current >= self.config.gc_high_watermark:
                    break
        finally:
            self._in_gc = False

    def _pick_victim(self) -> Optional[ManagedSuperblock]:
        # A fully-valid victim reclaims nothing: relocating it consumes as
        # many pages as the erase frees, so GC would thrash forever.
        candidates = [
            sb
            for sb in self.table.sealed()
            if self.mapper.valid_count(sb.sb_id) < sb.capacity_pages
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda sb: (self.mapper.valid_count(sb.sb_id), sb.sb_id)
        )

    def _collect_once(self) -> bool:
        """Relocate one victim superblock's valid pages and erase it."""
        victim = self._pick_victim()
        if victim is None:
            return False
        self.metrics.gc_runs += 1
        self._reclaim(victim)
        return True

    def _reclaim(self, victim: ManagedSuperblock) -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "gc_reclaim",
                "ftl.gc",
                track="ftl",
                superblock=victim.sb_id,
                valid_pages=self.mapper.valid_count(victim.sb_id),
                wear_rotation=self._in_wear_rotation,
            )
        # Relocate valid pages into the GC stream and drain it fully,
        # so no mapping still points into the victim when it is erased.
        gc_class = self.placement.classify(WriteIntent(source=WriteSource.GC))
        gc_stream = WriteStream.SLOW if gc_class is SpeedClass.SLOW else WriteStream.FAST
        for slot, lpn in self.mapper.valid_slots(victim.sb_id):
            location = victim.slot_location(slot)
            payload, latency = self._read_physical(victim, location, slot)
            if payload != lpn:
                raise IntegrityError(
                    f"GC read of lpn {lpn} returned {payload!r} "
                    f"(sb{victim.sb_id}/slot{slot})"
                )
            self.metrics.gc_read_us.add(latency)
            self.buffer.push(
                gc_stream,
                BufferedPage(
                    lpn=lpn,
                    source=WriteSource.GC,
                    enqueued_us=self.tracer.now_us,
                ),
            )
            while self.buffer.has_full_superwl(gc_stream):
                self._flush_superwl(gc_stream)
        while self.buffer.pending(gc_stream):
            self._flush_superwl(gc_stream, allow_partial=True)

        # Erase every member; completion is the slowest erase (MP semantics).
        latencies: List[float] = []
        survivors: List[BlockRecord] = []
        for record in victim.members:
            chip = self.chips[record.lane]
            try:
                latencies.append(
                    chip.erase_block(record.plane, record.block).latency_us
                )
                survivors.append(record)
            except EnduranceExceededError:
                self.allocator.on_block_retired(record.lane, record.plane, record.block)
                self.metrics.blocks_retired += 1
        if latencies:
            self.metrics.erase_us.add(max(latencies))
            if len(latencies) > 1:
                self.metrics.extra_erase_us.add(max(latencies) - min(latencies))
            if self.tracer.enabled:
                slowest_index = max(
                    range(len(latencies)), key=lambda i: latencies[i]
                )
                slowest = survivors[slowest_index]
                self.tracer.instant(
                    "mp_erase",
                    "ftl.attribution",
                    track="ftl",
                    superblock=victim.sb_id,
                    completion_us=max(latencies),
                    extra_us=max(latencies) - min(latencies),
                    slowest={
                        "chip": slowest.lane,
                        "plane": slowest.plane,
                        "block": slowest.block,
                    },
                    lane_latencies_us=[round(value, 3) for value in latencies],
                )
        for record in survivors:
            self.allocator.on_block_freed(record.lane, record.plane, record.block)

        self.mapper.drop_superblock(victim.sb_id)
        victim.mark_erased()
        self.table.forget(victim.sb_id)
        self.metrics.superblocks_erased += 1
        self._maybe_wear_level()

    # -- wear leveling ---------------------------------------------------------------------

    def _maybe_wear_level(self) -> None:
        """Rotate the coldest sealed superblock when wear spread grows."""
        leveler = self.wear_leveler
        if leveler is None or self._in_wear_rotation:
            return
        if not leveler.note_erase():
            return
        if not leveler.gap_exceeded():
            return
        candidates = (
            (
                sb.sb_id,
                [(r.lane, r.plane, r.block) for r in sb.members],
            )
            for sb in self.table.sealed()
        )
        victim_id = leveler.coldest_superblock(candidates)
        if victim_id is None:
            return
        # The rotation needs at least one free block per lane to relocate into.
        if self.allocator.min_free() < 1:
            return
        self._in_wear_rotation = True
        try:
            self._reclaim(self.table.get(victim_id))
        finally:
            self._in_wear_rotation = False

    # -- introspection ----------------------------------------------------------------------

    def free_block_counts(self) -> Dict[int, int]:
        return {lane: self.allocator.free_count(lane) for lane in self.lanes}

    def utilization(self) -> float:
        """Fraction of the logical space currently mapped."""
        return self.mapper.mapped_pages / self.logical_pages
