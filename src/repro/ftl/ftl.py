"""The page-mapping FTL with superblock striping and PV-aware allocation.

Data path: host/GC page writes coalesce in the write buffer until one super
word-line's worth is ready, then a multi-plane-style program fires across
all lanes — its completion is the *slowest* member word-line, its extra
latency the max-min gap the paper optimizes.  Blocks come from a pluggable
allocator (QSTR-MED or a baseline), garbage collection relocates valid pages
into slow superblocks (function-based placement, Section V-D), and every
measured latency is reported back to the allocator so QSTR-MED's catalogs
refresh at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.assembler import SpeedClass
from repro.core.gathering import GatheringUnit
from repro.core.placement import DEFAULT_POLICY, PlacementPolicy, WriteIntent, WriteSource
from repro.core.superpage import SuperpagePredictor
from repro.core.records import BlockRecord
from repro.ftl.allocator import AllocationError, BlockAllocator, make_allocator
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import MappingError, PageMapper, PhysicalSlot
from repro.ftl.metrics import FtlMetrics
from repro.ftl.superblock import ManagedSuperblock, SlotLocation, SuperblockTable
from repro.ftl.wear_leveling import WearLeveler
from repro.ftl.writebuffer import BufferedPage, WriteBuffer, WriteStream
from repro.nand.chip import FlashChip
from repro.nand.errors import EnduranceExceededError, UncorrectableReadError
from repro.nand.geometry import PageType
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.perf.profiler import profiled
from repro.policy.base import AllocationContext, GcCandidate, GcVictimContext
from repro.policy.resolve import ResolvedPolicies, resolve_policies
from repro.utils.rng import derive_seed


class OutOfSpaceError(Exception):
    """No free blocks left and garbage collection cannot reclaim any."""


class IntegrityError(Exception):
    """A read returned a payload that does not match its logical page."""


class RepairExhaustedError(Exception):
    """Superblock repair gave up: every drafted spare kept failing."""


@dataclass(frozen=True)
class FlushReport:
    """Outcome of programming one super word-line.

    ``lane_latencies_us`` holds each member's own program latency in lane
    order; ``slowest_lane_index``/``fastest_lane_index`` name the members
    whose gap is the extra latency the paper studies.  ``repair_us`` (lane
    order, empty when nothing failed) is the extra time a lane spent
    retiring a failed member and copying survivors onto a drafted spare
    before this super word-line could complete.
    """

    superblock_id: int
    lwl: int
    pages: int
    completion_us: float
    extra_us: float
    speed_class: SpeedClass
    lane_latencies_us: Tuple[float, ...] = ()
    repairs: int = 0
    repair_us: Tuple[float, ...] = ()

    @property
    def slowest_lane_index(self) -> int:
        """Lane index of the member that bounded this MP command."""
        latencies = self.lane_latencies_us
        return max(range(len(latencies)), key=lambda i: latencies[i])

    @property
    def fastest_lane_index(self) -> int:
        latencies = self.lane_latencies_us
        return min(range(len(latencies)), key=lambda i: latencies[i])


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a page read."""

    lpn: int
    located: bool
    latency_us: float
    buffer_hit: bool = False


class Ftl:
    """Superblock FTL over a set of flash chips (one lane per chip)."""

    def __init__(
        self,
        chips: Sequence[FlashChip],
        config: FtlConfig = FtlConfig(),
        allocator_kind: str = "qstr",
        placement: PlacementPolicy = DEFAULT_POLICY,
        seed: int = 0,
        tracer: NullTracer = NULL_TRACER,
        registry: Optional[MetricsRegistry] = None,
        policies: Optional[ResolvedPolicies] = None,
    ) -> None:
        if len(chips) < 2:
            raise ValueError("need at least two chips (lanes)")
        self.geometry = chips[0].geometry
        for chip in chips[1:]:
            if chip.geometry != self.geometry:
                raise ValueError("all chips must share one geometry")
        if config.usable_blocks_per_plane > self.geometry.blocks_per_plane:
            raise ValueError("usable_blocks_per_plane exceeds the chip geometry")
        if config.planes_used > self.geometry.planes_per_chip:
            raise ValueError("planes_used exceeds the chip geometry")

        self.config = config
        self.placement = placement
        self.tracer = tracer
        self.registry = registry
        self.chips: Dict[int, FlashChip] = {lane: chip for lane, chip in enumerate(chips)}
        self.lanes = list(self.chips)
        # Every tuning decision (assembly, stream routing, GC victim, wear
        # victim, repair drafting) routes through one resolved policy set;
        # None resolves the static defaults, which replicate the historical
        # hard-coded behavior bit for bit.
        self.policies: ResolvedPolicies = (
            policies
            if policies is not None
            else resolve_policies(seed=seed, legacy_repair=config.repair_policy)
        )
        self.allocator: BlockAllocator = make_allocator(
            allocator_kind,
            self.geometry,
            self.lanes,
            candidate_depth=config.candidate_depth,
            placement=placement,
            seed=seed,
            registry=registry,
            assembly_policy=self.policies.assembly,
        )
        self.allocator_kind = allocator_kind

        if config.parity_protection and len(self.lanes) < 3:
            raise ValueError("parity protection needs at least three lanes")
        data_lanes = len(self.lanes) - (1 if config.parity_protection else 0)
        pages_per_block = self.geometry.pages_per_block
        physical_pages = (
            data_lanes
            * config.planes_used
            * config.usable_blocks_per_plane
            * pages_per_block
        )
        self.logical_pages = int(physical_pages * (1.0 - config.overprovision_ratio))
        self.mapper = PageMapper(self.logical_pages)
        self.table = SuperblockTable(self.geometry)
        superwl_pages = data_lanes * self.geometry.bits_per_cell
        self.buffer = WriteBuffer(superwl_pages)
        self.metrics = FtlMetrics()
        self._formatted = False
        self._in_gc = False
        self._in_wear_rotation = False
        # Spare drafting for the random repair policy; draws nothing unless
        # a member actually fails, so fault-free runs are unaffected.
        self._repair_rng = np.random.default_rng(derive_seed(seed, "ftl", "repair"))
        self._dead_planes: Set[Tuple[int, int]] = set()
        self.predictor: Optional[SuperpagePredictor] = (
            SuperpagePredictor(self.geometry, self.lanes)
            if config.superpage_steering
            else None
        )
        self._fast_pair: List[int] = []
        self.wear_leveler: Optional[WearLeveler] = None
        if config.wear_leveling is not None:
            usable = [
                (lane, plane, block)
                for lane in self.lanes
                for plane in range(config.planes_used)
                for block in range(config.usable_blocks_per_plane)
            ]
            self.wear_leveler = WearLeveler(self.chips, usable, config.wear_leveling)

    # -- format / bootstrap ------------------------------------------------------

    def format(self) -> None:
        """Burn-in pass: gather every usable block's metadata, list it free.

        Each block is erased, fully programmed once (feeding the gatherer),
        and erased again so it is ready for allocation — the two-P/E-cycle
        cost the config's ``bootstrap_pe_budget`` documents.
        """
        if self._formatted:
            raise RuntimeError("already formatted")
        gatherer = GatheringUnit(self.geometry)
        for lane, chip in self.chips.items():
            for plane in range(self.config.planes_used):
                for block in range(self.config.usable_blocks_per_plane):
                    if chip.is_bad(plane, block):
                        continue
                    try:
                        if not chip.erase_block(plane, block).ok:
                            # injected erase failure: the block is grown-bad
                            # before it ever entered service
                            continue
                        gatherer.open_block(lane, plane, block, chip.pe_cycles(plane, block))
                        record: Optional[BlockRecord] = None
                        latencies: List[float] = []
                        for lwl in range(self.geometry.lwls_per_block):
                            result = chip.program_wordline(plane, block, lwl)
                            if not result.ok:
                                record = None
                                break
                            latencies.append(result.latency_us)
                            record = gatherer.report(
                                lane, plane, block, lwl, result.latency_us
                            )
                        if record is None or not chip.erase_block(plane, block).ok:
                            gatherer.abandon_block(lane, plane, block)
                            continue
                    except EnduranceExceededError:
                        gatherer.abandon_block(lane, plane, block)
                        continue
                    assert record is not None
                    self.allocator.register_free(record)
                    if self.predictor is not None:
                        # warm-start the superpage predictor from the burn-in
                        for lwl, latency in enumerate(latencies):
                            self.predictor.observe(
                                lane, lwl, latency, record.eigen[lwl]
                            )
        self._formatted = True

    def _require_format(self) -> None:
        if not self._formatted:
            raise RuntimeError("call format() first")

    # -- write path -------------------------------------------------------------------

    def _stream_for(self, intent: WriteIntent) -> WriteStream:
        decision = self.policies.allocation.place(
            AllocationContext(
                intent=intent,
                base_class=self.placement.classify(intent),
                prefers_fast=self.placement.prefers_fast_superpage(intent),
                steering_enabled=self.config.superpage_steering,
                predictor_ready=self.predictor is not None
                and self.predictor.ready(),
            )
        )
        if decision.speed_class is SpeedClass.SLOW:
            return WriteStream.SLOW
        if decision.express is None:
            return WriteStream.FAST
        return WriteStream.FAST_EXPRESS if decision.express else WriteStream.FAST_BULK

    @profiled("ftl.write")
    def write(
        self,
        lpn: int,
        source: WriteSource = WriteSource.HOST,
        intent: Optional[WriteIntent] = None,
    ) -> List[FlushReport]:
        """Queue one page write; returns the flushes it triggered (may be []).

        ``intent`` carries the request shape (page count, sequentiality) the
        superpage-steering mode uses; it defaults to a bare single-page
        intent of the given source.
        """
        self._require_format()
        self.mapper.check_lpn(lpn)
        if intent is None:
            intent = WriteIntent(source=source)
        elif intent.source is not source:
            raise ValueError("intent.source must match source")
        stream = self._stream_for(intent)
        # Coalesce: an lpn rewritten while still buffered keeps only the
        # newest copy, like a real DRAM write buffer.
        self.buffer.drop_lpn(lpn)
        self.buffer.push(
            stream,
            BufferedPage(lpn=lpn, source=source, enqueued_us=self.tracer.now_us),
        )
        reports: List[FlushReport] = []
        while self.buffer.has_full_superwl(stream):
            reports.append(self._flush_superwl(stream))
        if source is not WriteSource.GC:
            self._maybe_collect()
        return reports

    def flush(self) -> List[FlushReport]:
        """Drain all buffered pages (padding final partial super word-lines)."""
        self._require_format()
        reports: List[FlushReport] = []
        for stream in list(WriteStream):
            while self.buffer.pending(stream):
                reports.append(self._flush_superwl(stream, allow_partial=True))
        self._maybe_collect()
        return reports

    @profiled("ftl.allocate")
    def _allocate_superblock(self, speed_class: SpeedClass) -> ManagedSuperblock:
        try:
            members = self.allocator.allocate(speed_class)
        except AllocationError as error:
            raise OutOfSpaceError(str(error)) from error
        sb = self.table.create(speed_class, members, self.config.parity_protection)
        for record in members:
            chip = self.chips[record.lane]
            self.allocator.on_block_allocated(
                record.lane,
                record.plane,
                record.block,
                chip.pe_cycles(record.plane, record.block),
            )
        self.metrics.superblocks_opened += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "superblock_allocate",
                "ftl.allocate",
                track="ftl",
                superblock=sb.sb_id,
                speed_class=speed_class.name.lower(),
                members=[
                    {"chip": r.lane, "plane": r.plane, "block": r.block}
                    for r in members
                ],
            )
        return sb

    def _open_superblock(self, speed_class: SpeedClass) -> ManagedSuperblock:
        sb = self.table.open_superblock(speed_class)
        if sb is not None and not sb.is_full:
            return sb
        sb = self._allocate_superblock(speed_class)
        self.table.set_open(speed_class, sb)
        return sb

    def _open_steered_pair(self) -> List[ManagedSuperblock]:
        """The two open fast superblocks the express/bulk streams share."""
        self._fast_pair = [
            sb_id
            for sb_id in self._fast_pair
            if sb_id in {sb.sb_id for sb in self.table} and not self.table.get(sb_id).is_full
        ]
        while len(self._fast_pair) < 2:
            self._fast_pair.append(self._allocate_superblock(SpeedClass.FAST).sb_id)
        return [self.table.get(sb_id) for sb_id in self._fast_pair]

    def _pick_steered_superblock(self, stream: WriteStream) -> ManagedSuperblock:
        """Express takes the faster predicted next super word-line; bulk the other."""
        pair = self._open_steered_pair()
        assert self.predictor is not None
        per_swl = pair[0].pages_per_superwl
        predictions = [
            self.predictor.predict_superwl(sb.members, sb.next_slot // per_swl)
            for sb in pair
        ]
        express_index = int(predictions[0] > predictions[1])
        if stream is WriteStream.FAST_EXPRESS:
            return pair[express_index]
        return pair[1 - express_index]

    def _superblock_for(self, stream: WriteStream) -> ManagedSuperblock:
        if stream.steered:
            return self._pick_steered_superblock(stream)
        return self._open_superblock(stream.speed_class)

    @profiled("ftl.flush")
    def _flush_superwl(
        self, stream: WriteStream, allow_partial: bool = False
    ) -> FlushReport:
        speed_class = stream.speed_class
        sb = self._superblock_for(stream)
        batch = self.buffer.pop_superwl(stream, allow_partial)
        slots = sb.claim_slots(sb.pages_per_superwl)
        lwl = sb.slot_location(slots[0]).lwl

        # Assign buffered pages to slots in order; trailing slots stay unmapped.
        payload_by_lane: Dict[int, Dict] = {i: {} for i in range(sb.lane_count)}
        for page, slot in zip(batch, slots):
            location = sb.slot_location(slot)
            self.mapper.map_page(page.lpn, PhysicalSlot(sb.sb_id, slot))
            payload_by_lane[location.lane_index][location.page_type] = page.lpn
        if sb.parity:
            # RAID-4 row parity: the parity page of each page type records
            # the whole data row, enough to rebuild any single lane.
            parity_index = sb.parity_lane_index
            for page_type in self.geometry.page_types:
                row = tuple(
                    payload_by_lane[i].get(page_type)
                    for i in range(sb.data_lane_count)
                )
                payload_by_lane[parity_index][page_type] = ("PARITY", row)

        latencies: List[float] = []
        repair_us: List[float] = [0.0] * sb.lane_count
        repairs_before = sb.repairs
        for lane_index in range(sb.lane_count):
            record = sb.members[lane_index]
            chip = self.chips[record.lane]
            result = chip.program_wordline(
                record.plane, record.block, lwl, payload_by_lane[lane_index]
            )
            attempts = 0
            while not result.ok:
                # Program-status failure: retire the member, repair the
                # superblock with a drafted spare, and retry this super
                # word-line's program on the fresh block.
                self.metrics.program_failures += 1
                self._note_fault("program_fail", record, lwl)
                attempts += 1
                if attempts > self.config.max_repair_attempts:
                    raise RepairExhaustedError(
                        f"superblock {sb.sb_id} lane {lane_index}: program "
                        f"still failing after {attempts - 1} repairs"
                    )
                repair_us[lane_index] += self._repair_member(sb, lane_index, lwl)
                record = sb.members[lane_index]
                chip = self.chips[record.lane]
                result = chip.program_wordline(
                    record.plane, record.block, lwl, payload_by_lane[lane_index]
                )
            latencies.append(result.latency_us)
            self.allocator.on_wordline_programmed(
                record.lane, record.plane, record.block, lwl, result.latency_us
            )
            if self.predictor is not None:
                self.predictor.observe(
                    record.lane, lwl, result.latency_us, record.eigen[lwl]
                )
        completion = max(latencies)
        extra = completion - min(latencies)
        swl_repairs = sb.repairs - repairs_before
        if sb.repairs:
            # Extra latency of every super word-line on a repaired
            # superblock — the degradation the repair policy controls.
            self.metrics.post_repair_extra_us.add(extra)

        host_pages = sum(1 for page in batch if page.source is not WriteSource.GC)
        gc_pages = len(batch) - host_pages
        self.metrics.host_pages_written += host_pages
        self.metrics.gc_pages_written += gc_pages
        if host_pages:
            self.metrics.host_write_us.add(completion)
        else:
            self.metrics.gc_write_us.add(completion)
        self.metrics.extra_program_us.add(extra)
        self.metrics.record_stream_write(stream.value, completion)
        # learned allocation policies score their routing on the measured
        # completion; the static policy's hook is a no-op
        self.policies.allocation.observe_flush(stream.value, completion, host_pages)

        if self.tracer.enabled:
            self._trace_flush(sb, stream, lwl, batch, latencies, completion, extra)

        if sb.is_full:
            sb.seal()
            if stream.steered:
                self._fast_pair = [
                    sb_id for sb_id in self._fast_pair if sb_id != sb.sb_id
                ]
            else:
                self.table.set_open(speed_class, None)
        return FlushReport(
            superblock_id=sb.sb_id,
            lwl=lwl,
            pages=len(batch),
            completion_us=completion,
            extra_us=extra,
            speed_class=speed_class,
            lane_latencies_us=tuple(latencies),
            repairs=swl_repairs,
            repair_us=tuple(repair_us) if swl_repairs else (),
        )

    def _trace_flush(
        self,
        sb: ManagedSuperblock,
        stream: WriteStream,
        lwl: int,
        batch: List[BufferedPage],
        latencies: List[float],
        completion: float,
        extra: float,
    ) -> None:
        """Emit the MP-program span and its extra-latency attribution event.

        Pure observation: reads the already-computed latencies and member
        identities, draws nothing, changes nothing.
        """
        now = self.tracer.now_us
        slowest_index = max(range(len(latencies)), key=lambda i: latencies[i])
        fastest_index = min(range(len(latencies)), key=lambda i: latencies[i])
        slowest = sb.members[slowest_index]
        fastest = sb.members[fastest_index]
        waits = [now - page.enqueued_us for page in batch]
        self.tracer.complete(
            "superpage_program",
            "ftl.program",
            now,
            completion,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            stream=stream.value,
            pages=len(batch),
            buffer_wait_mean_us=sum(waits) / len(waits),
            buffer_wait_max_us=max(waits),
        )
        self.tracer.instant(
            "mp_program",
            "ftl.attribution",
            ts_us=now,
            track="ftl",
            superblock=sb.sb_id,
            lwl=lwl,
            speed_class=stream.speed_class.name.lower(),
            completion_us=completion,
            extra_us=extra,
            slowest={
                "chip": slowest.lane,
                "plane": slowest.plane,
                "block": slowest.block,
                "lwl": lwl,
            },
            fastest={
                "chip": fastest.lane,
                "plane": fastest.plane,
                "block": fastest.block,
            },
            lane_latencies_us=[round(value, 3) for value in latencies],
        )

    # -- fault handling / superblock repair ------------------------------------------------

    def _note_fault(
        self, kind: str, record: BlockRecord, lwl: Optional[int] = None
    ) -> None:
        """Record an observed media fault; degrade if its plane went dark."""
        if self.tracer.enabled:
            self.tracer.instant(
                "fault_injected",
                "ftl.fault",
                track="ftl",
                kind=kind,
                chip=record.lane,
                plane=record.plane,
                block=record.block,
                lwl=lwl,
            )
        chip = self.chips[record.lane]
        key = (record.lane, record.plane)
        if chip.injector.plane_dead(record.plane) and key not in self._dead_planes:
            # Whole-plane outage: stop handing out the plane's free blocks
            # so repair never drafts a spare that is guaranteed to fail.
            self._dead_planes.add(key)
            purged = self.allocator.purge_plane(record.lane, record.plane)
            self.metrics.plane_purges += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "degraded_mode",
                    "ftl.fault",
                    track="ftl",
                    reason="plane_outage",
                    chip=record.lane,
                    plane=record.plane,
                    purged_free_blocks=purged,
                )

    def _repair_member(
        self, sb: ManagedSuperblock, lane_index: int, upto_lwl: int
    ) -> float:
        """Swap a failed member for a drafted spare; returns the µs charged.

        The failed block is retired (grown bad), a spare is drafted from
        the same lane under the resolved repair policy, the already-programmed
        word-lines ``0..upto_lwl-1`` are copied onto it (the failed block
        stays readable, with parity as the fallback), and the superblock's
        member table is patched in place so slot geometry never changes.
        """
        failed = sb.members[lane_index]
        failed_chip = self.chips[failed.lane]
        failed_chip.retire_block(failed.plane, failed.block)
        self.allocator.on_block_retired(failed.lane, failed.plane, failed.block)
        self.metrics.blocks_retired += 1
        survivors = [
            sb.members[i] for i in range(sb.lane_count) if i != lane_index
        ]
        total_us = 0.0
        for _ in range(self.config.max_repair_attempts):
            try:
                spare = self.allocator.draft_spare(
                    failed.lane,
                    sb.speed_class,
                    survivors,
                    self.policies.repair,
                    self._repair_rng,
                )
            except AllocationError as error:
                raise OutOfSpaceError(str(error)) from error
            spare_chip = self.chips[spare.lane]
            self.allocator.on_block_allocated(
                spare.lane,
                spare.plane,
                spare.block,
                spare_chip.pe_cycles(spare.plane, spare.block),
            )
            copied, copy_us = self._copy_back(sb, lane_index, failed, spare, upto_lwl)
            total_us += copy_us
            if not copied:
                # The spare itself failed while being filled: retire it and
                # draft another (bounded by max_repair_attempts).
                self.metrics.program_failures += 1
                self._note_fault("program_fail", spare)
                spare_chip.retire_block(spare.plane, spare.block)
                self.allocator.on_block_retired(spare.lane, spare.plane, spare.block)
                self.metrics.blocks_retired += 1
                continue
            sb.replace_member(lane_index, spare)
            self.metrics.sb_repairs += 1
            self.metrics.repair_copy_us.add(copy_us)
            if self.tracer.enabled:
                self.tracer.instant(
                    "sb_repaired",
                    "ftl.fault",
                    track="ftl",
                    superblock=sb.sb_id,
                    lane_index=lane_index,
                    policy=self.policies.repair.short_name,
                    failed={
                        "chip": failed.lane,
                        "plane": failed.plane,
                        "block": failed.block,
                    },
                    spare={
                        "chip": spare.lane,
                        "plane": spare.plane,
                        "block": spare.block,
                    },
                    copied_lwls=upto_lwl,
                    copy_us=round(copy_us, 3),
                )
            return total_us
        raise RepairExhaustedError(
            f"superblock {sb.sb_id} lane {lane_index}: no usable spare after "
            f"{self.config.max_repair_attempts} attempts"
        )

    def _copy_back(
        self,
        sb: ManagedSuperblock,
        lane_index: int,
        failed: BlockRecord,
        spare: BlockRecord,
        upto_lwl: int,
    ) -> Tuple[bool, float]:
        """Copy word-lines ``0..upto_lwl-1`` of the failed member to the spare.

        Returns ``(completed, µs)``.  Word-lines program in ascending order
        so the spare ends ready to take the retried super word-line at
        ``upto_lwl``.  Unreadable pages of a data lane fall back to parity
        reconstruction; a failed parity lane is rebuilt from the data rows.
        """
        spare_chip = self.chips[spare.lane]
        total_us = 0.0
        is_parity_lane = sb.parity and lane_index == sb.parity_lane_index
        per_swl = sb.pages_per_superwl
        for lwl in range(upto_lwl):
            data: Dict[PageType, object] = {}
            for page_index, page_type in enumerate(self.geometry.page_types):
                if is_parity_lane:
                    payload, read_us = self._read_or_rebuild_parity(
                        sb, failed, lwl, page_type
                    )
                else:
                    payload, read_us = self._read_member_page(
                        sb, lane_index, failed, lwl, page_type, page_index, per_swl
                    )
                total_us += read_us
                if payload is not None:
                    data[page_type] = payload
            result = spare_chip.program_wordline(spare.plane, spare.block, lwl, data)
            total_us += result.latency_us
            if not result.ok:
                return False, total_us
            self.allocator.on_wordline_programmed(
                spare.lane, spare.plane, spare.block, lwl, result.latency_us
            )
            if self.predictor is not None:
                self.predictor.observe(
                    spare.lane, lwl, result.latency_us, spare.eigen[lwl]
                )
        return True, total_us

    def _read_member_page(
        self,
        sb: ManagedSuperblock,
        lane_index: int,
        failed: BlockRecord,
        lwl: int,
        page_type: PageType,
        page_index: int,
        per_swl: int,
    ) -> Tuple[object, float]:
        """Read one data page off a retired member, via parity if needed."""
        chip = self.chips[failed.lane]
        try:
            result, payload = chip.read_page(failed.plane, failed.block, lwl, page_type)
            return payload, result.latency_us
        except UncorrectableReadError as error:
            if not sb.parity:
                raise
            slot_index = lwl * per_swl + page_index * sb.data_lane_count + lane_index
            location = SlotLocation(
                lane_index=lane_index, lwl=lwl, page_type=page_type
            )
            return self._reconstruct(
                sb, location, slot_index, wasted_us=error.latency_us
            )

    def _read_or_rebuild_parity(
        self, sb: ManagedSuperblock, failed: BlockRecord, lwl: int, page_type: PageType
    ) -> Tuple[object, float]:
        """Read one parity page off a retired member, or rebuild its row."""
        chip = self.chips[failed.lane]
        try:
            result, payload = chip.read_page(failed.plane, failed.block, lwl, page_type)
            return payload, result.latency_us
        except UncorrectableReadError as error:
            # Re-derive the row from the data lanes (reads run in parallel
            # across chips, so their cost is the maximum).
            latencies = []
            row = []
            for index in range(sb.data_lane_count):
                peer = sb.members[index]
                peer_chip = self.chips[peer.lane]
                peer_result, peer_payload = peer_chip.read_page(
                    peer.plane, peer.block, lwl, page_type
                )
                latencies.append(peer_result.latency_us)
                row.append(peer_payload)
            return ("PARITY", tuple(row)), error.latency_us + max(latencies)

    # -- read path -----------------------------------------------------------------------

    @profiled("ftl.read")
    def read(self, lpn: int) -> ReadResult:
        """Read one page; verifies stored payload integrity.

        With parity protection on, an uncorrectable page read degrades to a
        row reconstruction instead of failing.
        """
        self._require_format()
        self.mapper.check_lpn(lpn)
        if lpn in self.buffer.buffered_lpns():
            return ReadResult(lpn=lpn, located=True, latency_us=0.0, buffer_hit=True)
        location = self.mapper.lookup(lpn)
        if location is None:
            return ReadResult(lpn=lpn, located=False, latency_us=0.0)
        sb = self.table.get(location.superblock_id)
        slot = sb.slot_location(location.slot)
        payload, latency = self._read_physical(sb, slot, location.slot)
        if payload != lpn:
            raise IntegrityError(
                f"lpn {lpn} at sb{sb.sb_id}/slot{location.slot} returned {payload!r}"
            )
        self.metrics.pages_read += 1
        self.metrics.host_read_us.add(latency)
        return ReadResult(lpn=lpn, located=True, latency_us=latency)

    def _read_physical(
        self, sb: ManagedSuperblock, slot: SlotLocation, slot_index: int
    ) -> Tuple[object, float]:
        """Read one data page, reconstructing from parity if ECC gives up."""
        record = sb.members[slot.lane_index]
        chip = self.chips[record.lane]
        try:
            result, payload = chip.read_page(
                record.plane, record.block, slot.lwl, slot.page_type
            )
            return payload, result.latency_us
        except UncorrectableReadError as error:
            if not sb.parity:
                raise
            return self._reconstruct(sb, slot, slot_index, wasted_us=error.latency_us)

    def _reconstruct(
        self,
        sb: ManagedSuperblock,
        slot: SlotLocation,
        slot_index: int,
        wasted_us: float = 0.0,
    ) -> Tuple[object, float]:
        """RAID-4 degraded read: rebuild one lane's page from the parity row.

        Charges the failed attempt (``wasted_us``) plus the parity page and
        every surviving data lane (those reads proceed in parallel across
        chips, so their cost is the maximum).
        """
        parity_record = sb.members[sb.parity_lane_index]
        parity_chip = self.chips[parity_record.lane]
        latencies = []
        try:
            result, parity_payload = parity_chip.read_page(
                parity_record.plane, parity_record.block, slot.lwl, slot.page_type
            )
        except UncorrectableReadError as error:
            raise IntegrityError(
                f"double failure: data and parity unreadable at "
                f"sb{sb.sb_id}/slot{slot_index}"
            ) from error
        latencies.append(result.latency_us)
        if not (isinstance(parity_payload, tuple) and parity_payload[0] == "PARITY"):
            raise IntegrityError(
                f"parity page at sb{sb.sb_id}/wl{slot.lwl} holds {parity_payload!r}"
            )
        # Touch the surviving data lanes (their content feeds the XOR on a
        # real drive; here the row snapshot already carries the answer).
        for index in range(sb.data_lane_count):
            if index == slot.lane_index:
                continue
            peer = sb.members[index]
            peer_chip = self.chips[peer.lane]
            try:
                peer_result, _ = peer_chip.read_page(
                    peer.plane, peer.block, slot.lwl, slot.page_type
                )
                latencies.append(peer_result.latency_us)
            except UncorrectableReadError as error:
                raise IntegrityError(
                    f"double failure during reconstruction at sb{sb.sb_id}"
                ) from error
        self.metrics.parity_reconstructions += 1
        value = parity_payload[1][slot.lane_index]
        return value, wasted_us + max(latencies)

    def trim(self, lpn: int) -> None:
        """Invalidate a logical page."""
        self._require_format()
        self.buffer.drop_lpn(lpn)
        self.mapper.unmap_page(lpn)

    # -- garbage collection --------------------------------------------------------------

    def _maybe_collect(self) -> None:
        if self._in_gc:
            return
        self._in_gc = True
        # Stall guard: on a device provisioned so tightly that the high
        # watermark is unreachable, GC must not spin forever making ~zero
        # net progress — give up after a few non-improving rounds and let
        # the write path proceed (or hit OutOfSpaceError honestly).
        stalled = 0
        best_free = self.allocator.min_free()
        try:
            while self.allocator.min_free() < self.config.gc_low_watermark:
                if not self._collect_once():
                    break
                current = self.allocator.min_free()
                if current > best_free:
                    best_free = current
                    stalled = 0
                else:
                    stalled += 1
                    if stalled >= 4:
                        break
                if current >= self.config.gc_high_watermark:
                    break
        finally:
            self._in_gc = False

    def _pick_victim(self) -> Optional[ManagedSuperblock]:
        # A fully-valid victim reclaims nothing: relocating it consumes as
        # many pages as the erase frees, so GC would thrash forever.
        candidates = tuple(
            GcCandidate(
                sb_id=sb.sb_id,
                valid_pages=self.mapper.valid_count(sb.sb_id),
                capacity_pages=sb.capacity_pages,
            )
            for sb in self.table.sealed()
            if self.mapper.valid_count(sb.sb_id) < sb.capacity_pages
        )
        victim_id = self.policies.gc_victim.pick(GcVictimContext(candidates))
        if victim_id is None:
            return None
        return self.table.get(victim_id)

    @profiled("ftl.gc")
    def _collect_once(self) -> bool:
        """Relocate one victim superblock's valid pages and erase it."""
        victim = self._pick_victim()
        if victim is None:
            return False
        self.metrics.gc_runs += 1
        self._reclaim(victim)
        return True

    def _reclaim(self, victim: ManagedSuperblock) -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "gc_reclaim",
                "ftl.gc",
                track="ftl",
                superblock=victim.sb_id,
                valid_pages=self.mapper.valid_count(victim.sb_id),
                wear_rotation=self._in_wear_rotation,
            )
        # Relocate valid pages into the GC stream and drain it fully,
        # so no mapping still points into the victim when it is erased.
        gc_class = self.placement.classify(WriteIntent(source=WriteSource.GC))
        gc_stream = WriteStream.SLOW if gc_class is SpeedClass.SLOW else WriteStream.FAST
        for slot, lpn in self.mapper.valid_slots(victim.sb_id):
            location = victim.slot_location(slot)
            payload, latency = self._read_physical(victim, location, slot)
            if payload != lpn:
                raise IntegrityError(
                    f"GC read of lpn {lpn} returned {payload!r} "
                    f"(sb{victim.sb_id}/slot{slot})"
                )
            self.metrics.gc_read_us.add(latency)
            self.buffer.push(
                gc_stream,
                BufferedPage(
                    lpn=lpn,
                    source=WriteSource.GC,
                    enqueued_us=self.tracer.now_us,
                ),
            )
            while self.buffer.has_full_superwl(gc_stream):
                self._flush_superwl(gc_stream)
        while self.buffer.pending(gc_stream):
            self._flush_superwl(gc_stream, allow_partial=True)

        # Erase every member; completion is the slowest erase (MP semantics).
        latencies: List[float] = []
        survivors: List[BlockRecord] = []
        lost: List[BlockRecord] = []
        for record in victim.members:
            chip = self.chips[record.lane]
            try:
                result = chip.erase_block(record.plane, record.block)
            except EnduranceExceededError:
                self.allocator.on_block_retired(record.lane, record.plane, record.block)
                self.metrics.blocks_retired += 1
                lost.append(record)
                continue
            if not result.ok:
                # Injected erase-status failure (or a dead plane): the
                # member is grown-bad and leaves the pool like a worn-out
                # block would.
                self.metrics.erase_failures += 1
                self._note_fault("erase_fail", record)
                chip.retire_block(record.plane, record.block)
                self.allocator.on_block_retired(record.lane, record.plane, record.block)
                self.metrics.blocks_retired += 1
                lost.append(record)
                continue
            latencies.append(result.latency_us)
            survivors.append(record)
        if lost:
            # The superblock is being dismantled anyway, but the lane pool
            # shrank permanently: account for it instead of dropping the
            # members silently.
            self.metrics.superblocks_degraded += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "degraded_mode",
                    "ftl.fault",
                    track="ftl",
                    reason="member_lost_on_erase",
                    superblock=victim.sb_id,
                    lost=[
                        {"chip": r.lane, "plane": r.plane, "block": r.block}
                        for r in lost
                    ],
                    surviving_members=len(survivors),
                )
        if latencies:
            self.metrics.erase_us.add(max(latencies))
            if len(latencies) > 1:
                self.metrics.extra_erase_us.add(max(latencies) - min(latencies))
            if self.tracer.enabled:
                slowest_index = max(
                    range(len(latencies)), key=lambda i: latencies[i]
                )
                slowest = survivors[slowest_index]
                self.tracer.instant(
                    "mp_erase",
                    "ftl.attribution",
                    track="ftl",
                    superblock=victim.sb_id,
                    completion_us=max(latencies),
                    extra_us=max(latencies) - min(latencies),
                    slowest={
                        "chip": slowest.lane,
                        "plane": slowest.plane,
                        "block": slowest.block,
                    },
                    lane_latencies_us=[round(value, 3) for value in latencies],
                )
        for record in survivors:
            self.allocator.on_block_freed(record.lane, record.plane, record.block)

        self.mapper.drop_superblock(victim.sb_id)
        victim.mark_erased()
        self.table.forget(victim.sb_id)
        self.metrics.superblocks_erased += 1
        self._maybe_wear_level()

    # -- wear leveling ---------------------------------------------------------------------

    def _maybe_wear_level(self) -> None:
        """Rotate the coldest sealed superblock when wear spread grows."""
        leveler = self.wear_leveler
        if leveler is None or self._in_wear_rotation:
            return
        if not leveler.note_erase():
            return
        if not leveler.gap_exceeded():
            return
        candidates = (
            (
                sb.sb_id,
                [(r.lane, r.plane, r.block) for r in sb.members],
            )
            for sb in self.table.sealed()
        )
        victim_id = leveler.nominate(candidates, self.policies.wear)
        if victim_id is None:
            return
        # The rotation needs at least one free block per lane to relocate into.
        if self.allocator.min_free() < 1:
            return
        self._in_wear_rotation = True
        try:
            self._reclaim(self.table.get(victim_id))
        finally:
            self._in_wear_rotation = False

    # -- introspection ----------------------------------------------------------------------

    def free_block_counts(self) -> Dict[int, int]:
        return {lane: self.allocator.free_count(lane) for lane in self.lanes}

    def utilization(self) -> float:
        """Fraction of the logical space currently mapped."""
        return self.mapper.mapped_pages / self.logical_pages
