"""Superblock repair policies: how to draft a spare for a retired member.

When a member block fails (program/erase status failure or wear-out) the
FTL drafts a replacement from the failed lane's free pool.  The *choice*
re-opens the paper's assembly problem in miniature: a speed-mismatched
spare re-inflates the superblock's MP extra latency for every remaining
super word-line.  Two policies are provided:

* ``random`` — the conventional-firmware baseline: any free block.
* ``qstr``   — PV-aware: restrict to the ``candidate_depth`` blocks whose
  speed class matches the superblock (head of the latency-sorted pool for
  FAST, tail for SLOW), then pick the one most eigen-similar to the
  surviving members — the same similarity criterion
  :class:`repro.core.assembler.OnDemandAssembler` uses at assembly time.

The policies themselves now live in ``repro.policy`` (registered as
``repair.qstr`` / ``repair.random``); ``REPAIR_POLICIES`` and the
similarity helpers are kept here for backward compatibility — the string
form of ``FtlConfig.repair_policy`` is deprecated in favor of
``SimConfig.policies.repair``.
"""

from __future__ import annotations

from typing import Tuple

from repro.policy.static import choose_similar, speed_candidates

#: Legacy string names accepted by ``FtlConfig.repair_policy`` (deprecated;
#: they map onto the ``repair.<name>`` registered policies).
REPAIR_POLICIES: Tuple[str, ...] = ("qstr", "random")

#: Candidate depth used when the allocator has no configured depth of its own.
DEFAULT_REPAIR_DEPTH = 4

__all__ = [
    "REPAIR_POLICIES",
    "DEFAULT_REPAIR_DEPTH",
    "speed_candidates",
    "choose_similar",
]
