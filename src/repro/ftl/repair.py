"""Superblock repair policies: how to draft a spare for a retired member.

When a member block fails (program/erase status failure or wear-out) the
FTL drafts a replacement from the failed lane's free pool.  The *choice*
re-opens the paper's assembly problem in miniature: a speed-mismatched
spare re-inflates the superblock's MP extra latency for every remaining
super word-line.  Two policies are provided:

* ``random`` — the conventional-firmware baseline: any free block.
* ``qstr``   — PV-aware: restrict to the ``candidate_depth`` blocks whose
  speed class matches the superblock (head of the latency-sorted pool for
  FAST, tail for SLOW), then pick the one most eigen-similar to the
  surviving members — the same similarity criterion
  :class:`repro.core.assembler.OnDemandAssembler` uses at assembly time.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.assembler import SpeedClass
from repro.core.records import BlockRecord

REPAIR_POLICIES: Tuple[str, ...] = ("qstr", "random")

#: Candidate depth used when the allocator has no configured depth of its own.
DEFAULT_REPAIR_DEPTH = 4


def speed_candidates(
    records: Sequence[BlockRecord], speed_class: SpeedClass, depth: int
) -> Sequence[BlockRecord]:
    """The ``depth`` records whose total program latency matches the class."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    ordered = sorted(records, key=lambda r: (r.pgm_total_us, r.key()))
    if speed_class is SpeedClass.FAST:
        return ordered[:depth]
    return ordered[-depth:]


def choose_similar(
    candidates: Sequence[BlockRecord], survivors: Sequence[BlockRecord]
) -> BlockRecord:
    """The candidate with the lowest total eigen distance to the survivors.

    Ties break on total program latency then physical address, so the
    choice is deterministic regardless of candidate ordering.
    """
    if not candidates:
        raise ValueError("no candidates to choose from")

    def score(record: BlockRecord) -> Tuple[int, float, Tuple[int, int, int]]:
        distance = sum(record.distance_to(peer) for peer in survivors)
        return (distance, record.pgm_total_us, record.key())

    return min(candidates, key=score)
