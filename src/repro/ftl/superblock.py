"""Superblock lifecycle management.

A managed superblock stripes one physical block per lane.  Pages are
addressed by *slot* in programming order: slot -> (super word-line, lane,
page type), so consecutive slots fill one super word-line across all lanes
before advancing — exactly the MP-command-friendly order (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.assembler import SpeedClass
from repro.core.records import BlockRecord
from repro.nand.geometry import NandGeometry, PageType


class SuperblockStateError(Exception):
    """Operation not valid for the superblock's current state."""


class SbState(Enum):
    OPEN = "open"
    SEALED = "sealed"
    ERASED = "erased"


@dataclass(frozen=True)
class SlotLocation:
    """Physical coordinates of a slot inside a superblock."""

    lane_index: int  # index into the superblock's member tuple
    lwl: int
    page_type: PageType


class ManagedSuperblock:
    """One live superblock: members, write pointer, state.

    With ``parity`` set, the LAST member lane holds row parity (RAID-4
    style, Section VII's RAID-over-superblock designs): data slots only
    span the other lanes, and each super word-line carries one parity page
    per page type.
    """

    def __init__(
        self,
        sb_id: int,
        speed_class: SpeedClass,
        members: Tuple[BlockRecord, ...],
        geometry: NandGeometry,
        parity: bool = False,
    ) -> None:
        if len(members) < 1:
            raise ValueError("superblock needs at least one member")
        if parity and len(members) < 2:
            raise ValueError("parity protection needs at least two lanes")
        self.sb_id = sb_id
        self.speed_class = speed_class
        self.members = members
        self.parity = parity
        self._geometry = geometry
        self.state = SbState.OPEN
        self.next_slot = 0
        #: how many members were swapped for spares after a media failure
        self.repairs = 0

    # -- geometry -------------------------------------------------------------

    @property
    def lane_count(self) -> int:
        return len(self.members)

    @property
    def data_lane_count(self) -> int:
        """Lanes that hold user data (excludes the parity lane)."""
        return self.lane_count - (1 if self.parity else 0)

    @property
    def parity_lane_index(self) -> Optional[int]:
        """Member index of the parity lane, or None."""
        return self.lane_count - 1 if self.parity else None

    @property
    def pages_per_superwl(self) -> int:
        """Data pages one super word-line holds: data lanes x pages-per-LWL."""
        return self.data_lane_count * self._geometry.bits_per_cell

    @property
    def capacity_pages(self) -> int:
        return self._geometry.pages_per_block * self.data_lane_count

    def slot_location(self, slot: int) -> SlotLocation:
        """Resolve a data slot to (lane, LWL, page type).

        Slots fill a super word-line completely (page types major, lanes
        minor) before moving to the next LWL, matching how the FTL issues
        one MP program per super word-line.  The parity lane holds no data
        slots.
        """
        if not 0 <= slot < self.capacity_pages:
            raise ValueError(f"slot {slot} out of range [0, {self.capacity_pages})")
        per_swl = self.pages_per_superwl
        lwl, within = divmod(slot, per_swl)
        page_index, lane_index = divmod(within, self.data_lane_count)
        return SlotLocation(
            lane_index=lane_index,
            lwl=lwl,
            page_type=self._geometry.page_types[page_index],
        )

    # -- write pointer -----------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return self.next_slot >= self.capacity_pages

    def claim_slots(self, count: int) -> List[int]:
        """Reserve the next ``count`` slots (must stay within one superblock)."""
        if self.state is not SbState.OPEN:
            raise SuperblockStateError(f"superblock {self.sb_id} is {self.state.value}")
        if count < 1:
            raise ValueError("count must be >= 1")
        if self.next_slot + count > self.capacity_pages:
            raise SuperblockStateError(
                f"superblock {self.sb_id}: {count} slots requested, "
                f"{self.capacity_pages - self.next_slot} left"
            )
        slots = list(range(self.next_slot, self.next_slot + count))
        self.next_slot += count
        return slots

    def replace_member(self, lane_index: int, record: BlockRecord) -> BlockRecord:
        """Swap one member for a freshly drafted spare; returns the old one.

        Only an OPEN superblock can be repaired: a sealed one is read-only,
        so a failed member there is handled by GC-reclaiming the whole
        superblock instead.  The spare must live on the same lane so the
        slot -> (lane, LWL, page type) geometry is unchanged.
        """
        if self.state is not SbState.OPEN:
            raise SuperblockStateError(
                f"superblock {self.sb_id} is {self.state.value}; repair needs OPEN"
            )
        if not 0 <= lane_index < self.lane_count:
            raise ValueError(f"lane_index {lane_index} out of range")
        old = self.members[lane_index]
        if record.lane != old.lane:
            raise ValueError(
                f"spare lane {record.lane} differs from member lane {old.lane}"
            )
        members = list(self.members)
        members[lane_index] = record
        self.members = tuple(members)
        self.repairs += 1
        return old

    def seal(self) -> None:
        if self.state is not SbState.OPEN:
            raise SuperblockStateError(f"superblock {self.sb_id} is {self.state.value}")
        self.state = SbState.SEALED

    def mark_erased(self) -> None:
        if self.state is not SbState.SEALED:
            raise SuperblockStateError(
                f"superblock {self.sb_id} must be sealed before erase"
            )
        self.state = SbState.ERASED


class SuperblockTable:
    """Registry of live superblocks, open write points, and sealed sets."""

    def __init__(self, geometry: NandGeometry) -> None:
        self._geometry = geometry
        self._next_id = 0
        self._all: Dict[int, ManagedSuperblock] = {}
        self._open_by_class: Dict[SpeedClass, Optional[int]] = {
            SpeedClass.FAST: None,
            SpeedClass.SLOW: None,
        }

    def create(
        self,
        speed_class: SpeedClass,
        members: Tuple[BlockRecord, ...],
        parity: bool = False,
    ) -> ManagedSuperblock:
        sb = ManagedSuperblock(
            self._next_id, speed_class, members, self._geometry, parity
        )
        self._all[sb.sb_id] = sb
        self._next_id += 1
        return sb

    def get(self, sb_id: int) -> ManagedSuperblock:
        if sb_id not in self._all:
            raise KeyError(f"unknown superblock {sb_id}")
        return self._all[sb_id]

    def forget(self, sb_id: int) -> None:
        sb = self.get(sb_id)
        if sb.state is not SbState.ERASED:
            raise SuperblockStateError(
                f"superblock {sb_id} must be erased before removal"
            )
        del self._all[sb_id]

    # -- open write points --------------------------------------------------------

    def open_superblock(self, speed_class: SpeedClass) -> Optional[ManagedSuperblock]:
        sb_id = self._open_by_class.get(speed_class)
        return self._all.get(sb_id) if sb_id is not None else None

    def set_open(self, speed_class: SpeedClass, sb: Optional[ManagedSuperblock]) -> None:
        self._open_by_class[speed_class] = sb.sb_id if sb is not None else None

    # -- queries ----------------------------------------------------------------------

    def sealed(self) -> List[ManagedSuperblock]:
        return [sb for sb in self._all.values() if sb.state is SbState.SEALED]

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[ManagedSuperblock]:
        return iter(self._all.values())
