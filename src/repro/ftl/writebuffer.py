"""Superpage write coalescing.

The FTL buffers incoming page writes per *stream* and releases them one
super word-line at a time (lanes x pages-per-LWL pages), which is the
granularity MP program commands want.  Mirrors the DRAM data buffer of a
real SSD (Section II).

Streams separate traffic that must land in different superblocks: the
default host stream, the GC stream, and — when superpage steering is on —
the express (small random) and bulk (large batch) host streams of
Section V-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, List

from repro.core.assembler import SpeedClass
from repro.core.placement import WriteSource


class WriteStream(Enum):
    """Where a buffered page is headed."""

    FAST = "fast"
    FAST_EXPRESS = "fast_express"
    FAST_BULK = "fast_bulk"
    SLOW = "slow"

    @property
    def speed_class(self) -> SpeedClass:
        return SpeedClass.SLOW if self is WriteStream.SLOW else SpeedClass.FAST

    @property
    def steered(self) -> bool:
        """True for the express/bulk pair that shares the fast open set."""
        return self in (WriteStream.FAST_EXPRESS, WriteStream.FAST_BULK)


@dataclass(frozen=True)
class BufferedPage:
    """One page waiting to be flushed.

    ``enqueued_us`` is the simulated time the page entered the buffer (0.0
    when nothing advances the clock); the tracer uses it to attribute
    write-buffer wait inside a host request's latency.
    """

    lpn: int
    source: WriteSource
    enqueued_us: float = 0.0


class WriteBuffer:
    """Per-stream FIFO of pages awaiting a full super word-line."""

    def __init__(self, superwl_pages: int) -> None:
        if superwl_pages < 1:
            raise ValueError("superwl_pages must be >= 1")
        self.superwl_pages = superwl_pages
        self._queues: Dict[Hashable, List[BufferedPage]] = {}

    def _queue(self, stream: Hashable) -> List[BufferedPage]:
        return self._queues.setdefault(stream, [])

    def push(self, stream: Hashable, page: BufferedPage) -> None:
        self._queue(stream).append(page)

    def pending(self, stream: Hashable) -> int:
        return len(self._queues.get(stream, ()))

    def total_pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def streams(self) -> List[Hashable]:
        """Streams that currently hold pages."""
        return [stream for stream, queue in self._queues.items() if queue]

    def has_full_superwl(self, stream: Hashable) -> bool:
        return self.pending(stream) >= self.superwl_pages

    def pop_superwl(self, stream: Hashable, allow_partial: bool = False) -> List[BufferedPage]:
        """Take one super word-line's worth of pages (FIFO order).

        With ``allow_partial`` a shorter final batch is returned (used when
        draining); otherwise a full batch must be available.
        """
        queue = self._queues.get(stream)
        if not queue:
            raise ValueError(f"no pending pages for {stream!r}")
        if len(queue) < self.superwl_pages and not allow_partial:
            raise ValueError(
                f"only {len(queue)} pages pending for {stream!r}, "
                f"{self.superwl_pages} needed"
            )
        batch = queue[: self.superwl_pages]
        del queue[: self.superwl_pages]
        return batch

    def drop_lpn(self, lpn: int) -> int:
        """Remove any buffered copies of ``lpn`` (TRIM); returns count dropped."""
        dropped = 0
        for queue in self._queues.values():
            kept = [page for page in queue if page.lpn != lpn]
            dropped += len(queue) - len(kept)
            queue[:] = kept
        return dropped

    def buffered_lpns(self) -> Dict[int, Hashable]:
        """Latest buffered stream per lpn (for read-from-buffer hits)."""
        result: Dict[int, Hashable] = {}
        for stream, queue in self._queues.items():
            for page in queue:
                result[page.lpn] = stream
        return result
