"""Free-block allocation policies behind the FTL.

The FTL asks its allocator for one block per lane whenever it opens a new
superblock.  :class:`QstrAllocator` delegates to the runtime QSTR-MED scheme
(similarity-checked, on-demand fast/slow assembly); :class:`SimpleAllocator`
implements the baselines modern SSDs ship — random pairing, same-offset
(sequential) pairing, and plain program-latency-sorted pairing — over the
same bookkeeping so end-to-end comparisons are apples to apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.assembler import SpeedClass
from repro.core.placement import DEFAULT_POLICY, PlacementPolicy
from repro.core.records import BlockRecord
from repro.core.scheme import QstrMedScheme
from repro.ftl.repair import DEFAULT_REPAIR_DEPTH, choose_similar, speed_candidates
from repro.nand.geometry import NandGeometry
from repro.obs.registry import MetricsRegistry
from repro.policy.base import AssemblyPolicy, RepairContext, RepairPolicy
from repro.utils.rng import derive_seed

#: ``draft_spare`` accepts either a resolved policy or (deprecated) the
#: legacy ``"qstr"``/``"random"`` string form of ``FtlConfig.repair_policy``.
RepairChoice = Union[str, RepairPolicy]


def _draft_record(
    policy: RepairChoice,
    lane: int,
    speed_class: SpeedClass,
    survivors: Sequence[BlockRecord],
    pool: Sequence[BlockRecord],
    candidates: Sequence[BlockRecord],
    rng: "np.random.Generator",
) -> BlockRecord:
    """Shared spare choice over a precomputed pool + candidate slice.

    The legacy string forms replicate the pre-policy inline logic exactly;
    policy objects get the full :class:`RepairContext`.
    """
    if isinstance(policy, str):
        if policy == "random":
            return pool[int(rng.integers(len(pool)))]
        return choose_similar(candidates, survivors)
    return policy.draft(
        RepairContext(
            lane=lane,
            speed_class=speed_class,
            survivors=tuple(survivors),
            pool=tuple(pool),
            candidates=tuple(candidates),
            rng=rng,
        )
    )


class AllocationError(Exception):
    """A lane ran out of free blocks."""


class BlockAllocator(ABC):
    """Interface the FTL uses to obtain and recycle physical blocks."""

    def __init__(self, lanes: Sequence[int]) -> None:
        if len(set(lanes)) != len(lanes):
            raise ValueError(f"duplicate lanes: {lanes}")
        self.lanes = list(lanes)

    @abstractmethod
    def register_free(self, record: BlockRecord) -> None:
        """Add a free (erased) block with its gathered metadata."""

    @abstractmethod
    def allocate(self, speed_class: SpeedClass) -> Tuple[BlockRecord, ...]:
        """Take one free block per lane for a new superblock."""

    @abstractmethod
    def free_count(self, lane: int) -> int:
        """Free blocks available on a lane."""

    @abstractmethod
    def on_block_freed(self, lane: int, plane: int, block: int) -> None:
        """A previously-allocated block was erased and is free again."""

    @abstractmethod
    def on_block_retired(self, lane: int, plane: int, block: int) -> None:
        """A block wore out; drop it permanently."""

    @abstractmethod
    def draft_spare(
        self,
        lane: int,
        speed_class: SpeedClass,
        survivors: Sequence[BlockRecord],
        policy: RepairChoice,
        rng: "np.random.Generator",
    ) -> BlockRecord:
        """Take one free block from ``lane`` to repair a damaged superblock.

        ``policy`` is a resolved :class:`~repro.policy.base.RepairPolicy`
        (or, deprecated, the legacy ``"random"``/``"qstr"`` string).
        """

    @abstractmethod
    def purge_plane(self, lane: int, plane: int) -> int:
        """Drop every free block of a dead plane; returns how many."""

    def min_free(self) -> int:
        return min(self.free_count(lane) for lane in self.lanes)

    # Gathering hooks: only the QSTR-MED allocator cares.

    def on_block_allocated(self, lane: int, plane: int, block: int, pe_cycles: int) -> None:
        """Called when a block starts being written."""

    def on_wordline_programmed(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> None:
        """Called with every word-line's measured program latency."""

    def metadata_bytes(self) -> int:
        """Allocator metadata footprint (0 for metadata-free baselines)."""
        return 0

    @property
    def pair_checks(self) -> int:
        """Similarity pair checks performed so far (0 for baselines)."""
        return 0


class QstrAllocator(BlockAllocator):
    """QSTR-MED-backed allocation: similarity-checked fast/slow superblocks."""

    def __init__(
        self,
        geometry: NandGeometry,
        lanes: Sequence[int],
        candidate_depth: int = 4,
        placement: PlacementPolicy = DEFAULT_POLICY,
        registry: Optional[MetricsRegistry] = None,
        assembly_policy: Optional[AssemblyPolicy] = None,
    ) -> None:
        super().__init__(lanes)
        self._assembly_policy = assembly_policy
        self.scheme = QstrMedScheme(
            geometry,
            lanes,
            candidate_depth,
            placement,
            registry=registry,
            chooser=assembly_policy,
        )

    def register_free(self, record: BlockRecord) -> None:
        self.scheme.register_free_block(record)

    def allocate(self, speed_class: SpeedClass) -> Tuple[BlockRecord, ...]:
        if self.scheme.min_free_blocks() < 1:
            raise AllocationError("a lane has no free blocks")
        return self.scheme.assemble(speed_class).members

    def free_count(self, lane: int) -> int:
        return self.scheme.free_blocks(lane)

    def on_block_allocated(self, lane: int, plane: int, block: int, pe_cycles: int) -> None:
        self.scheme.note_block_allocated(lane, plane, block, pe_cycles)

    def on_wordline_programmed(
        self, lane: int, plane: int, block: int, lwl: int, latency_us: float
    ) -> None:
        self.scheme.note_wordline_programmed(lane, plane, block, lwl, latency_us)
        if self._assembly_policy is not None:
            # learned assembly policies refine their per-block estimates
            # from the same measured latencies the catalogs gather
            self._assembly_policy.observe_program(lane, plane, block, lwl, latency_us)

    def on_block_freed(self, lane: int, plane: int, block: int) -> None:
        self.scheme.note_block_freed(lane, plane, block)

    def on_block_retired(self, lane: int, plane: int, block: int) -> None:
        self.scheme.note_block_retired(lane, plane, block)

    def draft_spare(
        self,
        lane: int,
        speed_class: SpeedClass,
        survivors: Sequence[BlockRecord],
        policy: RepairChoice,
        rng: "np.random.Generator",
    ) -> BlockRecord:
        catalog = self.scheme.catalog(lane)
        pool = list(catalog)
        if not pool:
            raise AllocationError(f"lane {lane} has no free blocks for repair")
        depth = min(self.scheme.candidate_depth, len(pool))
        candidates = (
            catalog.head_candidates(depth)
            if speed_class is SpeedClass.FAST
            else catalog.tail_candidates(depth)
        )
        record = _draft_record(
            policy, lane, speed_class, survivors, pool, candidates, rng
        )
        self.scheme.take_free_block(record)
        return record

    def purge_plane(self, lane: int, plane: int) -> int:
        return self.scheme.purge_plane(lane, plane)

    def metadata_bytes(self) -> int:
        return self.scheme.metadata_bytes()

    @property
    def pair_checks(self) -> int:
        return self.scheme.total_pair_checks


class SimpleAllocator(BlockAllocator):
    """Baseline allocation: ``random``, ``sequential`` or ``pgm_sorted``.

    Keeps the same BlockRecord bookkeeping (so blocks can be re-listed when
    freed) but ignores eigen sequences entirely.
    """

    STRATEGIES = ("random", "sequential", "pgm_sorted")

    def __init__(
        self, lanes: Sequence[int], strategy: str = "random", seed: int = 0
    ) -> None:
        super().__init__(lanes)
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; pick from {self.STRATEGIES}")
        self.strategy = strategy
        self._rng = np.random.default_rng(
            derive_seed(seed, "ftl", "allocator", strategy)
        )
        self._free: Dict[int, List[BlockRecord]] = {lane: [] for lane in lanes}
        self._in_use: Dict[Tuple[int, int, int], BlockRecord] = {}

    def register_free(self, record: BlockRecord) -> None:
        self._free[record.lane].append(record)

    def free_count(self, lane: int) -> int:
        return len(self._free[lane])

    def _pick(self, lane: int) -> BlockRecord:
        pool = self._free[lane]
        if not pool:
            raise AllocationError(f"lane {lane} has no free blocks")
        if self.strategy == "random":
            index = int(self._rng.integers(len(pool)))
        elif self.strategy == "sequential":
            index = min(range(len(pool)), key=lambda i: (pool[i].plane, pool[i].block))
        else:  # pgm_sorted
            index = min(range(len(pool)), key=lambda i: pool[i].pgm_total_us)
        return pool.pop(index)

    def allocate(self, speed_class: SpeedClass) -> Tuple[BlockRecord, ...]:
        members = tuple(self._pick(lane) for lane in self.lanes)
        for record in members:
            self._in_use[record.key()] = record
        return members

    def on_block_freed(self, lane: int, plane: int, block: int) -> None:
        record = self._in_use.pop((lane, plane, block), None)
        if record is None:
            raise KeyError(f"block ({lane}, {plane}, {block}) was not in use")
        self._free[lane].append(record)

    def on_block_retired(self, lane: int, plane: int, block: int) -> None:
        self._in_use.pop((lane, plane, block), None)

    def draft_spare(
        self,
        lane: int,
        speed_class: SpeedClass,
        survivors: Sequence[BlockRecord],
        policy: RepairChoice,
        rng: "np.random.Generator",
    ) -> BlockRecord:
        pool = self._free[lane]
        if not pool:
            raise AllocationError(f"lane {lane} has no free blocks for repair")
        depth = min(DEFAULT_REPAIR_DEPTH, len(pool))
        candidates = speed_candidates(pool, speed_class, depth)
        record = _draft_record(
            policy, lane, speed_class, survivors, pool, candidates, rng
        )
        pool.remove(record)
        self._in_use[record.key()] = record
        return record

    def purge_plane(self, lane: int, plane: int) -> int:
        pool = self._free[lane]
        keep = [record for record in pool if record.plane != plane]
        purged = len(pool) - len(keep)
        self._free[lane] = keep
        return purged


def make_allocator(
    kind: str,
    geometry: NandGeometry,
    lanes: Sequence[int],
    *,
    candidate_depth: int = 4,
    placement: PlacementPolicy = DEFAULT_POLICY,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
    assembly_policy: Optional[AssemblyPolicy] = None,
) -> BlockAllocator:
    """Factory: ``qstr`` | ``random`` | ``sequential`` | ``pgm_sorted``.

    ``registry`` (optional) receives the QSTR-MED gather/assemble/allocate
    phase counters; the baselines have no phases to count.
    ``assembly_policy`` plugs the member choice of the runtime QSTR-MED
    scheme; the baselines ignore it (they do no similarity assembly).
    """
    if kind == "qstr":
        return QstrAllocator(
            geometry,
            lanes,
            candidate_depth,
            placement,
            registry,
            assembly_policy=assembly_policy,
        )
    if kind in SimpleAllocator.STRATEGIES:
        return SimpleAllocator(lanes, kind, seed)
    raise ValueError(f"unknown allocator kind {kind!r}")
