"""Logical-to-physical page mapping.

A plain page-level map: logical page number -> (superblock id, slot).  The
slot enumerates a superblock's pages in programming order; the superblock
table resolves a slot to (lane, LWL, page type).  The mapper also maintains
the reverse map and per-superblock valid counts the garbage collector needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.perf.profiler import profiled


class MappingError(Exception):
    """Invalid logical page or inconsistent map update."""


@dataclass(frozen=True)
class PhysicalSlot:
    """A page's physical location: superblock + slot in program order."""

    superblock_id: int
    slot: int


class PageMapper:
    """L2P map plus reverse lookups and validity accounting."""

    def __init__(self, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        self.logical_pages = logical_pages
        self._l2p: Dict[int, PhysicalSlot] = {}
        # (sb, slot) -> lpn for every *valid* page
        self._p2l: Dict[Tuple[int, int], int] = {}
        self._valid_count: Dict[int, int] = {}

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise MappingError(f"lpn {lpn} out of range [0, {self.logical_pages})")

    # -- updates --------------------------------------------------------------

    @profiled("ftl.map")
    def map_page(self, lpn: int, location: PhysicalSlot) -> Optional[PhysicalSlot]:
        """Point ``lpn`` at a new physical slot; returns the stale slot if any."""
        self.check_lpn(lpn)
        stale = self._l2p.get(lpn)
        if stale is not None:
            self._invalidate_slot(stale)
        key = (location.superblock_id, location.slot)
        if key in self._p2l:
            raise MappingError(f"slot {key} already holds lpn {self._p2l[key]}")
        self._l2p[lpn] = location
        self._p2l[key] = lpn
        self._valid_count[location.superblock_id] = (
            self._valid_count.get(location.superblock_id, 0) + 1
        )
        return stale

    def unmap_page(self, lpn: int) -> Optional[PhysicalSlot]:
        """TRIM: drop the mapping; returns the now-invalid slot if one existed."""
        self.check_lpn(lpn)
        location = self._l2p.pop(lpn, None)
        if location is not None:
            self._invalidate_slot(location)
        return location

    def _invalidate_slot(self, location: PhysicalSlot) -> None:
        key = (location.superblock_id, location.slot)
        if key not in self._p2l:
            raise MappingError(f"slot {key} is not valid")
        del self._p2l[key]
        remaining = self._valid_count.get(location.superblock_id, 0) - 1
        if remaining < 0:
            raise MappingError(f"negative valid count for sb {location.superblock_id}")
        if remaining == 0:
            self._valid_count.pop(location.superblock_id, None)
        else:
            self._valid_count[location.superblock_id] = remaining

    def drop_superblock(self, superblock_id: int) -> None:
        """Forget accounting for an erased superblock (must hold no valid pages)."""
        if self._valid_count.get(superblock_id, 0) != 0:
            raise MappingError(
                f"superblock {superblock_id} still holds "
                f"{self._valid_count[superblock_id]} valid pages"
            )

    # -- lookups ---------------------------------------------------------------

    @profiled("ftl.map")
    def lookup(self, lpn: int) -> Optional[PhysicalSlot]:
        self.check_lpn(lpn)
        return self._l2p.get(lpn)

    def lpn_at(self, superblock_id: int, slot: int) -> Optional[int]:
        return self._p2l.get((superblock_id, slot))

    def valid_count(self, superblock_id: int) -> int:
        return self._valid_count.get(superblock_id, 0)

    def valid_slots(self, superblock_id: int) -> List[Tuple[int, int]]:
        """``(slot, lpn)`` pairs still valid in a superblock, slot order."""
        pairs = [
            (slot, lpn)
            for (sb, slot), lpn in self._p2l.items()
            if sb == superblock_id
        ]
        pairs.sort()
        return pairs

    @property
    def mapped_pages(self) -> int:
        return len(self._l2p)

    def iter_mapped(self) -> Iterator[Tuple[int, PhysicalSlot]]:
        return iter(self._l2p.items())
